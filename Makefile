# Convenience targets for the conf_ipps_ZhaoJH23 reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check parity figures

## Tier-1 verification: the full unit/property/benchmark suite.
test:
	python -m pytest -x -q

## Scheduler perf trajectory: runs benchmarks/test_scheduler_overhead.py
## under pytest-benchmark, replays the §V-A workload end-to-end at
## 2k/20k/100k requests, and writes BENCH_scheduler.json (committed, so
## every PR is measured against the last).
bench:
	python -m repro.experiments bench

## Gate the committed trajectory: fails when the 20k/2k pass-cost ratio
## exceeds 3x or the batched path drifts from ~1 revision per action.
bench-check:
	python -m repro.experiments bench-check

## Fast-path/reference decision parity only (quick hot-path sanity).
parity:
	python -m pytest tests/core/test_decision_parity.py -q

## Regenerate the paper's tables and figures.
figures:
	python -m repro.experiments all
