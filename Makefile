# Convenience targets for the conf_ipps_ZhaoJH23 reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench parity figures

## Tier-1 verification: the full unit/property/benchmark suite.
test:
	python -m pytest -x -q

## Scheduler perf trajectory: runs benchmarks/test_scheduler_overhead.py
## under pytest-benchmark and writes BENCH_scheduler.json (committed, so
## every PR is measured against the last).
bench:
	python -m repro.experiments bench

## Fast-path/reference decision parity only (quick hot-path sanity).
parity:
	python -m pytest tests/core/test_decision_parity.py -q

## Regenerate the paper's tables and figures.
figures:
	python -m repro.experiments all
