# Convenience targets for the conf_ipps_ZhaoJH23 reproduction.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-check parity profile figures sweep trace

## Tier-1 verification: the full unit/property/benchmark suite.
test:
	python -m pytest -x -q

## Scheduler perf trajectory: runs benchmarks/test_scheduler_overhead.py
## under pytest-benchmark, replays the §V-A workload end-to-end at
## 2k/20k/100k requests, measures the commit path (WriteBatch.flush +
## compaction, ephemeral-key tier on vs off under bounded retention),
## measures the sweep orchestrator's grid scaling at 1/2/4 workers
## (+ resume-from-store), and writes BENCH_scheduler.json (committed, so
## every PR is measured against the last).
bench:
	python -m repro.experiments bench

## Gate the committed trajectory: fails when the 20k/2k pass-cost ratio
## exceeds 3x, the batched path drifts from ~1 revision per action, the
## ephemeral tier stops cutting >=20% off per-action commit cost at 2k
## (or stops shrinking history), the sharded sweep's merged payload
## drifts from the sequential one, resume of a completed sweep stops
## being served from the store in <1 s, (on >=2-core machines) the
## 4-worker grid speedup drops below 1.5x, or the observability gates
## fail: flight-recorder overhead > 5% over tracer-off, tracer-off
## throughput below the calibration-relative floor, an invalid exported
## trace, or decision logs diverging under tracing (docs/observability.md).
bench-check:
	python -m repro.experiments bench-check

## Fast-path/reference decision parity only (quick hot-path sanity).
parity:
	python -m pytest tests/core/test_decision_parity.py -q

## cProfile the 2k-request §V-A replay: the top-25 functions by
## cumulative time, then a per-subsystem rollup (commit path, dispatch,
## scheduling passes, cache manager, metrics, sim kernel) of exclusive
## time — the tools that found every hot spot so far (index scans,
## batched txns, columnar replay, pass elision, commit-path residue).
##   make profile                          # 2k requests
##   make profile PROFILE_REQUESTS=20000   # deeper replay
PROFILE_REQUESTS ?= 2000
profile:
	python -m repro.experiments profile --profile-requests $(PROFILE_REQUESTS)

## Flight-recorder replay: run the 2k §V-A workload with tracing on and
## write a Perfetto-loadable trace.json (docs/observability.md).
##   make trace                            # 2k requests -> trace.json
##   make trace TRACE_REQUESTS=20000       # deeper replay
TRACE_REQUESTS ?= 2000
trace:
	python -m repro.experiments trace --requests $(TRACE_REQUESTS)

## Regenerate the paper's tables and figures through the sweep
## orchestrator (WORKERS processes).  Figures always re-execute unless a
## store is named explicitly on the command line (`make figures
## SWEEP_STORE=dir`): cell IDs hash config, not code, so resuming from a
## store left over from an older checkout would serve stale figures.
figures:
	python -m repro.experiments all --workers $(WORKERS) $(if $(filter command line,$(origin SWEEP_STORE)),--store $(SWEEP_STORE))

## Sharded §V sweep: expand the declarative policy x working-set grid and
## run it on a multiprocess worker pool (repro/experiments/sweep.py).
## Results persist under SWEEP_STORE (one JSON per cell, keyed by
## content-hash cell ID; see repro/experiments/store.py for the layout),
## so an interrupted sweep resumes with only the missing cells:
##   make sweep                           # 4 workers, store .sweep-results
##   make sweep WORKERS=8                 # wider pool
##   make sweep SWEEP_STORE=/tmp/cells    # elsewhere
##   make sweep FAULTS="none recoverable" # add the chaos axis (docs/robustness.md)
WORKERS ?= 4
SWEEP_STORE ?= .sweep-results
FAULTS ?=
sweep:
	python -m repro.experiments sweep --workers $(WORKERS) --store $(SWEEP_STORE) --resume $(if $(FAULTS),--fault-profiles $(FAULTS))
