"""A multi-model image-classification service with real NumPy inference.

The paper's motivating workload (§I): latency-sensitive image
classification served by FaaS functions on shared GPUs.  This example
deploys three functions over different CNN families, feeds them the three
datasets of §V-A.2 (MNIST-, CIFAR-, and Hymenoptera-like synthetic
images), and runs *real* forward passes — the Hymenoptera photos are
variable-size and get compressed to 32x32 in the function's preprocess
step, exactly as the paper describes.

Run:  python examples/image_classification_service.py
"""

import numpy as np

from repro.faas import FunctionSpec, Gateway
from repro.models.nn import build_model
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import cifar_like, compress_to_batch, hymenoptera_like, mnist_like


def main() -> None:
    system = FaaSCluster(SystemConfig(policy="lalbo3"))
    gateway = Gateway(system)

    # -- three services over different model families -------------------
    services = {
        "digits": ("squeezenet1.1", 1, 28),     # MNIST-like, grayscale
        "objects": ("resnet50", 3, 32),         # CIFAR-like, RGB
        "insects": ("vgg16", 3, 32),            # Hymenoptera-like, compressed
    }
    for name, (arch, in_channels, size) in services.items():
        preprocess = None
        if name == "insects":
            # raw photos are variable-size; compress before batching (§V-A.2)
            preprocess = lambda photos: compress_to_batch(photos, size=32)  # noqa: E731
        spec = FunctionSpec(
            name=name,
            model_architecture=arch,
            preprocess=preprocess,
            postprocess=lambda probs: probs.argmax(axis=-1),
        )
        fn = gateway.register(spec)
        # attach a real NumPy network so responses are genuine probabilities
        fn.model_handle.instance.metadata["network"] = build_model(
            arch, in_channels=in_channels, input_size=size, seed=42
        )

    # -- cold phase: first request of each dataset ------------------------
    digits = mnist_like(8, seed=1).images
    objects = cifar_like(8, seed=2).images
    insects = hymenoptera_like(6, min_size=64, max_size=256, seed=3)

    cold = [
        gateway.invoke("digits", payload=digits),
        gateway.invoke("objects", payload=objects),
        gateway.invoke("insects", payload=insects),
    ]
    system.run()

    # -- warm phase: the models now sit in GPU memory → cache hits --------
    warm = [
        gateway.invoke("objects", payload=objects),
        gateway.invoke("insects", payload=insects),
    ]
    system.run()

    print(f"{'function':9s} {'phase':5s} {'latency':>8s}  predictions")
    for phase, invocations in (("cold", cold), ("warm", warm)):
        for inv in invocations:
            labels = np.asarray(inv.response)
            print(f"{inv.function:9s} {phase:5s} {inv.latency:7.2f}s  {labels.tolist()}")

    hits = sum(1 for r in system.completed if r.cache_hit)
    print(f"\ncache hits: {hits}/{len(system.completed)} "
          f"(warm-phase calls reused the GPU-resident models)")
    assert hits == len(warm)
    assert all(inv.response is not None for inv in cold + warm)
    # warm calls skip the model upload entirely
    assert max(i.latency for i in warm) < min(i.latency for i in cold)


if __name__ == "__main__":
    main()
