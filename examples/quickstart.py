"""Quickstart: deploy an ML inference function on the GPU-enabled FaaS.

Walks the paper's end-user story (§II-A / §III-A):

1. build the system (3 nodes x 4 GPUs, the paper's testbed),
2. register a function whose Dockerfile carries the GPU-enable flag —
   the Gateway transparently swaps its ``torch.load``/``model(input)``
   calls for the interceptor that routes through the Scheduler,
3. invoke it twice and watch the cold-start (model upload over PCIe)
   versus the warm cache hit.

Run:  python examples/quickstart.py
"""

from repro.faas import FunctionSpec, Gateway
from repro.runtime import FaaSCluster, SystemConfig


def main() -> None:
    # 1. the system: paper testbed, locality-aware scheduler with O3 dispatch
    system = FaaSCluster(SystemConfig(policy="lalbo3"))
    gateway = Gateway(system)

    # 2. register an image-classification function backed by resnet50.
    #    The default Dockerfile template sets ENV GPU_ENABLE=1.
    gateway.register(FunctionSpec(name="classify", model_architecture="resnet50"))

    # 3a. first invocation: container cold start + model upload + inference
    first = gateway.invoke("classify", payload=None)
    system.run()
    print(f"cold invocation : {first.latency:6.2f} s  (build + cold start + load + infer)")

    # 3b. second invocation: warm container, model already in GPU memory
    second = gateway.invoke("classify")
    system.run()
    print(f"warm invocation : {second.latency:6.2f} s  (cache hit: inference only)")

    request = system.completed[-1]
    print(f"cache hit       : {request.cache_hit}")
    ip, device = request.gpu_address
    print(f"served by       : {device} on {ip}")
    speedup = first.latency / second.latency
    print(f"speedup         : {speedup:.1f}x from GPU model caching")
    assert request.cache_hit and speedup > 2


if __name__ == "__main__":
    main()
