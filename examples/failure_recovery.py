"""Operating through GPU failures, with a live timeline.

Runs two minutes of the Azure workload on the 12-GPU testbed, kills a
whole node (4 GPUs) one minute in — losing every model cached there and
the requests in flight — then brings it back.  A timeline sampler records
queue depths and GPU states so you can watch the system absorb the hit:
requests are re-queued at their arrival positions, retried on survivors,
and nothing is lost.

Run:  python examples/failure_recovery.py
"""

from repro.metrics import TimelineSampler
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import SyntheticAzureTrace, WorkloadSpec, build_workload


def main() -> None:
    system = FaaSCluster(SystemConfig(policy="lalbo3"))
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=2), trace=SyntheticAzureTrace()
    )
    sampler = TimelineSampler(system, period_s=10.0)
    sampler.start()

    for request in workload.requests:
        system.submit_at(request)

    node1 = system.cluster.nodes[1]
    victims = [g.gpu_id for g in node1.gpus]
    for gpu_id in victims:
        system.sim.schedule_at(60.0, system.fail_gpu, gpu_id)     # node dies
        system.sim.schedule_at(90.0, system.recover_gpu, gpu_id)  # comes back

    system.run(until=workload.duration_s)
    sampler.stop()
    system.run()  # drain the tail

    print("time   idle  load  infer  queue  completed")
    for s in sampler.samples:
        marker = "  <- node1 down" if 60.0 <= s.time_s < 90.0 else ""
        print(
            f"{s.time_s:5.0f}  {s.gpus_idle:4d}  {s.gpus_loading:4d}  "
            f"{s.gpus_inferring:5d}  {s.global_queue_depth:5d}  "
            f"{s.completed_requests:9d}{marker}"
        )

    retried = [r for r in workload.requests if r.retries > 0]
    print(f"\ncompleted : {len(system.completed)}/{len(workload.requests)}")
    print(f"retried   : {len(retried)} requests survived the node failure")
    avg = sum(r.latency for r in system.completed) / len(system.completed)
    print(f"avg latency (with failure + recovery): {avg:.2f} s")

    assert len(system.completed) == len(workload.requests), "no request lost"
    assert retried, "the failure really interrupted work"


if __name__ == "__main__":
    main()
