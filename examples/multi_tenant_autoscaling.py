"""Multi-tenant GPU FaaS with quotas and demand-driven autoscaling (§VI).

Two tenants share the cluster:

* ``burst`` floods the platform with invocations of its functions — the
  autoscaler grows its container pool, but its GPU usage is capped by a
  per-tenant process quota, so it cannot monopolize GPU memory;
* ``steady`` sends a trickle and keeps meeting its latency expectations
  despite the noisy neighbour.

Run:  python examples/multi_tenant_autoscaling.py
"""

import numpy as np

from repro.core import TenantQuota
from repro.faas import Autoscaler, FunctionSpec, Gateway
from repro.runtime import FaaSCluster, SystemConfig


def main() -> None:
    system = FaaSCluster(
        SystemConfig(
            policy="lalbo3",
            quotas={"burst": TenantQuota(max_processes=4)},  # isolation lever
        )
    )
    gateway = Gateway(system)
    scaler = Autoscaler(system.sim, gateway, period_s=10.0, target_per_replica=20.0)
    scaler.start()

    # the bursty tenant deploys several models; the steady one deploys one
    for i, arch in enumerate(["vgg19", "vgg16", "wideresnet1012", "densenet201"]):
        gateway.register(
            FunctionSpec(name=f"burst-{i}", model_architecture=arch, tenant="burst",
                         max_replicas=6)
        )
    gateway.register(
        FunctionSpec(name="steady", model_architecture="resnet18", tenant="steady")
    )
    system.run(until=3.0)  # builds + first replicas

    rng = np.random.default_rng(0)
    # burst tenant: 240 invocations over one minute across its functions
    for t in sorted(rng.uniform(3.0, 63.0, size=240)):
        name = f"burst-{rng.integers(0, 4)}"
        system.sim.schedule_at(t, gateway.invoke, name)
    # steady tenant: one invocation every 5 seconds
    steady_invs = []
    for k in range(12):
        system.sim.schedule_at(
            3.0 + 5.0 * k, lambda: steady_invs.append(gateway.invoke("steady"))
        )
    system.run(until=120.0)  # let the autoscaler react while load flows
    scaler.stop()            # the periodic timer would keep run() alive
    system.run()             # drain everything that remains

    # -- report -----------------------------------------------------------
    steady_lat = [inv.latency for inv in steady_invs if inv.completed_at is not None]
    burst_fns = [gateway.get(f"burst-{i}") for i in range(4)]
    peak_replicas = {
        f"burst-{i}": max(
            (n for _, name, n in scaler.decisions if name == f"burst-{i}"), default=1
        )
        for i in range(4)
    }
    print(f"burst replicas at peak           : {list(peak_replicas.values())}")
    print(f"burst replicas after cool-down   : "
          f"{[fn.pool.replica_count() for fn in burst_fns]}")
    print(f"autoscaler decisions             : {len(scaler.decisions)}")
    usage = system.tenancy.usage("burst")
    print(f"burst GPU processes (capped at 4): {usage['processes']:.0f}")
    print(f"burst GPU time consumed          : {usage['gpu_time_s']:.0f} s")
    print(f"steady p50 latency               : {np.median(steady_lat):.2f} s")
    print(f"steady worst latency             : {max(steady_lat):.2f} s")

    assert usage["processes"] <= 4, "quota must cap burst's resident models"
    assert len(steady_lat) == 12, "steady tenant must complete despite the noise"
    assert any(n > 1 for n in peak_replicas.values()), "autoscaler scaled up under load"


if __name__ == "__main__":
    main()
