"""Replay the paper's evaluation: LB vs LALB vs LALBO3 on the Azure trace.

Reproduces the §V headline at full scale — 12 GPUs, 325 requests/minute,
6 minutes of the (synthetic) Azure Functions trace, working sets 15/25/35 —
and prints Figure 4 plus the headline reductions.

Run:  python examples/scheduler_comparison.py
"""

from repro.experiments import (
    format_fig4,
    format_fig5,
    format_fig6,
    headline_reductions,
    run_fig4,
)
from repro.traces import SyntheticAzureTrace


def main() -> None:
    print("running 9 full-system experiments (3 schedulers x 3 working sets)...\n")
    trace = SyntheticAzureTrace()
    grid = run_fig4(trace=trace)

    print(format_fig4(grid))
    print()
    print(format_fig5(grid))
    print()
    print(format_fig6(grid))

    print("\nheadline reductions vs the default LB scheduler:")
    for key, value in headline_reductions(grid).items():
        print(f"  {key:38s} {value:6.2f}%")

    speedup = grid[("lb", 15)].avg_latency_s / grid[("lalbo3", 15)].avg_latency_s
    print(f"\nlocality-aware scheduling speedup at WS=15: {speedup:.0f}x "
          "(paper reports 48x on real hardware)")
    assert speedup > 10


if __name__ == "__main__":
    main()
