"""Ablation: why locality must be balanced against load (paper §I).

§I's motivation: "favoring locality may increase the average latency of
requests because all the requests are forwarded to the GPU that has the
model cached while the others are left idle. ... load-balancing may
increase cache misses."  This bench runs the pure-locality strawman
against LB and LALB to quantify both failure modes: locality-only gets a
superb hit ratio but queues everything behind few GPUs; LB spreads load
but thrashes the cache; LALB beats both on latency.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

POLICIES = ("lb", "locality", "lalb")


@pytest.fixture(scope="module")
def results(trace):
    return {
        policy: run_experiment(
            ExperimentConfig(policy=policy, working_set=15), trace=trace
        )
        for policy in POLICIES
    }


def test_locality_only_ablation(benchmark, trace, results):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="locality", working_set=15), trace=trace
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950

    print()
    for policy in POLICIES:
        s = results[policy]
        print(
            f"  {policy:9s} latency={s.avg_latency_s:8.3f}s "
            f"miss={s.cache_miss_ratio:.4f} sm={s.sm_utilization:.3f}"
        )

    # pure locality achieves the best hit ratio ...
    assert results["locality"].cache_miss_ratio <= results["lalb"].cache_miss_ratio + 1e-9
    assert results["locality"].cache_miss_ratio < results["lb"].cache_miss_ratio
    # ... but LALB's balance beats it on latency (§I's whole argument)
    assert results["lalb"].avg_latency_s < results["locality"].avg_latency_s


def test_locality_only_underuses_the_cluster(results):
    """Requests pile up behind caching GPUs while others sit idle."""
    assert results["locality"].avg_queueing_s > results["lalb"].avg_queueing_s


def test_all_policies_complete(results):
    assert all(s.completed_requests == 1950 for s in results.values())
