"""Figure 4c: GPU (SM) utilization.

Paper shape: LALBO3 has the highest SM utilization (lowest miss ratio →
least time stalled on PCIe uploads); utilization is consistent across
working sets because the request rate is pinned at 325/minute; 100% is
unreachable.
"""

import numpy as np

from repro.experiments import ExperimentConfig, run_experiment


def test_fig4c_regenerate(benchmark, trace, grid):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="lalbo3", working_set=25), trace=trace
        ),
        rounds=1,
        iterations=1,
    )
    assert 0.0 < summary.sm_utilization < 1.0

    for ws in (15, 25, 35):
        assert grid[("lalbo3", ws)].sm_utilization > grid[("lb", ws)].sm_utilization
        assert grid[("lalbo3", ws)].sm_utilization >= grid[("lalb", ws)].sm_utilization - 0.01


def test_fig4c_utilization_anticorrelates_with_missratio(grid):
    """§V-C: 'The SM utilization negatively correlates with the cache miss
    ratio because a GPU cannot use the SM ... until the model is uploaded'."""
    miss = [s.cache_miss_ratio for s in grid.values()]
    util = [s.sm_utilization for s in grid.values()]
    assert np.corrcoef(miss, util)[0, 1] < -0.5


def test_fig4c_stable_across_working_sets(grid):
    for policy in ("lb", "lalb", "lalbo3"):
        utils = [grid[(policy, ws)].sm_utilization for ws in (15, 25, 35)]
        assert max(utils) - min(utils) < 0.1


def test_fig4c_hundred_percent_unreachable(grid):
    assert all(s.sm_utilization < 0.95 for s in grid.values())
