"""Ablation: heterogeneous GPUs (paper §VI).

"Our solutions can inherently support the use of heterogeneous GPUs ...
It just needs to run the same profiling procedure on each unique type of
GPUs and use the profiled model loading and inference times in the
proposed scheduling algorithm."  We replace one node's RTX 2080s with a
faster type (bigger memory, quicker PCIe, 2.5x faster inference) and check
the scheduler exploits it.
"""

import pytest

from repro.cluster import ClusterSpec, GPUTypeSpec, PCIeModel
from repro.experiments import ExperimentConfig, run_experiment

FAST = GPUTypeSpec(
    name="a100",
    memory_mb=40_000.0,
    pcie=PCIeModel(bandwidth_mb_s=6456.0, fixed_overhead_s=0.8),
    speed_factor=0.4,
)
BASE = GPUTypeSpec()

HOMOGENEOUS = ClusterSpec.homogeneous(3, 4)
MIXED = ClusterSpec(nodes=((4, BASE), (4, BASE), (4, FAST)))


@pytest.fixture(scope="module")
def results(trace):
    cfg = ExperimentConfig(policy="lalbo3", working_set=35)
    from dataclasses import replace

    return {
        "homogeneous": run_experiment(replace(cfg, cluster=HOMOGENEOUS), trace=trace),
        "mixed": run_experiment(replace(cfg, cluster=MIXED), trace=trace),
    }


def test_heterogeneous_ablation(benchmark, trace, results):
    from dataclasses import replace

    cfg = replace(ExperimentConfig(policy="lalbo3", working_set=35), cluster=MIXED)
    summary = benchmark.pedantic(
        lambda: run_experiment(cfg, trace=trace), rounds=1, iterations=1
    )
    assert summary.completed_requests == 1950

    print()
    for name, s in results.items():
        print(f"  {name:12s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")

    # swapping a node to faster, larger GPUs must help end-to-end latency
    assert results["mixed"].avg_latency_s < results["homogeneous"].avg_latency_s


def test_heterogeneous_reduces_miss_ratio(results):
    """The 40 GB node caches far more models → fewer capacity misses."""
    assert results["mixed"].cache_miss_ratio < results["homogeneous"].cache_miss_ratio


def test_profiles_exist_per_type(trace):
    """The registry must carry per-type profiles for the mixed cluster."""
    from repro.models import ProfileRegistry

    reg = ProfileRegistry.from_table1([FAST])
    base = reg.get("vgg19", "rtx2080")
    fast = reg.get("vgg19", "a100")
    assert fast.infer_time_s < base.infer_time_s
    assert fast.load_time_s < base.load_time_s
