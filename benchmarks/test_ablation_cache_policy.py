"""Ablation: cache-replacement policy under LALBO3 (paper §VI).

The paper's Cache Manager uses LRU but its design supports any sorted-list
policy.  This bench swaps in FIFO, LFU, and size-aware replacement at the
paper's hardest operating point (working set 35) and checks that the
locality-aware scheduler keeps its advantage regardless of the policy —
§VI's claim that "regardless of what policy is used, our proposed
locality-aware scheduling can always improve its performance".
"""

from dataclasses import replace

import pytest

from repro.experiments import ExperimentConfig, run_experiment

POLICIES = ("lru", "fifo", "lfu", "size")


@pytest.fixture(scope="module")
def sweeps(trace):
    base = ExperimentConfig(policy="lalbo3", working_set=35)
    out = {}
    for rp in POLICIES:
        out[rp] = run_experiment(replace(base, replacement=rp), trace=trace)
    out["lb-lru"] = run_experiment(
        ExperimentConfig(policy="lb", working_set=35), trace=trace
    )
    return out


def test_cache_policy_ablation(benchmark, trace, sweeps):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="lalbo3", working_set=35, replacement="fifo"),
            trace=trace,
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950

    print()
    for rp in POLICIES:
        s = sweeps[rp]
        print(f"  replacement={rp:5s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")

    # locality-aware scheduling beats the LB baseline under EVERY policy
    lb = sweeps["lb-lru"]
    for rp in POLICIES:
        assert sweeps[rp].avg_latency_s < lb.avg_latency_s / 5, rp


def test_lru_is_competitive(sweeps):
    """LRU (the paper's choice) should be at or near the best latency."""
    best = min(sweeps[rp].avg_latency_s for rp in POLICIES)
    assert sweeps["lru"].avg_latency_s <= best * 1.25


def test_all_policies_complete_the_workload(sweeps):
    assert all(sweeps[rp].completed_requests == 1950 for rp in POLICIES)
