"""Shared fixtures for the benchmark harness.

Each ``test_fig*.py`` module regenerates one table/figure of the paper's
evaluation (§V).  The heavy sweep behind Figs. 4/5/6 is computed once per
session and shared; each benchmark then times one representative run and
asserts the figure's qualitative shape.
"""

import pytest

from repro.experiments import run_fig4
from repro.traces import SyntheticAzureTrace


@pytest.fixture(scope="session")
def trace():
    """The calibrated synthetic Azure trace (shared across benchmarks)."""
    return SyntheticAzureTrace()


@pytest.fixture(scope="session")
def grid(trace):
    """Policies × working-sets sweep at paper scale (Figs. 4a/4b/4c, 5, 6)."""
    return run_fig4(trace=trace)
