"""Figure 6: average number of duplicates of the top-1 model.

Paper shape: LB thrashes — duplicated copies of the hottest model keep
evicting each other, so it holds the most duplicates; LALB cuts the
average by ~49% at WS 15; the count can never exceed the 12 GPUs.
"""

from repro.experiments import ExperimentConfig, format_fig6, run_experiment


def test_fig6_regenerate(benchmark, trace, grid):
    summary = benchmark.pedantic(
        lambda: run_experiment(ExperimentConfig(policy="lalb", working_set=25), trace=trace),
        rounds=1,
        iterations=1,
    )
    assert summary.avg_duplicates_top_model > 0

    print()
    print(format_fig6(grid))

    for ws in (15, 25, 35):
        lb = grid[("lb", ws)].avg_duplicates_top_model
        assert grid[("lalb", ws)].avg_duplicates_top_model < lb
        assert grid[("lalbo3", ws)].avg_duplicates_top_model < lb


def test_fig6_bounded_by_gpu_count(grid):
    """'As the GPU-enabled FaaS uses 12 GPUs, the highest number of
    duplicates of the same model cannot exceed 12' (§V-D)."""
    assert all(s.avg_duplicates_top_model <= 12.0 for s in grid.values())


def test_fig6_lalb_reduction_band_ws15(grid):
    """Paper: 48.96% reduction at WS 15; accept >30%."""
    lb = grid[("lb", 15)].avg_duplicates_top_model
    lalb = grid[("lalb", 15)].avg_duplicates_top_model
    assert (lb - lalb) / lb > 0.30


def test_fig6_hot_model_is_replicated_under_locality(grid):
    """The design intentionally replicates popular models over multiple
    GPUs (§IV), so even LALB keeps several copies of the top-1 model."""
    assert grid[("lalb", 15)].avg_duplicates_top_model > 1.5
