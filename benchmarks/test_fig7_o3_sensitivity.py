"""Figure 7: sensitivity to the out-of-order dispatch limit (WS 35).

Paper shape: raising the limit from 0 to 45 reduces the average latency,
the cache miss ratio, *and* (counter-intuitively) the latency variance —
the extra cache hits outweigh the unfairness of skipping (§V-E).
"""

import pytest

from repro.experiments import PAPER_O3_LIMITS, format_fig7, run_fig7


@pytest.fixture(scope="module")
def sweep(trace):
    return run_fig7(limits=PAPER_O3_LIMITS, trace=trace)


def test_fig7_regenerate(benchmark, trace, sweep):
    partial = benchmark.pedantic(
        lambda: run_fig7(limits=(0, 45), trace=trace), rounds=1, iterations=1
    )
    assert set(partial) == {0, 45}

    print()
    print(format_fig7(sweep))

    assert sweep[45].avg_latency_s < sweep[0].avg_latency_s
    assert sweep[45].cache_miss_ratio < sweep[0].cache_miss_ratio


def test_fig7_variance_shrinks_with_larger_limit(sweep):
    """§V-E: 'the O3 limit value of 45 also reduces, instead of increasing,
    the variance of the average latency of the limit value of 0'."""
    assert sweep[45].latency_variance < sweep[0].latency_variance


def test_fig7_no_limit_beats_limit_zero_everywhere(sweep):
    """Every non-zero limit should do at least as well as limit 0."""
    base = sweep[0]
    for limit in PAPER_O3_LIMITS[1:]:
        assert sweep[limit].avg_latency_s <= base.avg_latency_s + 1e-9
        assert sweep[limit].cache_miss_ratio <= base.cache_miss_ratio + 1e-9


def test_fig7_limit_zero_is_lalb(sweep, grid):
    assert sweep[0].avg_latency_s == pytest.approx(grid[("lalb", 35)].avg_latency_s)
