"""Scheduler overhead: the §VI scalability data structures.

§VI: "the Scheduler maintains an auxiliary data structure that links the
queued requests to their corresponding models ... the complexity of this
search is bounded by the number of models cached on the GPU", and "the
Cache Manager maintains the lists of GPUs where each model is cached".

These benches measure both index lookups directly and show they stay flat
as the queue grows, unlike a linear scan.
"""

import os
import time

import pytest

from repro.core.queues import GlobalQueue
from repro.core.request import InferenceRequest
from repro.models import ModelInstance, get_profile


def _filled_queue(n_requests: int, n_models: int = 50):
    q = GlobalQueue()
    instances = [ModelInstance(f"m{i}", get_profile("alexnet")) for i in range(n_models)]
    for i in range(n_requests):
        q.push(
            InferenceRequest(
                f"fn{i % n_models}", instances[i % n_models], arrival_time=float(i)
            )
        )
    return q, instances


def test_model_index_lookup(benchmark):
    """first_for_model on a 10k-deep queue — the §VI auxiliary index."""
    q, instances = _filled_queue(10_000)
    target = instances[37].instance_id
    result = benchmark(q.first_for_model, target)
    assert result is not None
    assert result.model_id == target


def test_model_index_is_queue_length_independent():
    """Index lookups must not degrade with queue depth (amortized O(1))."""

    def measure(n):
        q, instances = _filled_queue(n)
        target = instances[0].instance_id
        t0 = time.perf_counter()
        for _ in range(2000):
            q.first_for_model(target)
        return time.perf_counter() - t0

    small = measure(100)
    large = measure(20_000)
    # allow generous noise but reject linear scaling (200x size ratio)
    assert large < small * 20


def test_linear_scan_for_comparison(benchmark):
    """The naive scan the index replaces (documented cost baseline)."""
    q, instances = _filled_queue(10_000)
    target = instances[37].instance_id

    def scan():
        for request in q:
            if request.model_id == target:
                return request
        return None

    result = benchmark(scan)
    assert result is not None


def test_cache_locations_index(benchmark):
    """Cache Manager's model→GPUs index lookup (bounded by #copies)."""
    from repro.cluster import ClusterSpec, build_cluster
    from repro.core.cache_manager import CacheManager
    from repro.sim import Simulator

    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec.homogeneous(4, 4))
    cache = CacheManager(sim, cluster.gpus)
    hot = ModelInstance("hot", get_profile("resnet50"))
    for gpu in cluster.gpus[:8]:
        gpu.admit("hot", hot.occupied_mb).mark_ready(0.0)
        cache.on_loaded(gpu.gpu_id, hot)
    locations = benchmark(cache.locations, "hot")
    assert len(locations) == 8


def test_scheduling_pass_cost_at_depth(benchmark):
    """One full LALBO3 pass with a deep global queue and busy GPUs."""
    from repro.cluster import ClusterSpec
    from repro.runtime import FaaSCluster, SystemConfig

    system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(3, 4)))
    instances = [ModelInstance(f"m{i}", get_profile("alexnet")) for i in range(30)]
    for gpu in system.cluster.gpus:
        gpu.begin_inference()  # everything busy → pure queueing cost
    for i in range(2_000):
        system.scheduler.global_queue.push(
            InferenceRequest(f"fn{i % 30}", instances[i % 30], arrival_time=float(i))
        )

    def one_pass():
        return system.scheduler.policy.schedule_pass(system.scheduler)

    progress = benchmark(one_pass)
    assert progress is False  # no idle GPU → no action, but the pass ran


# ---------------------------------------------------------------------------
# Depth scaling of a *working* pass: one idle GPU, hit at the queue tail.
#
# This is the scenario §VI's index bounds: the old first scan walked (and
# visit-stamped) every queued request before reaching the hit, so its cost
# grew linearly with queue depth; the index-driven scan does one lookup per
# resident model plus one lazy prefix update.
# ---------------------------------------------------------------------------

PASS_DEPTHS = (100, 2_000, 20_000)


def _system_with_hit_at_tail(depth: int):
    """LALBO3 system: 11 busy GPUs, 1 idle GPU caching only the tail request's model."""
    from repro.cluster import ClusterSpec
    from repro.runtime import FaaSCluster, SystemConfig

    system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(3, 4)))
    instances = [ModelInstance(f"m{i}", get_profile("alexnet")) for i in range(30)]
    hot = ModelInstance("hot", get_profile("alexnet"))
    idle = system.cluster.gpus[0]
    idle.admit(hot.instance_id, hot.occupied_mb).mark_ready(0.0)
    system.cache.on_loaded(idle.gpu_id, hot)
    for gpu in system.cluster.gpus[1:]:
        gpu.begin_inference()
    queue = system.scheduler.global_queue
    for i in range(depth - 1):
        queue.push(
            InferenceRequest(f"fn{i % 30}", instances[i % 30], arrival_time=float(i))
        )
    queue.push(InferenceRequest("hot", hot, arrival_time=float(depth)))
    return system


def _one_pass_best(depth: int, *, fast: bool = True, rounds: int = 5) -> float:
    """Best-of-``rounds`` wall time of one pass on a fresh system per round.

    The minimum is the noise-robust estimator for the ratio assertions
    below: a preempted round inflates the median on a loaded CI box, but
    only systematic cost moves the best observed time.
    """
    times = []
    for _ in range(rounds):
        system = _system_with_hit_at_tail(depth)
        system.scheduler.policy.use_fast_path = fast
        t0 = time.perf_counter()
        progress = system.scheduler.policy.schedule_pass(system.scheduler)
        times.append(time.perf_counter() - t0)
        assert progress is True  # the tail hit was found and dispatched
    return min(times)


@pytest.mark.parametrize("depth", PASS_DEPTHS)
def test_scheduling_scan_cost_at_depth(benchmark, depth):
    """Index-driven first scan with the cache hit at the tail of the queue.

    Exported to ``BENCH_scheduler.json`` by ``python -m repro.experiments
    bench`` as the per-depth pass-cost trajectory.
    """

    def setup():
        system = _system_with_hit_at_tail(depth)
        return (system,), {}

    def one_pass(system):
        return system.scheduler.policy.schedule_pass(system.scheduler)

    progress = benchmark.pedantic(one_pass, setup=setup, rounds=5, iterations=1)
    assert progress is True


#: set REPRO_PERF_ASSERTS=0 to demote the wall-clock ratio assertions on
#: machines too noisy for any timing bound (the benches still run/report)
_PERF_ASSERTS = os.environ.get("REPRO_PERF_ASSERTS", "1") != "0"


def _assert_ratio(measure, bound: float) -> None:
    """Assert ``measure() < bound`` with one retry at a larger sample.

    Best-of-rounds already rejects per-round preemption; the retry absorbs
    whole-measurement interference (e.g. a co-tenant saturating the box for
    the first sample) so a functionally correct build does not fail on
    wall-clock noise.
    """
    if not _PERF_ASSERTS:
        pytest.skip("REPRO_PERF_ASSERTS=0: timing assertions disabled")
    if measure(7) < bound:
        return
    assert measure(15) < bound


def test_scheduling_pass_cost_grows_sublinearly():
    """§VI's bound, asserted: 10× deeper queue ⇒ far less than 10× cost.

    The pre-index scan walked the whole queue (20k/2k ratio ≈ 10×); the
    index-driven scan must stay under 3× (it is ~1× plus tree noise).
    """

    def ratio(rounds):
        t_2k = _one_pass_best(2_000, rounds=rounds)
        t_20k = _one_pass_best(20_000, rounds=rounds)
        return t_20k / max(t_2k, 1e-5)  # floor guards against timer noise

    _assert_ratio(ratio, 3.0)


def test_fast_scan_beats_reference_scan():
    """The index-driven scan must dominate the reference O(queue) scan.

    Guards the fast path against regressions that would quietly fall back
    to (or underperform) the literal Algorithm-1 loop.
    """

    def ratio(rounds):
        t_ref = _one_pass_best(2_000, fast=False, rounds=rounds)
        t_fast = _one_pass_best(2_000, fast=True, rounds=rounds)
        return t_fast / t_ref

    _assert_ratio(ratio, 1 / 5)
