"""Scheduler overhead: the §VI scalability data structures.

§VI: "the Scheduler maintains an auxiliary data structure that links the
queued requests to their corresponding models ... the complexity of this
search is bounded by the number of models cached on the GPU", and "the
Cache Manager maintains the lists of GPUs where each model is cached".

These benches measure both index lookups directly and show they stay flat
as the queue grows, unlike a linear scan.
"""

import time

import pytest

from repro.core.queues import GlobalQueue
from repro.core.request import InferenceRequest
from repro.models import ModelInstance, get_profile


def _filled_queue(n_requests: int, n_models: int = 50):
    q = GlobalQueue()
    instances = [ModelInstance(f"m{i}", get_profile("alexnet")) for i in range(n_models)]
    for i in range(n_requests):
        q.push(
            InferenceRequest(
                f"fn{i % n_models}", instances[i % n_models], arrival_time=float(i)
            )
        )
    return q, instances


def test_model_index_lookup(benchmark):
    """first_for_model on a 10k-deep queue — the §VI auxiliary index."""
    q, instances = _filled_queue(10_000)
    target = instances[37].instance_id
    result = benchmark(q.first_for_model, target)
    assert result is not None
    assert result.model_id == target


def test_model_index_is_queue_length_independent():
    """Index lookups must not degrade with queue depth (amortized O(1))."""

    def measure(n):
        q, instances = _filled_queue(n)
        target = instances[0].instance_id
        t0 = time.perf_counter()
        for _ in range(2000):
            q.first_for_model(target)
        return time.perf_counter() - t0

    small = measure(100)
    large = measure(20_000)
    # allow generous noise but reject linear scaling (200x size ratio)
    assert large < small * 20


def test_linear_scan_for_comparison(benchmark):
    """The naive scan the index replaces (documented cost baseline)."""
    q, instances = _filled_queue(10_000)
    target = instances[37].instance_id

    def scan():
        for request in q:
            if request.model_id == target:
                return request
        return None

    result = benchmark(scan)
    assert result is not None


def test_cache_locations_index(benchmark):
    """Cache Manager's model→GPUs index lookup (bounded by #copies)."""
    from repro.cluster import ClusterSpec, build_cluster
    from repro.core.cache_manager import CacheManager
    from repro.sim import Simulator

    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec.homogeneous(4, 4))
    cache = CacheManager(sim, cluster.gpus)
    hot = ModelInstance("hot", get_profile("resnet50"))
    for gpu in cluster.gpus[:8]:
        gpu.admit("hot", hot.occupied_mb).mark_ready(0.0)
        cache.on_loaded(gpu.gpu_id, hot)
    locations = benchmark(cache.locations, "hot")
    assert len(locations) == 8


def test_scheduling_pass_cost_at_depth(benchmark):
    """One full LALBO3 pass with a deep global queue and busy GPUs."""
    from repro.cluster import ClusterSpec
    from repro.runtime import FaaSCluster, SystemConfig

    system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(3, 4)))
    instances = [ModelInstance(f"m{i}", get_profile("alexnet")) for i in range(30)]
    for gpu in system.cluster.gpus:
        gpu.begin_inference()  # everything busy → pure queueing cost
    for i in range(2_000):
        system.scheduler.global_queue.push(
            InferenceRequest(f"fn{i % 30}", instances[i % 30], arrival_time=float(i))
        )

    def one_pass():
        return system.scheduler.policy.schedule_pass(system.scheduler)

    progress = benchmark(one_pass)
    assert progress is False  # no idle GPU → no action, but the pass ran
