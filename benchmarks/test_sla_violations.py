"""SLA study: locality-aware scheduling and latency deadlines (§I).

The paper motivates GPU FaaS with production inference's "stringent latency
requirements" (e.g. real-time search suggestions).  This bench attaches a
per-request SLA to the paper workload and measures how many deadlines each
scheduler blows: the LB baseline saturates and misses nearly everything,
while LALB/LALBO3 keep violations rare.
"""

import pytest

from repro.experiments import ExperimentConfig, run_experiment

SLA_S = 10.0  # generous: ~2x a cold load + inference


@pytest.fixture(scope="module")
def results(trace):
    return {
        policy: run_experiment(
            ExperimentConfig(policy=policy, working_set=25, sla_s=SLA_S), trace=trace
        )
        for policy in ("lb", "lalb", "lalbo3")
    }


def test_sla_violations(benchmark, trace, results):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="lalbo3", working_set=25, sla_s=SLA_S), trace=trace
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950

    print()
    for policy, s in results.items():
        print(f"  {policy:7s} violations={s.sla_violation_ratio:7.2%} "
              f"avg_latency={s.avg_latency_s:7.3f}s")

    # LB saturates → the vast majority of requests blow the deadline
    assert results["lb"].sla_violation_ratio > 0.5
    # locality-aware scheduling keeps violations rare
    assert results["lalb"].sla_violation_ratio < 0.05
    assert results["lalbo3"].sla_violation_ratio <= results["lalb"].sla_violation_ratio + 1e-9


def test_no_sla_means_no_violations(trace):
    s = run_experiment(
        ExperimentConfig(policy="lb", working_set=15, minutes=1), trace=trace
    )
    assert s.sla_violation_ratio == 0.0
