"""Ablation: LRU vs. the offline-optimal (Belady) replacement bound.

The paper uses LRU (§III-D) and argues any replacement policy fits its
Cache Manager (§VI).  Belady's clairvoyant policy — evict the model whose
next request is farthest in the future — bounds what *any* online policy
could achieve; the gap to LRU quantifies how much the paper's choice
leaves on the table at the hardest operating point (working set 35).
"""

from repro.experiments import run_belady_bound


def test_belady_bound(benchmark, trace):
    out = benchmark.pedantic(
        lambda: run_belady_bound(working_set=35, trace=trace), rounds=1, iterations=1
    )
    lru, belady = out["lru"], out["belady"]

    print()
    print(f"  lru    miss={lru.cache_miss_ratio:.4f} latency={lru.avg_latency_s:.3f}s")
    print(f"  belady miss={belady.cache_miss_ratio:.4f} latency={belady.avg_latency_s:.3f}s")

    # the clairvoyant bound cannot lose (tiny tolerance for tie-breaks
    # interacting with the scheduler's placement decisions)
    assert belady.cache_miss_ratio <= lru.cache_miss_ratio + 0.02
    assert lru.completed_requests == belady.completed_requests == 1950


def test_lru_is_close_to_optimal_at_small_working_set(trace):
    """At WS 15 the cache covers the working set: LRU ~ Belady."""
    out = run_belady_bound(working_set=15, trace=trace)
    assert abs(out["lru"].cache_miss_ratio - out["belady"].cache_miss_ratio) < 0.05
