"""Table I: model profiles (paper transcription + wall-clock re-profiling).

Regenerates the occupation-size / loading-time / inference-latency table
and re-runs the §IV-A profiling procedure on the miniature NumPy networks.
"""

from repro.experiments import format_table1, table1_from_paper, table1_wallclock
from repro.models import TABLE1_ROWS
from repro.models.nn import build_model
from repro.models.profiler import profile_network


def test_table1_paper_profiles(benchmark):
    profiles = benchmark(table1_from_paper)
    assert len(profiles) == 22
    text = format_table1(profiles)
    assert "vgg19" in text and "squeezenet1.1" in text
    # the published invariant the schedulers rely on: loading > inference
    assert all(p.load_time_s > p.infer_time_s for p in profiles.values())


def test_table1_wallclock_profiling(benchmark):
    """Run the real profiling procedure on three representative families."""
    profiles = benchmark(
        table1_wallclock,
        architectures=["squeezenet1.1", "resnet50", "vgg19"],
        batch_sizes=(1, 2, 4),
    )
    # relative compute must rank like the real families
    assert (
        profiles["squeezenet1.1"].infer_time(4)
        < profiles["resnet50"].infer_time(4)
        < profiles["vgg19"].infer_time(4)
    )
    assert all(p.load_time_s > 0 for p in profiles.values())


def test_table1_batch_regression_quality(benchmark):
    """The fitted regression must interpolate the measured points sensibly."""

    def profile_one():
        return profile_network(
            build_model("alexnet"), batch_sizes=(1, 2, 4, 8), repeats=2
        )

    wp = benchmark(profile_one)
    fitted = [wp.profile.regression.time_for(b) for b in wp.batch_sizes]
    measured = list(wp.measured_s)
    # mean relative error of the linear fit should be small
    errs = [abs(f - m) / max(m, 1e-9) for f, m in zip(fitted, measured)]
    assert sum(errs) / len(errs) < 0.5


def test_table1_rows_are_size_sorted():
    sizes = [size for _, size, _, _ in TABLE1_ROWS]
    assert sizes == sorted(sizes)
