"""Figure 4b: cache miss ratio across schedulers and working sets.

Paper shape: LALB cuts LB's miss ratio by 94.11% at WS 15 but only 65.21%
at WS 35 (locality gets harder as the working set outgrows GPU memory);
LALBO3 pushes the WS-35 reduction to 81.15%.
"""

from repro.experiments import ExperimentConfig, run_experiment


def test_fig4b_regenerate(benchmark, trace, grid):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="lalb", working_set=15), trace=trace
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.cache_miss_ratio < 0.1

    rows = [
        (policy, ws, grid[(policy, ws)].cache_miss_ratio)
        for policy in ("lb", "lalb", "lalbo3")
        for ws in (15, 25, 35)
    ]
    print()
    for policy, ws, miss in rows:
        print(f"  {policy:7s} ws={ws:2d} miss_ratio={miss:.4f}")

    # strong reduction at WS 15
    red15 = 1 - grid[("lalb", 15)].cache_miss_ratio / grid[("lb", 15)].cache_miss_ratio
    assert red15 > 0.85
    # degraded (but still real) reduction at WS 35
    red35 = 1 - grid[("lalb", 35)].cache_miss_ratio / grid[("lb", 35)].cache_miss_ratio
    assert 0.3 < red35 < red15
    # O3 dispatch recovers part of the loss at WS 35
    assert grid[("lalbo3", 35)].cache_miss_ratio < grid[("lalb", 35)].cache_miss_ratio


def test_fig4b_miss_ratio_monotone_in_working_set(grid):
    """For every scheduler, more unique models → more misses."""
    for policy in ("lb", "lalb", "lalbo3"):
        m = [grid[(policy, ws)].cache_miss_ratio for ws in (15, 25, 35)]
        assert m[0] <= m[1] <= m[2] + 1e-9
