"""Ablation: cluster size scaling (4 → 16 GPUs).

Not a paper figure, but DESIGN.md's scalability check on §VI's claims: the
distributed GPU Managers and per-GPU LRU lists should let the system use
added GPUs productively — latency must fall monotonically as the testbed
grows under the fixed 325 requests/minute load.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import ExperimentConfig, run_experiment

SIZES = ((1, 4), (2, 4), (3, 4), (4, 4))  # (nodes, gpus/node) → 4..16 GPUs


@pytest.fixture(scope="module")
def sweep(trace):
    out = {}
    for nodes, per in SIZES:
        cfg = ExperimentConfig(
            policy="lalbo3",
            working_set=25,
            cluster=ClusterSpec.homogeneous(nodes, per),
        )
        out[nodes * per] = run_experiment(cfg, trace=trace)
    return out


def test_gpu_scaling_ablation(benchmark, trace, sweep):
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(
                policy="lalbo3", working_set=25, cluster=ClusterSpec.homogeneous(2, 4)
            ),
            trace=trace,
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950

    print()
    for gpus, s in sorted(sweep.items()):
        print(f"  gpus={gpus:2d} latency={s.avg_latency_s:8.3f}s miss={s.cache_miss_ratio:.4f}")

    latencies = [sweep[g].avg_latency_s for g in sorted(sweep)]
    assert latencies == sorted(latencies, reverse=True)  # more GPUs → faster


def test_small_cluster_is_saturated(sweep):
    """4 GPUs cannot absorb 325 req/min of ~1.3 s inferences."""
    assert sweep[4].avg_latency_s > sweep[16].avg_latency_s * 3


def test_every_size_completes(sweep):
    assert all(s.completed_requests == 1950 for s in sweep.values())
