"""Ablation: batch-size sensitivity (the paper fixes batch = 32).

Each model's inference latency follows its profiled linear batch
regression (§IV-A), so sweeping the batch size exposes the latency /
image-throughput trade-off behind the paper's fixed choice.
"""

import pytest

from repro.experiments.ablations import run_batch_size_sweep

BATCHES = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def sweep(trace):
    return run_batch_size_sweep(BATCHES, working_set=15, trace=trace)


def test_batch_size_ablation(benchmark, trace, sweep):
    partial = benchmark.pedantic(
        lambda: run_batch_size_sweep((32,), working_set=15, trace=trace),
        rounds=1,
        iterations=1,
    )
    assert 32 in partial

    print()
    for batch, s in sorted(sweep.items()):
        images_per_s = s.completed_requests * batch / s.horizon_s
        print(
            f"  batch={batch:2d} latency={s.avg_latency_s:6.3f}s "
            f"miss={s.cache_miss_ratio:.4f} images/s={images_per_s:7.1f}"
        )

    # larger batches cost more per request ...
    latencies = [sweep[b].avg_latency_s for b in BATCHES]
    assert latencies == sorted(latencies)
    # ... but deliver more images per second
    throughput = [
        sweep[b].completed_requests * b / sweep[b].horizon_s for b in BATCHES
    ]
    assert throughput == sorted(throughput)


def test_miss_ratio_insensitive_to_batch_size(sweep):
    """Caching depends on model identity, not batch size."""
    ratios = [sweep[b].cache_miss_ratio for b in BATCHES]
    assert max(ratios) - min(ratios) < 0.05


def test_all_batches_complete(sweep):
    assert all(s.completed_requests == 1950 for s in sweep.values())
