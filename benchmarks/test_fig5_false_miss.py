"""Figure 5: false miss ratio.

Paper shape: the default LB scheduler has by far the worst false-miss ratio
(up to ~96% of its misses re-load a model resident elsewhere); LALB and
LALBO3 cut it sharply at WS 15/25, and at WS 35 only LALBO3 retains a
clear edge.
"""

from repro.experiments import ExperimentConfig, false_per_miss, format_fig5, run_experiment


def test_fig5_regenerate(benchmark, trace, grid):
    summary = benchmark.pedantic(
        lambda: run_experiment(ExperimentConfig(policy="lb", working_set=25), trace=trace),
        rounds=1,
        iterations=1,
    )
    assert summary.false_miss_ratio > 0

    print()
    print(format_fig5(grid))

    for ws in (15, 25, 35):
        lb = grid[("lb", ws)]
        assert grid[("lalb", ws)].false_miss_ratio < lb.false_miss_ratio
        assert grid[("lalbo3", ws)].false_miss_ratio < lb.false_miss_ratio


def test_fig5_lb_misses_are_mostly_false(grid):
    """Most LB misses target models that sit on another GPU."""
    assert false_per_miss(grid[("lb", 15)]) > 0.6


def test_fig5_locality_schedulers_also_reduce_false_share(grid):
    """Not just fewer misses — a smaller *share* of them is false."""
    for ws in (15, 25, 35):
        assert false_per_miss(grid[("lalb", ws)]) < false_per_miss(grid[("lb", ws)])


def test_fig5_false_miss_never_exceeds_miss(grid):
    for s in grid.values():
        assert s.false_miss_ratio <= s.cache_miss_ratio + 1e-12
