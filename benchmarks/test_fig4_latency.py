"""Figure 4a: average function latency, LB vs LALB vs LALBO3.

Paper shape: LALB reduces LB's average latency by 97.74% (WS 15), 93.33%
(WS 25), and ~79% (WS 35); LALBO3 matches or beats LALB everywhere and
wins outright at the larger working sets.
"""

from repro.experiments import ExperimentConfig, format_fig4, run_experiment


def test_fig4a_regenerate(benchmark, trace, grid):
    """Time one full experiment run (LALBO3, WS 35) and assert the figure."""
    summary = benchmark.pedantic(
        lambda: run_experiment(
            ExperimentConfig(policy="lalbo3", working_set=35), trace=trace
        ),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950

    print()
    print(format_fig4(grid))

    for ws in (15, 25, 35):
        lb = grid[("lb", ws)].avg_latency_s
        lalb = grid[("lalb", ws)].avg_latency_s
        lalbo3 = grid[("lalbo3", ws)].avg_latency_s
        # locality-aware schedulers win by >10x everywhere
        assert lalb < lb / 10
        assert lalbo3 <= lalb + 1e-9
    # paper: the reduction is strongest at the small working set
    red15 = 1 - grid[("lalb", 15)].avg_latency_s / grid[("lb", 15)].avg_latency_s
    assert red15 > 0.90


def test_fig4a_lb_baseline_run(benchmark, trace):
    """Time the LB baseline at WS 15 (the paper's worst-performing cell)."""
    summary = benchmark.pedantic(
        lambda: run_experiment(ExperimentConfig(policy="lb", working_set=15), trace=trace),
        rounds=1,
        iterations=1,
    )
    assert summary.completed_requests == 1950
    assert summary.avg_latency_s > 10  # LB saturates the 12-GPU testbed
