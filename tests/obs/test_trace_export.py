"""Chrome trace-event export: structure, time mapping, and validation.

The exported ``trace.json`` must load in Perfetto, which means the
structural rules of the trace-event format are the contract: ``X``
slices need non-negative durations, async ``b``/``e`` pairs need
``cat`` + ``id``, instants need a valid scope, and the five tracks
(requests / scheduler / datastore / faults / cache) are separate pids.
"""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload


@pytest.fixture(scope="module")
def traced_system():
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=1, seed=0),
        trace=SyntheticAzureTrace(),
    )
    system = FaaSCluster(
        SystemConfig(tracer="flight", fault_profile="recoverable")
    )
    system.submit_workload(workload)
    system.run()
    return system


class TestEvents:
    def test_events_validate_against_the_format(self, traced_system):
        events = chrome_trace_events(traced_system.tracer)
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_every_required_track_is_present(self, traced_system):
        events = chrome_trace_events(traced_system.tracer)
        by_pid = {}
        for ev in events:
            if ev["ph"] != "M":
                by_pid.setdefault(ev["pid"], []).append(ev)
        # requests (1), scheduler (2), datastore (3), faults (4)
        assert {1, 2, 3, 4} <= set(by_pid)
        assert any(ev["ph"] == "X" and ev["cat"] == "infer" for ev in by_pid[1])
        assert all(ev["ph"] == "X" for ev in by_pid[2])
        assert all(ev["ph"] == "X" for ev in by_pid[3])
        assert any(
            ev["ph"] == "i" and ev["name"].startswith("fault:")
            for ev in by_pid[4]
        )

    def test_sim_seconds_map_to_microseconds(self, traced_system):
        recorder = traced_system.tracer
        row = recorder.request_records()[0]
        arrival_us = round(row[1] * 1e6, 3)
        events = chrome_trace_events(recorder)
        queue_begin = [
            ev for ev in events if ev["ph"] == "b" and ev["id"] == row[0]
        ]
        assert queue_begin and queue_begin[0]["ts"] == arrival_us

    def test_wall_slices_never_overlap_on_their_track(self, traced_system):
        events = chrome_trace_events(traced_system.tracer)
        for pid in (2, 3):
            track = sorted(
                (ev for ev in events if ev["ph"] == "X" and ev["pid"] == pid),
                key=lambda ev: ev["ts"],
            )
            for a, b in zip(track, track[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-6


class TestWrite:
    def test_written_file_is_a_loadable_trace(self, traced_system, tmp_path):
        path = write_chrome_trace(traced_system.tracer, str(tmp_path / "t.json"))
        payload = json.loads(open(path).read())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["records"] == traced_system.tracer.totals


class TestValidator:
    def test_rejects_non_object_top_level(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_rejects_phase_specific_violations(self):
        bad = {"traceEvents": [
            {"ph": "X", "pid": 1, "name": "no dur", "ts": 1.0},
            {"ph": "b", "pid": 1, "name": "no id", "ts": 1.0, "cat": "q"},
            {"ph": "i", "pid": 1, "name": "bad scope", "ts": 1.0, "s": "z"},
            {"ph": "X", "pid": 1, "name": "negative", "ts": -5.0, "dur": 1.0},
            {"ph": "?", "pid": 1, "name": "phase", "ts": 1.0},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 5

    def test_accepts_minimal_valid_events(self):
        good = {"traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "x"}},
            {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": 2.0, "name": "s"},
            {"ph": "i", "pid": 1, "tid": 1, "ts": 1.0, "s": "p", "name": "i"},
        ]}
        assert validate_chrome_trace(good) == []


class _FakeSim:
    def __init__(self):
        self._now = 0.0


def test_empty_recorder_exports_only_metadata():
    recorder = FlightRecorder(_FakeSim(), capacity=16)
    events = chrome_trace_events(recorder)
    assert events and all(ev["ph"] == "M" for ev in events)
    assert validate_chrome_trace({"traceEvents": events}) == []
