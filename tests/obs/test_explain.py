"""Scheduler explain mode: cause records, queries, CLI entry, parity.

Explain mode (``SystemConfig(trace_decisions=True)``) annotates every
recorded decision with a :class:`Cause` — pass context, the dirty-signal
state that armed the pass, and the policy's candidate trail — without
changing a single decision (asserted here against a plain replay).
"""

import hashlib

from repro.obs import Cause, ExplainLog, format_request_causes, run_explain
from repro.obs.explain import OUTSIDE_PASS
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload


def _replay(cfg):
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=1, seed=0),
        trace=SyntheticAzureTrace(),
    )
    system = FaaSCluster(cfg)
    system.submit_workload(workload)
    system.run()
    return system


def _decision_sha(system):
    decisions = system.scheduler.decisions
    ids = sorted({d.request_id for d in decisions})
    rank = {rid: i for i, rid in enumerate(ids)}
    h = hashlib.sha256()
    for d in decisions:
        h.update(repr((d.time_s, d.kind.value, rank[d.request_id],
                       d.model_id, d.gpu_id, d.visits)).encode())
    return h.hexdigest()


class TestExplainLog:
    def test_every_decision_gets_a_cause(self):
        system = _replay(SystemConfig(trace_decisions=True))
        explain = system.scheduler.explain
        assert explain is not None
        assert len(explain) == len(system.scheduler.decisions)
        # seq is the global decision order
        assert [c.seq for c in explain.causes] == list(range(len(explain)))

    def test_causes_carry_pass_context_and_trails(self):
        system = _replay(SystemConfig(trace_decisions=True))
        explain = system.scheduler.explain
        in_pass = [c for c in explain.causes if c.pass_seq != OUTSIDE_PASS]
        assert in_pass, "dispatch decisions happen inside passes"
        assert all(c.armed.startswith("idle=") for c in in_pass)
        assert any(c.trail for c in in_pass), "policies narrate their walks"

    def test_for_request_returns_that_requests_chain(self):
        system = _replay(SystemConfig(trace_decisions=True))
        explain = system.scheduler.explain
        rid = explain.causes[0].request_id
        chain = explain.for_request(rid)
        assert chain and all(c.request_id == rid for c in chain)
        assert explain.for_request(-99) == []

    def test_elided_passes_are_counted_with_signals(self):
        system = _replay(SystemConfig(trace_decisions=True))
        explain = system.scheduler.explain
        assert explain.elided_count == system.scheduler.passes_elided
        if explain.last_elided:
            t, signals = explain.last_elided[-1]
            assert t >= 0.0 and "queued=" in signals

    def test_decisions_identical_with_explain_on(self):
        with_explain = _replay(SystemConfig(trace_decisions=True))
        plain = _replay(SystemConfig())
        assert _decision_sha(with_explain) == _decision_sha(plain)

    def test_explain_composes_with_tracer(self):
        both = _replay(SystemConfig(tracer="flight", trace_decisions=True))
        plain = _replay(SystemConfig())
        assert both.scheduler.explain is not None
        assert both.tracer is not None
        assert _decision_sha(both) == _decision_sha(plain)


class TestFormatting:
    def test_format_names_pass_and_kind(self):
        system = _replay(SystemConfig(trace_decisions=True))
        explain = system.scheduler.explain
        rid = explain.causes[0].request_id
        text = format_request_causes(explain, rid)
        assert text.startswith(f"request {rid}:")
        assert "pass " in text or "outside any pass" in text

    def test_format_handles_unknown_request(self):
        log = ExplainLog()
        assert "no decisions" in format_request_causes(log, 42)

    def test_cause_is_a_plain_tuple(self):
        cause = Cause(0, 1.0, "DISPATCH_HIT", 7, "g", 1, 3, "idle=1", ())
        assert tuple(cause)[:4] == (0, 1.0, "DISPATCH_HIT", 7)


class TestRunExplain:
    def test_small_replay_explains_one_request(self):
        text = run_explain(3, n_requests=300)
        assert "explaining ordinal 3" in text
        assert "decision(s)" in text

    def test_out_of_range_ordinal_reports_the_range(self):
        text = run_explain(10**9, n_requests=300)
        assert "out of range" in text
