"""Flight-recorder semantics: rings, sampling, spill, and zero-cost-off.

The tracer layer's contract is behavioural, not statistical: "off" means
every component keeps a ``None`` tracer attribute (nothing installed,
nothing recorded); "on" means the four rings capture request lifecycles,
sampled pass/commit wall spans, and instants with exact ``totals``
counters, oldest-first overwrite past ``capacity``, and a decimated
JSONL spill when configured.  The *overhead* gate lives in the bench
(``make bench-check``); this module pins the semantics.
"""

import json

import pytest

from repro.obs import FlightRecorder, NullTracer, Tracer
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload


def _replay(cfg, minutes=1):
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=minutes, seed=0),
        trace=SyntheticAzureTrace(),
    )
    system = FaaSCluster(cfg)
    system.submit_workload(workload)
    system.run()
    return system


class _FakeSim:
    def __init__(self):
        self._now = 0.0


class TestOffIsNone:
    def test_default_config_installs_no_tracer_anywhere(self):
        system = _replay(SystemConfig())
        assert system.tracer is None
        assert system.scheduler._tracer is None
        assert system.datastore.pending._tracer is None
        assert system.metrics.tracer is None
        assert system.cache.tracer is None

    def test_null_tracer_hooks_are_all_noops(self):
        t = NullTracer()
        t.pass_span(10, 1)
        t.commit_span(10, 1)
        t.instant("fault:gpu", "node0/cuda:0")
        t.fault("gpu", "node0/cuda:0")
        t.cache_event("load", "g", "m")
        t.lost("deadline", 7)
        assert isinstance(t, Tracer)


class TestRings:
    def test_replay_fills_every_ring_with_exact_totals(self):
        system = _replay(SystemConfig(tracer="flight"))
        t = system.tracer
        totals = t.totals
        assert totals["requests"] == system.metrics.completed_count
        assert totals["passes"] == system.scheduler.passes_executed
        assert totals["commits"] > 0
        # unsampled spans still count; only every Nth is recorded
        stride = system.config.trace_span_stride
        assert len(t.pass_records()) == totals["passes"] // stride
        assert len(t.commit_records()) == totals["commits"] // stride
        assert len(t.request_records()) == totals["requests"]

    def test_request_records_reflect_final_lifecycle_stamps(self):
        system = _replay(SystemConfig(tracer="flight"))
        rows = system.tracer.request_records()
        models = system.tracer.model_names
        gpus = system.tracer.gpu_names
        for rid, arrival, dispatched, exec_start, completed, m, g, hit, retries in rows:
            assert 0.0 <= arrival <= dispatched <= exec_start <= completed
            assert models[m] and gpus[g]
            assert hit in (0, 1)
            assert retries >= 0

    def test_ring_wraps_oldest_first_and_counts_dropped(self):
        system = _replay(SystemConfig(tracer="flight", tracer_capacity=16))
        t = system.tracer
        assert t.totals["requests"] > 16
        rows = t.request_records()
        assert len(rows) == 16
        assert t.dropped["requests"] == t.totals["requests"] - 16
        # the retained rows are the *last* 16 completions, oldest first
        completions = [row[4] for row in rows]
        assert completions == sorted(completions)

    def test_span_stride_one_records_every_span(self):
        system = _replay(SystemConfig(tracer="flight", trace_span_stride=1))
        t = system.tracer
        assert len(t.pass_records()) == t.totals["passes"]
        assert len(t.commit_records()) == t.totals["commits"]

    def test_protocol_span_hooks_apply_the_same_stride(self):
        t = FlightRecorder(_FakeSim(), capacity=64, span_stride=4)
        for i in range(10):
            t.pass_span(100 + i, i)
            t.commit_span(200 + i, i)
        assert t.totals["passes"] == 10
        assert t.totals["commits"] == 10
        assert [w for _, w, _ in t.pass_records()] == [103, 107]
        assert [w for _, w, _ in t.commit_records()] == [203, 207]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(_FakeSim(), capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(_FakeSim(), span_stride=0)


class TestSpill:
    def test_spill_writes_decimated_request_records(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        system = _replay(
            SystemConfig(
                tracer="flight", trace_spill_path=path, trace_spill_keep=50
            )
        )
        t = system.tracer
        t.close()
        lines = [json.loads(line) for line in open(path)]
        n = t.totals["requests"]
        assert t.spill_written == len(lines)
        # stride-doubling bound: keep * (1 + log2(n / keep)) — loose check
        assert 50 <= len(lines) < n
        assert {"id", "arrival", "completed", "model", "gpu"} <= set(lines[0])

    def test_no_spill_configured_reports_none(self):
        system = _replay(SystemConfig(tracer="flight"))
        assert system.tracer.spill_path is None
        assert system.tracer.spill_written == 0
        system.tracer.close()  # close without a spill is a no-op


class TestConfig:
    def test_unknown_tracer_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(tracer="jaeger")

    def test_spill_requires_flight_tracer(self):
        with pytest.raises(ValueError):
            SystemConfig(trace_spill_path="x.jsonl")

    def test_stride_and_capacity_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(trace_span_stride=0)
        with pytest.raises(ValueError):
            SystemConfig(tracer_capacity=1)
