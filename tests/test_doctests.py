"""Run the package's docstring examples as part of the suite."""

import doctest
import importlib
import pkgutil

import repro


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_all_docstring_examples_pass():
    failures = 0
    attempted = 0
    for module in _iter_modules():
        result = doctest.testmod(module, verbose=False)
        failures += result.failed
        attempted += result.attempted
    assert failures == 0
    assert attempted >= 3  # the kernel, txn, and sampler examples at minimum
