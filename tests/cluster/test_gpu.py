"""Unit tests for the GPU device model."""

import pytest

from repro.cluster import GPUDevice, GPUMemoryError, GPUState, ProcessState
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def gpu(sim):
    return GPUDevice(sim, "node0/cuda:0", memory_mb=8000.0)


class TestMemoryAndResidency:
    def test_starts_empty_and_idle(self, gpu):
        assert gpu.used_mb == 0.0
        assert gpu.free_mb == 8000.0
        assert gpu.is_idle
        assert gpu.resident_models() == []

    def test_admit_reserves_memory(self, gpu):
        proc = gpu.admit("m1", 3000.0)
        assert gpu.used_mb == 3000.0
        assert gpu.free_mb == 5000.0
        assert gpu.has_model("m1")
        assert proc.state is ProcessState.STARTING
        assert gpu.process_for("m1") is proc

    def test_admit_duplicate_rejected(self, gpu):
        gpu.admit("m1", 1000.0)
        with pytest.raises(ValueError):
            gpu.admit("m1", 1000.0)

    def test_admit_over_capacity_raises_oom(self, gpu):
        gpu.admit("m1", 5000.0)
        with pytest.raises(GPUMemoryError):
            gpu.admit("m2", 4000.0)
        assert not gpu.has_model("m2")
        assert gpu.used_mb == 5000.0

    def test_admit_model_larger_than_device(self, gpu):
        with pytest.raises(GPUMemoryError):
            gpu.admit("huge", 9000.0)

    def test_evict_releases_memory_and_kills_process(self, sim, gpu):
        proc = gpu.admit("m1", 3000.0)
        proc.mark_ready(sim.now)
        evicted = gpu.evict("m1")
        assert evicted is proc
        assert proc.state is ProcessState.KILLED
        assert gpu.used_mb == 0.0
        assert not gpu.has_model("m1")

    def test_evict_unknown_model_raises(self, gpu):
        with pytest.raises(KeyError):
            gpu.evict("nope")

    def test_evict_running_process_rejected(self, sim, gpu):
        proc = gpu.admit("m1", 1000.0)
        proc.mark_ready(sim.now)
        proc.mark_running()
        with pytest.raises(RuntimeError):
            gpu.evict("m1")

    def test_evict_many(self, sim, gpu):
        for m in ("a", "b", "c"):
            gpu.admit(m, 1000.0).mark_ready(sim.now)
        gpu.evict_many(["a", "c"])
        assert gpu.resident_models() == ["b"]
        assert gpu.used_mb == 1000.0

    def test_exact_fit_admission(self, gpu):
        gpu.admit("m1", 8000.0)
        assert gpu.free_mb == 0.0

    def test_memory_never_negative_after_evictions(self, sim, gpu):
        for i in range(5):
            gpu.admit(f"m{i}", 1600.0).mark_ready(sim.now)
        for i in range(5):
            gpu.evict(f"m{i}")
        assert gpu.used_mb == 0.0


class TestStateMachine:
    def test_loading_then_inferring_then_idle(self, sim, gpu):
        gpu.begin_loading()
        assert gpu.state is GPUState.LOADING
        assert gpu.is_busy
        gpu.begin_inference()
        assert gpu.state is GPUState.INFERRING
        gpu.become_idle()
        assert gpu.is_idle

    def test_begin_loading_requires_idle(self, gpu):
        gpu.begin_loading()
        with pytest.raises(RuntimeError):
            gpu.begin_loading()

    def test_double_inference_rejected(self, gpu):
        gpu.begin_inference()
        with pytest.raises(RuntimeError):
            gpu.begin_inference()

    def test_inference_directly_from_idle_allowed(self, gpu):
        """Cache hits skip the loading phase entirely."""
        gpu.begin_inference()
        assert gpu.state is GPUState.INFERRING


class TestSMUtilization:
    def test_sm_busy_only_during_inference(self, sim, gpu):
        # 0-2s loading, 2-5s inferring, 5-10s idle
        sim.schedule(0.0, gpu.begin_loading)
        sim.schedule(2.0, gpu.begin_inference)
        sim.schedule(5.0, gpu.become_idle)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert gpu.time_in(GPUState.LOADING) == pytest.approx(2.0)
        assert gpu.time_in(GPUState.INFERRING) == pytest.approx(3.0)
        assert gpu.sm_utilization() == pytest.approx(0.3)

    def test_loading_counts_against_utilization(self, sim, gpu):
        sim.schedule(0.0, gpu.begin_loading)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert gpu.sm_utilization() == 0.0

    def test_utilization_with_horizon(self, sim, gpu):
        sim.schedule(0.0, gpu.begin_inference)
        sim.schedule(5.0, gpu.become_idle)
        sim.run()
        assert gpu.sm_utilization(horizon=20.0) == pytest.approx(0.25)


def test_invalid_memory_rejected(sim):
    with pytest.raises(ValueError):
        GPUDevice(sim, "g", memory_mb=0.0)
