"""Unit tests for the GPU offline/online state (failure substrate)."""

import pytest

from repro.cluster import GPUDevice, GPUState
from repro.sim import Simulator


@pytest.fixture
def gpu():
    return GPUDevice(Simulator(), "n/cuda:0", memory_mb=8000.0)


def test_go_offline_from_idle(gpu):
    gpu.go_offline()
    assert gpu.state is GPUState.OFFLINE
    assert not gpu.is_online
    assert not gpu.is_idle


def test_go_offline_from_busy(gpu):
    gpu.begin_inference()
    gpu.go_offline()
    assert gpu.state is GPUState.OFFLINE


def test_come_online_returns_to_idle(gpu):
    gpu.go_offline()
    gpu.come_online()
    assert gpu.is_idle
    assert gpu.is_online


def test_come_online_requires_offline(gpu):
    with pytest.raises(RuntimeError):
        gpu.come_online()


def test_become_idle_rejected_while_offline(gpu):
    gpu.go_offline()
    with pytest.raises(RuntimeError):
        gpu.become_idle()


def test_offline_time_not_counted_as_sm_busy(gpu):
    sim = gpu.sim
    sim.schedule(0.0, gpu.begin_inference)
    sim.schedule(5.0, gpu.go_offline)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert gpu.time_in(GPUState.INFERRING) == pytest.approx(5.0)
    assert gpu.time_in(GPUState.OFFLINE) == pytest.approx(5.0)
    assert gpu.sm_utilization() == pytest.approx(0.5)


def test_force_evict_running_process(gpu):
    proc = gpu.admit("m", 1000.0)
    proc.mark_ready(0.0)
    proc.mark_running()
    with pytest.raises(RuntimeError):
        gpu.evict("m")
    assert gpu.has_model("m")  # failed evict must not corrupt residency
    gpu.evict("m", force=True)
    assert not gpu.has_model("m")
    assert gpu.used_mb == 0.0
