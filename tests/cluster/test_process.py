"""Unit tests for the GPU process lifecycle."""

import pytest

from repro.cluster import GPUProcess, ProcessState


def make_proc():
    return GPUProcess(model_instance="fn-3", occupied_mb=1500.0, gpu_id="n/cuda:0", started_at=1.0)


def test_pids_are_unique():
    assert make_proc().pid != make_proc().pid


def test_lifecycle_happy_path():
    p = make_proc()
    assert p.state is ProcessState.STARTING
    p.mark_ready(now=3.5)
    assert p.state is ProcessState.READY
    assert p.ready_at == 3.5
    p.mark_running()
    assert p.state is ProcessState.RUNNING
    p.mark_done()
    assert p.state is ProcessState.READY
    assert p.served_requests == 1
    p.kill(now=9.0)
    assert p.state is ProcessState.KILLED
    assert p.killed_at == 9.0
    assert not p.alive


def test_ready_only_from_starting():
    p = make_proc()
    p.mark_ready(1.0)
    with pytest.raises(RuntimeError):
        p.mark_ready(2.0)


def test_running_only_from_ready():
    p = make_proc()
    with pytest.raises(RuntimeError):
        p.mark_running()


def test_done_only_from_running():
    p = make_proc()
    p.mark_ready(1.0)
    with pytest.raises(RuntimeError):
        p.mark_done()


def test_kill_is_idempotent_and_preserves_first_time():
    p = make_proc()
    p.kill(now=4.0)
    p.kill(now=9.0)
    assert p.killed_at == 4.0


def test_served_requests_accumulate():
    p = make_proc()
    p.mark_ready(0.0)
    for _ in range(3):
        p.mark_running()
        p.mark_done()
    assert p.served_requests == 3
