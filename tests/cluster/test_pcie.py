"""Unit tests for the PCIe transfer-time model."""

import pytest

from repro.cluster import PCIeModel, fit_pcie_model


def test_transfer_time_is_affine_in_size():
    m = PCIeModel(bandwidth_mb_s=1000.0, fixed_overhead_s=1.0)
    assert m.transfer_time(0.0) == pytest.approx(1.0)
    assert m.transfer_time(500.0) == pytest.approx(1.5)
    assert m.transfer_time(2000.0) == pytest.approx(3.0)


def test_default_model_matches_table1_scale():
    """Defaults were fitted to Table I: check two anchor rows within 15%."""
    m = PCIeModel()
    assert m.transfer_time(1269) == pytest.approx(2.41, rel=0.15)  # squeezenet1.1
    assert m.transfer_time(3947) == pytest.approx(4.07, rel=0.15)  # vgg19


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        PCIeModel().transfer_time(-1.0)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        PCIeModel(bandwidth_mb_s=0.0)
    with pytest.raises(ValueError):
        PCIeModel(fixed_overhead_s=-0.1)


def test_scaled_link_is_faster():
    m = PCIeModel(bandwidth_mb_s=1000.0, fixed_overhead_s=1.0)
    fast = m.scaled(2.0)
    assert fast.bandwidth_mb_s == pytest.approx(2000.0)
    assert fast.fixed_overhead_s == pytest.approx(1.0)
    assert fast.transfer_time(1000.0) < m.transfer_time(1000.0)


def test_scaled_rejects_nonpositive_factor():
    with pytest.raises(ValueError):
        PCIeModel().scaled(0.0)


def test_fit_recovers_known_model():
    truth = PCIeModel(bandwidth_mb_s=1600.0, fixed_overhead_s=1.5)
    sizes = [1000.0, 2000.0, 3000.0, 4000.0]
    times = [truth.transfer_time(s) for s in sizes]
    fitted = fit_pcie_model(sizes, times)
    assert fitted.bandwidth_mb_s == pytest.approx(1600.0, rel=1e-6)
    assert fitted.fixed_overhead_s == pytest.approx(1.5, rel=1e-6)


def test_fit_requires_two_points():
    with pytest.raises(ValueError):
        fit_pcie_model([1000.0], [2.0])


def test_fit_rejects_nonincreasing_times():
    with pytest.raises(ValueError):
        fit_pcie_model([1000.0, 2000.0], [3.0, 2.0])
