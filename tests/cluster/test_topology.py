"""Unit tests for nodes and cluster topology."""

import pytest

from repro.cluster import (
    PAPER_TESTBED,
    Cluster,
    ClusterSpec,
    GPUNode,
    GPUTypeSpec,
    PCIeModel,
    build_cluster,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestGPUNode:
    def test_node_creates_named_gpus(self, sim):
        node = GPUNode(sim, "node7", num_gpus=3)
        assert len(node) == 3
        assert [g.gpu_id for g in node] == [
            "node7/cuda:0",
            "node7/cuda:1",
            "node7/cuda:2",
        ]

    def test_gpu_address_pairs_ip_and_device(self, sim):
        node = GPUNode(sim, "n", ip="10.1.2.3", num_gpus=2)
        ip, dev = node.gpu_address(node.gpus[1])
        assert ip == "10.1.2.3"
        assert dev == "cuda:1"

    def test_gpu_address_rejects_foreign_gpu(self, sim):
        a = GPUNode(sim, "a", num_gpus=1)
        b = GPUNode(sim, "b", num_gpus=1)
        with pytest.raises(ValueError):
            a.gpu_address(b.gpus[0])

    def test_zero_gpus_rejected(self, sim):
        with pytest.raises(ValueError):
            GPUNode(sim, "n", num_gpus=0)


class TestClusterSpec:
    def test_paper_testbed_is_3x4(self):
        assert PAPER_TESTBED.total_gpus == 12
        assert len(PAPER_TESTBED.nodes) == 3

    def test_homogeneous_builder(self):
        spec = ClusterSpec.homogeneous(2, 8)
        assert spec.total_gpus == 16

    def test_heterogeneous_spec(self):
        fast = GPUTypeSpec(name="a100", memory_mb=40000.0, speed_factor=0.4)
        spec = ClusterSpec(nodes=((4, GPUTypeSpec()), (2, fast)))
        assert spec.total_gpus == 6


class TestBuildCluster:
    def test_paper_testbed_build(self, sim):
        cluster = build_cluster(sim)
        assert len(cluster) == 12
        assert len(cluster.nodes) == 3
        assert all(g.gpu_type == "rtx2080" for g in cluster)
        assert all(g.memory_mb == 7800.0 for g in cluster)

    def test_idle_and_busy_views(self, sim):
        cluster = build_cluster(sim, ClusterSpec.homogeneous(1, 3))
        assert len(cluster.idle_gpus()) == 3
        cluster.gpus[0].begin_inference()
        assert len(cluster.idle_gpus()) == 2
        assert cluster.busy_gpus() == [cluster.gpus[0]]

    def test_gpu_lookup_by_id(self, sim):
        cluster = build_cluster(sim, ClusterSpec.homogeneous(2, 2))
        g = cluster.gpu("node1/cuda:0")
        assert g.node_id == "node1"
        assert cluster.node_of("node1/cuda:0").node_id == "node1"

    def test_heterogeneous_build_carries_type_attributes(self, sim):
        fast = GPUTypeSpec(
            name="a100", memory_mb=40000.0, pcie=PCIeModel(bandwidth_mb_s=6000.0), speed_factor=0.4
        )
        cluster = build_cluster(sim, ClusterSpec(nodes=((1, GPUTypeSpec()), (1, fast))))
        assert cluster.gpu_types() == {"rtx2080", "a100"}
        a100 = cluster.gpu("node1/cuda:0")
        assert a100.memory_mb == 40000.0
        assert a100.pcie.bandwidth_mb_s == 6000.0
