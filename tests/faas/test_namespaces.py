"""Unit tests for multi-namespace segregation (§VI)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import TenantQuota
from repro.faas import FunctionNotFound, FunctionSpec, Gateway
from repro.faas.namespaces import Namespace, NamespaceError, NamespaceManager
from repro.runtime import FaaSCluster, SystemConfig


@pytest.fixture
def system():
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2)))


@pytest.fixture
def manager(system):
    return NamespaceManager(Gateway(system))


class TestNamespace:
    def test_invalid_names(self):
        with pytest.raises(ValueError):
            Namespace(name="", tenant="t")
        with pytest.raises(ValueError):
            Namespace(name="a.b", tenant="t")
        with pytest.raises(ValueError):
            Namespace(name="a/b", tenant="t")

    def test_qualify(self):
        assert Namespace("prod", "acme").qualify("classify") == "prod.classify"


class TestSegregation:
    def test_same_short_name_in_two_namespaces(self, manager):
        a = manager.create("team-a", tenant="acme")
        b = manager.create("team-b", tenant="globex")
        a.register(FunctionSpec(name="classify", model_architecture="resnet50"))
        b.register(FunctionSpec(name="classify", model_architecture="vgg16"))
        assert a.list_functions() == ["classify"]
        assert b.list_functions() == ["classify"]
        assert set(manager.gateway.list_functions()) == {
            "team-a.classify",
            "team-b.classify",
        }

    def test_views_cannot_see_other_namespaces(self, manager):
        a = manager.create("team-a", tenant="acme")
        b = manager.create("team-b", tenant="globex")
        b.register(FunctionSpec(name="secret", model_architecture="alexnet"))
        assert a.list_functions() == []
        with pytest.raises(FunctionNotFound):
            a.invoke("secret")

    def test_cross_namespace_invocation_blocked(self, manager):
        a = manager.create("team-a", tenant="acme")
        manager.create("team-b", tenant="globex").register(
            FunctionSpec(name="secret", model_architecture="alexnet")
        )
        with pytest.raises(NamespaceError):
            a.invoke("team-b.secret")

    def test_tenant_forced_onto_registered_specs(self, manager):
        a = manager.create("team-a", tenant="acme")
        fn = a.register(
            FunctionSpec(name="classify", model_architecture="resnet50", tenant="spoofed")
        )
        assert fn.spec.tenant == "acme"

    def test_invocation_runs_end_to_end(self, system, manager):
        a = manager.create("team-a", tenant="acme")
        a.register(FunctionSpec(name="classify", model_architecture="resnet50"))
        inv = a.invoke("classify")
        system.run()
        assert inv.latency > 0
        assert system.completed[0].tenant == "acme"


class TestManagement:
    def test_duplicate_namespace_rejected(self, manager):
        manager.create("x", tenant="t")
        with pytest.raises(ValueError):
            manager.create("x", tenant="t")

    def test_view_requires_owning_tenant(self, manager):
        manager.create("x", tenant="acme")
        with pytest.raises(NamespaceError):
            manager.view("x", tenant="globex")
        view = manager.view("x", tenant="acme")
        assert view.namespace.tenant == "acme"

    def test_unknown_namespace(self, manager):
        with pytest.raises(KeyError):
            manager.view("ghost", tenant="t")

    def test_meta_in_datastore(self, system, manager):
        manager.create("prod", tenant="acme")
        assert system.datastore.client().get("ns/meta/prod") == {"tenant": "acme"}

    def test_delete_removes_namespace_and_functions(self, system, manager):
        v = manager.create("prod", tenant="acme")
        v.register(FunctionSpec(name="f", model_architecture="alexnet"))
        manager.delete("prod", tenant="acme")
        assert manager.list_namespaces() == []
        assert manager.gateway.list_functions() == []
        assert system.datastore.client().get("ns/meta/prod") is None

    def test_delete_requires_owner(self, manager):
        manager.create("prod", tenant="acme")
        with pytest.raises(NamespaceError):
            manager.delete("prod", tenant="globex")

    def test_quotas_apply_through_namespaces(self, system):
        """Namespace tenant tags feed the TenancyController end-to-end."""
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(1, 1),
                quotas={"acme": TenantQuota(max_processes=1)},
            )
        )
        manager = NamespaceManager(Gateway(system))
        v = manager.create("prod", tenant="acme")
        v.register(FunctionSpec(name="a", model_architecture="resnet50"))
        v.register(FunctionSpec(name="b", model_architecture="alexnet"))
        inv_a = v.invoke("a")
        inv_b = v.invoke("b")
        system.run()
        assert inv_a.completed_at is not None
        # "b" needed a second process; quota 1 → blocked until "a" evicted,
        # which never happens on an otherwise idle GPU
        assert inv_b.completed_at is None
        assert system.tenancy.usage("acme")["processes"] == 1
