"""Unit tests for container lifecycle and pools."""

import pytest

from repro.faas import ContainerPool, ContainerState, FunctionSpec
from repro.faas.container import Container
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def spec():
    return FunctionSpec(name="fn", model_architecture="resnet50", min_replicas=1, max_replicas=4)


class TestContainer:
    def test_lifecycle(self, sim, spec):
        c = Container(sim, spec)
        assert c.state is ContainerState.STARTING
        c.mark_ready()
        c.acquire()
        assert c.state is ContainerState.BUSY
        c.release()
        assert c.state is ContainerState.IDLE
        assert c.handled == 1
        c.stop()
        assert c.state is ContainerState.STOPPED

    def test_acquire_requires_idle(self, sim, spec):
        c = Container(sim, spec)
        with pytest.raises(RuntimeError):
            c.acquire()

    def test_release_requires_busy(self, sim, spec):
        c = Container(sim, spec)
        c.mark_ready()
        with pytest.raises(RuntimeError):
            c.release()

    def test_unique_ids(self, sim, spec):
        assert Container(sim, spec).container_id != Container(sim, spec).container_id


class TestContainerPool:
    def test_build_then_scale(self, sim, spec):
        pool = ContainerPool(sim, spec, cold_start_s=0.5, build_s=2.0)
        done = []
        pool.build(on_done=lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0]
        pool.scale_to(2)
        assert pool.replica_count() == 2
        assert pool.idle_count() == 0  # still cold-starting
        sim.run()
        assert pool.idle_count() == 2

    def test_scale_before_build_rejected(self, sim, spec):
        pool = ContainerPool(sim, spec)
        with pytest.raises(RuntimeError):
            pool.scale_to(1)

    def test_scale_respects_max_replicas(self, sim, spec):
        pool = ContainerPool(sim, spec)
        pool.build()
        sim.run()
        pool.scale_to(100)
        assert pool.replica_count() == spec.max_replicas

    def test_scale_down_stops_idle_only(self, sim, spec):
        pool = ContainerPool(sim, spec)
        pool.build()
        sim.run()
        pool.scale_to(3)
        sim.run()
        busy = pool.containers[0]
        busy.acquire()
        pool.scale_to(1)
        assert busy.state is ContainerState.BUSY  # never killed while busy
        assert pool.replica_count() >= 1

    def test_negative_scale_rejected(self, sim, spec):
        pool = ContainerPool(sim, spec)
        pool.build()
        sim.run()
        with pytest.raises(ValueError):
            pool.scale_to(-1)

    def test_acquire_uses_warm_replica(self, sim, spec):
        pool = ContainerPool(sim, spec)
        pool.build()
        sim.run()
        pool.scale_to(1)
        sim.run()
        got = []
        pool.acquire(got.append)
        assert len(got) == 1
        assert got[0].state is ContainerState.IDLE

    def test_acquire_cold_starts_when_empty(self, sim, spec):
        pool = ContainerPool(sim, spec, cold_start_s=0.5, build_s=0.1)
        pool.build()
        sim.run()
        got = []
        pool.acquire(lambda c: got.append(sim.now))
        assert got == []  # not ready yet
        sim.run()
        assert got and got[0] >= 0.5

    def test_waiters_served_in_order(self, sim, spec):
        pool = ContainerPool(sim, spec, cold_start_s=0.5, build_s=0.1)
        pool.build()
        sim.run()
        order = []
        pool.acquire(lambda c: order.append("first"))
        pool.acquire(lambda c: order.append("second"))
        sim.run()
        assert order == ["first", "second"]
