"""Unit tests for function specs and Dockerfile parsing."""

import pytest

from repro.faas import Dockerfile, FunctionSpec, default_template


class TestDockerfile:
    def test_parse_basic(self):
        df = Dockerfile.parse(
            "FROM python:3.11\n"
            "ENV GPU_ENABLE=1 MODE=prod\n"
            'LABEL com.faas.gpu="true"\n'
            "COPY handler.py /app/\n"
            "RUN pip install numpy\n"
        )
        assert df.base_image == "python:3.11"
        assert df.env == {"GPU_ENABLE": "1", "MODE": "prod"}
        assert df.labels == {"com.faas.gpu": "true"}
        assert len(df.steps) == 2

    def test_gpu_flag_via_env(self):
        assert Dockerfile.parse("FROM x\nENV GPU_ENABLE=1\n").gpu_enabled
        assert Dockerfile.parse("FROM x\nENV GPU_ENABLE=true\n").gpu_enabled
        assert not Dockerfile.parse("FROM x\nENV GPU_ENABLE=0\n").gpu_enabled
        assert not Dockerfile.parse("FROM x\n").gpu_enabled

    def test_gpu_flag_via_label(self):
        assert Dockerfile.parse('FROM x\nLABEL com.faas.gpu="yes"\n').gpu_enabled

    def test_legacy_env_space_form(self):
        df = Dockerfile.parse("FROM x\nENV GPU_ENABLE 1\n")
        assert df.env["GPU_ENABLE"] == "1"
        assert df.gpu_enabled

    def test_comments_and_blanks_ignored(self):
        df = Dockerfile.parse("# a comment\n\nFROM img\n  # indented comment\n")
        assert df.base_image == "img"

    def test_missing_from_rejected(self):
        with pytest.raises(ValueError):
            Dockerfile.parse("RUN echo hi\n")

    def test_default_template_has_gpu_flag(self):
        assert Dockerfile.parse(default_template(gpu=True)).gpu_enabled
        assert not Dockerfile.parse(default_template(gpu=False)).gpu_enabled


class TestFunctionSpec:
    def test_inference_spec(self):
        spec = FunctionSpec(name="classify", model_architecture="resnet50")
        assert spec.is_inference
        assert spec.gpu_enabled  # default template sets the flag

    def test_plain_function_spec(self):
        spec = FunctionSpec(
            name="hello",
            dockerfile=default_template(gpu=False),
            handler=lambda x: f"hi {x}",
        )
        assert not spec.is_inference
        assert not spec.gpu_enabled

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="")
        with pytest.raises(ValueError):
            FunctionSpec(name="a/b")

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", batch_size=0)

    def test_invalid_replica_bounds(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError):
            FunctionSpec(name="f", min_replicas=-1)

    def test_negative_handler_time(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", handler_time_s=-0.5)
