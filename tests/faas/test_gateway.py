"""Integration tests: Gateway CRUD + the full invocation path."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.faas import (
    Autoscaler,
    FunctionNotFound,
    FunctionSpec,
    Gateway,
    InvocationStatus,
    default_template,
)
from repro.runtime import FaaSCluster, SystemConfig


@pytest.fixture
def system():
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalbo3"))


@pytest.fixture
def gateway(system):
    return Gateway(system)


class TestCRUD:
    def test_register_and_get(self, gateway):
        spec = FunctionSpec(name="classify", model_architecture="resnet50")
        fn = gateway.register(spec)
        assert gateway.get("classify") is fn
        assert gateway.list_functions() == ["classify"]

    def test_register_writes_meta_to_datastore(self, system, gateway):
        gateway.register(FunctionSpec(name="classify", model_architecture="vgg16"))
        meta = system.datastore.client().get("fn/meta/classify")
        assert meta["model"] == "vgg16"
        assert meta["gpu_enabled"] is True

    def test_duplicate_register_rejected(self, gateway):
        gateway.register(FunctionSpec(name="f", model_architecture="alexnet"))
        with pytest.raises(ValueError):
            gateway.register(FunctionSpec(name="f", model_architecture="alexnet"))

    def test_inference_without_gpu_flag_rejected(self, gateway):
        spec = FunctionSpec(
            name="f",
            dockerfile=default_template(gpu=False),
            model_architecture="alexnet",
        )
        with pytest.raises(ValueError, match="GPU-enable"):
            gateway.register(spec)

    def test_get_unknown_raises(self, gateway):
        with pytest.raises(FunctionNotFound):
            gateway.get("ghost")

    def test_delete_removes_function_and_meta(self, system, gateway):
        gateway.register(FunctionSpec(name="f", model_architecture="alexnet"))
        gateway.delete("f")
        assert gateway.list_functions() == []
        assert system.datastore.client().get("fn/meta/f") is None

    def test_update_replaces_spec(self, system, gateway):
        gateway.register(FunctionSpec(name="f", model_architecture="alexnet"))
        gateway.update(FunctionSpec(name="f", model_architecture="vgg19"))
        assert system.datastore.client().get("fn/meta/f")["model"] == "vgg19"

    def test_update_unknown_raises(self, gateway):
        with pytest.raises(FunctionNotFound):
            gateway.update(FunctionSpec(name="ghost", model_architecture="alexnet"))


class TestInvocationPath:
    def test_gpu_inference_end_to_end(self, system, gateway):
        gateway.register(FunctionSpec(name="classify", model_architecture="resnet50"))
        responses = []
        inv = gateway.invoke("classify", payload=None, on_response=responses.append)
        system.run()
        assert inv.status is InvocationStatus.SUCCEEDED
        assert responses == [inv]
        # end-to-end latency covers build + cold start + load + inference
        assert inv.latency >= 2.67 + 1.28

    def test_second_invocation_faster_warm_and_cached(self, system, gateway):
        gateway.register(FunctionSpec(name="classify", model_architecture="resnet50"))
        first = gateway.invoke("classify")
        system.run()
        second = gateway.invoke("classify")
        system.run()
        assert second.latency == pytest.approx(1.28)  # hit: inference only
        assert second.latency < first.latency

    def test_completed_request_recorded_by_runtime(self, system, gateway):
        gateway.register(FunctionSpec(name="classify", model_architecture="alexnet"))
        gateway.invoke("classify")
        system.run()
        assert len(system.completed) == 1
        assert system.completed[0].function_name == "classify"

    def test_plain_function_executes_handler(self, system, gateway):
        gateway.register(
            FunctionSpec(
                name="echo",
                dockerfile=default_template(gpu=False),
                handler=lambda x: x * 2,
                handler_time_s=0.1,
            )
        )
        inv = gateway.invoke("echo", payload=21)
        system.run()
        assert inv.status is InvocationStatus.SUCCEEDED
        assert inv.response == 42

    def test_handler_exception_fails_invocation(self, system, gateway):
        def boom(_):
            raise RuntimeError("kaput")

        gateway.register(
            FunctionSpec(name="bad", dockerfile=default_template(gpu=False), handler=boom)
        )
        inv = gateway.invoke("bad")
        system.run()
        assert inv.status is InvocationStatus.FAILED
        assert "kaput" in inv.error

    def test_pre_and_postprocess_run_on_container(self, system, gateway):
        seen = {}

        def pre(payload):
            seen["pre"] = payload
            return payload

        def post(result):
            seen["post"] = True
            return "label-7"

        gateway.register(
            FunctionSpec(
                name="classify",
                model_architecture="resnet50",
                preprocess=pre,
                postprocess=post,
            )
        )
        inv = gateway.invoke("classify", payload="raw-image")
        system.run()
        assert seen == {"pre": "raw-image", "post": True}
        assert inv.response == "label-7"

    def test_preprocess_error_fails_without_gpu_dispatch(self, system, gateway):
        def bad_pre(_):
            raise ValueError("corrupt image")

        gateway.register(
            FunctionSpec(name="classify", model_architecture="resnet50", preprocess=bad_pre)
        )
        inv = gateway.invoke("classify")
        system.run()
        assert inv.status is InvocationStatus.FAILED
        assert len(system.completed) == 0  # never reached the scheduler

    def test_real_network_inference_through_gateway(self, system, gateway):
        """Wire a real NumPy network through the intercepted API."""
        fn = gateway.register(FunctionSpec(name="classify", model_architecture="squeezenet1.1"))
        from repro.models.nn import build_model

        fn.model_handle.instance.metadata["network"] = build_model("squeezenet1.1")
        batch = np.random.default_rng(0).standard_normal((4, 3, 32, 32))
        inv = gateway.invoke("classify", payload=batch)
        system.run()
        assert inv.response.shape == (4, 10)
        np.testing.assert_allclose(inv.response.sum(axis=-1), 1.0, rtol=1e-9)

    def test_watchdog_metrics_written(self, system, gateway):
        gateway.register(FunctionSpec(name="classify", model_architecture="alexnet"))
        inv = gateway.invoke("classify")
        system.run()
        rec = system.datastore.client().get(f"fn/metrics/classify/{inv.invocation_id}")
        assert rec["status"] == "succeeded"
        assert rec["latency_s"] > 0


class TestAutoscaler:
    def test_scales_up_under_load(self, system, gateway):
        gateway.register(
            FunctionSpec(
                name="hot",
                dockerfile=default_template(gpu=False),
                handler=lambda x: x,
                min_replicas=1,
                max_replicas=6,
            )
        )
        scaler = Autoscaler(system.sim, gateway, period_s=10.0, target_per_replica=10.0)
        scaler.start()
        system.run(until=3.0)  # build done, replica warm
        for i in range(80):
            system.sim.schedule(4.0 + i * 0.05, gateway.invoke, "hot", i)
        system.run(until=30.0)
        fn = gateway.get("hot")
        assert fn.pool.replica_count() > 1
        assert any(name == "hot" for _, name, _ in scaler.decisions)

    def test_respects_max_replicas(self, system, gateway):
        gateway.register(
            FunctionSpec(
                name="hot",
                dockerfile=default_template(gpu=False),
                handler=lambda x: x,
                max_replicas=2,
            )
        )
        scaler = Autoscaler(system.sim, gateway, period_s=5.0, target_per_replica=1.0)
        scaler.start()
        system.run(until=3.0)
        for i in range(50):
            system.sim.schedule(3.0 + i * 0.01, gateway.invoke, "hot", i)
        system.run(until=20.0)
        assert gateway.get("hot").pool.replica_count() <= 2

    def test_stop_halts_scaling(self, system, gateway):
        scaler = Autoscaler(system.sim, gateway, period_s=1.0)
        scaler.start()
        scaler.stop()
        system.run(until=5.0)
        assert scaler.decisions == []

    def test_invalid_parameters(self, system, gateway):
        with pytest.raises(ValueError):
            Autoscaler(system.sim, gateway, target_per_replica=0)
