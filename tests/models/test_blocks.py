"""Unit tests for residual blocks and the residual model factory."""

import numpy as np
import pytest

from repro.models.nn import AvgPool2D, Dropout, ResidualBlock, build_residual_model

rng = np.random.default_rng(7)


class TestResidualBlock:
    def test_same_channel_shape_preserved(self):
        block = ResidualBlock(8, 8, rng=np.random.default_rng(1))
        x = rng.standard_normal((2, 8, 10, 10))
        assert block(x).shape == (2, 8, 10, 10)

    def test_channel_change_uses_projection(self):
        block = ResidualBlock(4, 8, rng=np.random.default_rng(1))
        assert block.projection is not None
        x = rng.standard_normal((1, 4, 8, 8))
        assert block(x).shape == (1, 8, 8, 8)

    def test_stride_downsamples_both_paths(self):
        block = ResidualBlock(4, 4, stride=2, rng=np.random.default_rng(1))
        assert block.projection is not None  # stride forces a projection
        x = rng.standard_normal((1, 4, 8, 8))
        assert block(x).shape == (1, 4, 4, 4)

    def test_identity_skip_when_branch_is_zero(self):
        """Zeroing the branch weights must make the block relu(x) + 0."""
        block = ResidualBlock(3, 3, rng=np.random.default_rng(1))
        block.conv2.weight[:] = 0.0
        block.conv2.bias[:] = 0.0
        x = np.abs(rng.standard_normal((1, 3, 6, 6)))  # positive → relu no-op
        np.testing.assert_allclose(block(x), x, rtol=1e-9)

    def test_output_nonnegative(self):
        block = ResidualBlock(3, 6, rng=np.random.default_rng(2))
        out = block(rng.standard_normal((2, 3, 8, 8)))
        assert np.all(out >= 0)  # final ReLU

    def test_parameter_count_includes_projection(self):
        plain = ResidualBlock(8, 8)
        proj = ResidualBlock(4, 8)
        assert proj.num_parameters > 0
        # projection adds 1x1 conv params
        assert proj.projection.num_parameters == 8 * 4 * 1 * 1 + 8


class TestDropout:
    def test_identity_at_inference(self):
        x = rng.standard_normal((3, 5))
        np.testing.assert_array_equal(Dropout(0.5)(x), x)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestAvgPool2D:
    def test_values(self):
        x = np.array([[[[1.0, 3.0], [5.0, 7.0]]]])
        out = AvgPool2D(2)(x)
        np.testing.assert_allclose(out, [[[[4.0]]]])

    def test_shape_with_stride(self):
        x = rng.standard_normal((1, 2, 8, 8))
        assert AvgPool2D(2, stride=2)(x).shape == (1, 2, 4, 4)

    def test_too_small_input(self):
        with pytest.raises(ValueError):
            AvgPool2D(4)(rng.standard_normal((1, 1, 2, 2)))

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)

    def test_average_never_exceeds_max(self):
        x = rng.standard_normal((2, 3, 6, 6))
        out = AvgPool2D(2)(x)
        assert out.max() <= x.max() + 1e-12


class TestResidualFactory:
    def test_builds_for_resnet_families(self):
        net = build_residual_model("resnet50")
        out = net.forward(rng.standard_normal((2, 3, 32, 32)))
        assert out.shape == (2, 10)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    def test_wideresnet_and_resnext(self):
        for arch in ("wideresnet502", "resnext50.32x4d"):
            net = build_residual_model(arch)
            assert net.forward(rng.standard_normal((1, 3, 32, 32))).shape == (1, 10)

    def test_non_residual_family_rejected(self):
        with pytest.raises(ValueError):
            build_residual_model("vgg16")

    def test_unknown_architecture_rejected(self):
        with pytest.raises(KeyError):
            build_residual_model("resnet9000")

    def test_deterministic(self):
        x = rng.standard_normal((1, 3, 32, 32))
        a = build_residual_model("resnet18", seed=5).forward(x)
        b = build_residual_model("resnet18", seed=5).forward(x)
        np.testing.assert_array_equal(a, b)

    def test_depth_ordering(self):
        shallow = build_residual_model("resnet18").num_parameters
        deep = build_residual_model("resnet152").num_parameters
        assert shallow < deep
