"""Unit tests for networks, the architecture factory, and the profiler."""

import numpy as np
import pytest

from repro.cluster import PCIeModel
from repro.models import profile_network
from repro.models.nn import FAMILY_SPECS, Network, ReLU, available_architectures, build_model

rng = np.random.default_rng(0)


class TestNetwork:
    def test_forward_outputs_probabilities(self):
        net = build_model("alexnet", num_classes=10)
        out = net.forward(rng.standard_normal((4, 3, 32, 32)))
        assert out.shape == (4, 10)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)

    def test_predict_returns_labels(self):
        net = build_model("squeezenet1.1", num_classes=7)
        labels = net.predict(rng.standard_normal((5, 3, 32, 32)))
        assert labels.shape == (5,)
        assert set(labels) <= set(range(7))

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network("empty", [])

    def test_memory_estimate_positive_and_scales_with_headroom(self):
        net = build_model("resnet18")
        assert net.memory_mb(1.0) < net.memory_mb(3.0)
        with pytest.raises(ValueError):
            net.memory_mb(0.5)

    def test_forward_deterministic(self):
        x = rng.standard_normal((2, 3, 32, 32))
        a = build_model("vgg11", seed=3).forward(x)
        b = build_model("vgg11", seed=3).forward(x)
        np.testing.assert_array_equal(a, b)


class TestFactory:
    def test_covers_all_table1_architectures(self):
        from repro.models import model_names

        assert set(available_architectures()) == set(model_names())

    def test_unknown_architecture_rejected(self):
        with pytest.raises(KeyError):
            build_model("resnet9000")

    def test_family_compute_ordering(self):
        """Bigger families must have more parameters (so compute ranks like Table I)."""
        small = build_model("squeezenet1.1").num_parameters
        mid = build_model("resnet50").num_parameters
        big = build_model("vgg19").num_parameters
        assert small < mid < big

    def test_small_mnist_style_input(self):
        net = build_model("vgg19", in_channels=1, input_size=28)
        out = net.forward(rng.standard_normal((2, 1, 28, 28)))
        assert out.shape == (2, 10)

    def test_input_size_one_never_pools(self):
        net = build_model("resnet18", input_size=1)
        out = net.forward(rng.standard_normal((1, 3, 1, 1)))
        assert out.shape == (1, 10)

    def test_invalid_input_size(self):
        with pytest.raises(ValueError):
            build_model("resnet18", input_size=0)

    def test_batchnorm_families_contain_bn(self):
        from repro.models.nn import BatchNorm2D

        bn_net = build_model("resnet18")
        plain = build_model("vgg11")
        assert any(isinstance(l, BatchNorm2D) for l in bn_net.layers)
        assert not any(isinstance(l, BatchNorm2D) for l in plain.layers)


class TestProfiler:
    def test_profile_network_produces_valid_profile(self):
        net = build_model("squeezenet1.1")
        wp = profile_network(net, batch_sizes=(1, 2, 4), repeats=1)
        p = wp.profile
        assert p.name == "squeezenet1.1"
        assert p.occupied_mb > 0
        assert p.load_time_s > 0
        assert len(wp.measured_s) == 3
        # latency at larger batch must not be cheaper than the fitted intercept
        assert p.infer_time(4) >= p.regression.intercept

    def test_profile_monotone_regression(self):
        net = build_model("alexnet")
        wp = profile_network(net, batch_sizes=(1, 4, 8), repeats=1)
        assert wp.profile.infer_time(8) >= wp.profile.infer_time(1)

    def test_load_time_uses_pcie_model(self):
        net = build_model("squeezenet1.1")
        slow = profile_network(net, batch_sizes=(1, 2), repeats=1, pcie=PCIeModel(100.0, 5.0))
        fast = profile_network(net, batch_sizes=(1, 2), repeats=1, pcie=PCIeModel(10000.0, 0.1))
        assert slow.profile.load_time_s > fast.profile.load_time_s

    def test_profiler_argument_validation(self):
        net = build_model("squeezenet1.1")
        with pytest.raises(ValueError):
            profile_network(net, batch_sizes=(1,))
        with pytest.raises(ValueError):
            profile_network(net, repeats=0)


def test_family_specs_are_sane():
    for name, (width, blocks, _) in FAMILY_SPECS.items():
        assert width >= 4, name
        assert 1 <= blocks <= 6, name


def test_relu_layer_has_no_parameters():
    assert ReLU().num_parameters == 0
