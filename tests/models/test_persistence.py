"""Unit tests for profile registry persistence."""

import pytest

from repro.cluster import GPUTypeSpec, PCIeModel
from repro.models import ProfileRegistry
from repro.models.persistence import load_registry, save_registry


@pytest.fixture
def registry():
    fast = GPUTypeSpec(
        name="a100", memory_mb=40000, pcie=PCIeModel(6456.0, 0.8), speed_factor=0.4
    )
    return ProfileRegistry.from_table1([fast])


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path, registry):
        path = tmp_path / "profiles.json"
        save_registry(path, registry)
        back = load_registry(path)
        assert len(back) == len(registry) == 44
        assert back.architectures() == registry.architectures()
        assert back.gpu_types() == {"rtx2080", "a100"}
        for arch in ("vgg19", "squeezenet1.1"):
            for gpu_type in ("rtx2080", "a100"):
                a = registry.get(arch, gpu_type)
                b = back.get(arch, gpu_type)
                assert b.occupied_mb == a.occupied_mb
                assert b.load_time_s == a.load_time_s
                assert b.infer_time(32) == pytest.approx(a.infer_time(32))
                assert b.infer_time(8) == pytest.approx(a.infer_time(8))

    def test_file_is_stable_json(self, tmp_path, registry):
        p1 = tmp_path / "a.json"
        p2 = tmp_path / "b.json"
        save_registry(p1, registry)
        save_registry(p2, registry)
        assert p1.read_text() == p2.read_text()  # deterministic output


class TestErrors:
    def test_empty_registry_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_registry(tmp_path / "x.json", ProfileRegistry())

    def test_garbage_file_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("not json at all {")
        with pytest.raises(ValueError, match="not a profile registry"):
            load_registry(p)

    def test_wrong_version_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format_version": 99, "profiles": []}')
        with pytest.raises(ValueError, match="unsupported"):
            load_registry(p)

    def test_malformed_entry_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format_version": 1, "profiles": [{"name": "x"}]}')
        with pytest.raises(ValueError, match="malformed"):
            load_registry(p)

    def test_empty_profile_list_rejected(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"format_version": 1, "profiles": []}')
        with pytest.raises(ValueError, match="no profiles"):
            load_registry(p)


def test_workload_describe():
    """Workload.describe reports the §V-A.1 quantities."""
    from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload

    trace = SyntheticAzureTrace(
        AzureTraceConfig(num_functions=200, mean_rate_per_minute=1500, seed=3)
    )
    wl = build_workload(WorkloadSpec(working_set=15, minutes=2), trace=trace)
    d = wl.describe()
    assert d["working_set"] == 15
    assert d["total_requests"] == 650
    assert d["requests_per_minute"] == 325
    assert 0 < d["top_function_share"] < 1
    assert d["top15_share"] == pytest.approx(1.0)  # WS 15 → the top 15 are everything
    assert d["distinct_architectures"] == 15
    assert d["total_model_footprint_mb"] > 20_000
