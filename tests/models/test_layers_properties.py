"""Property-based tests for the NumPy inference layers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.models.nn import Conv2D, MaxPool2D, ReLU, Softmax, im2col

_small_images = arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(1, 3),  # N
        st.integers(1, 3),  # C
        st.integers(4, 9),  # H
        st.integers(4, 9),  # W
    ),
    elements=st.floats(-10, 10, allow_nan=False),
)


@given(_small_images, st.integers(1, 3), st.integers(1, 2), st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_im2col_matches_naive_loop(x, k, stride, padding):
    """The strided im2col must agree with an explicit Python-loop gather."""
    n, c, h, w = x.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    hp, wp = h + 2 * padding, w + 2 * padding
    if hp < k or wp < k:
        return
    cols = im2col(x, k, k, stride, padding)
    out_h = (hp - k) // stride + 1
    out_w = (wp - k) // stride + 1
    for i in range(out_h):
        for j in range(out_w):
            window = xp[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            np.testing.assert_allclose(
                cols[:, :, i * out_w + j], window.reshape(n, c * k * k)
            )


@given(_small_images)
@settings(max_examples=30, deadline=None)
def test_relu_is_idempotent_and_nonnegative(x):
    relu = ReLU()
    once = relu(x)
    assert np.all(once >= 0)
    np.testing.assert_array_equal(relu(once), once)


@given(_small_images)
@settings(max_examples=30, deadline=None)
def test_maxpool_never_exceeds_input_max(x):
    if x.shape[2] < 2 or x.shape[3] < 2:
        return
    out = MaxPool2D(2)(x)
    assert out.max() <= x.max() + 1e-12
    assert out.min() >= x.min() - 1e-12


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 8)),
        elements=st.floats(-30, 30, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_softmax_is_a_probability_distribution(x):
    p = Softmax()(x)
    np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-9)
    assert np.all(p >= 0)
    # order preservation: argmax of logits == argmax of probabilities
    # (only asserted for rows whose maximum is unique by a clear margin —
    # float round-off can flip ties)
    for row_x, row_p in zip(x, p):
        top = np.sort(row_x)
        if top[-1] - top[-2] > 1e-6:
            assert row_p.argmax() == row_x.argmax()


@given(st.integers(1, 3), st.integers(1, 4), st.integers(0, 2), st.integers(1, 2))
@settings(max_examples=25, deadline=None)
def test_conv_linearity(in_ch, out_ch, padding, stride):
    """Convolution is linear: conv(a*x + b*y) == a*conv0(x) + b*conv0(y) (zero bias)."""
    rng = np.random.default_rng(0)
    conv = Conv2D(in_ch, out_ch, 3, stride=stride, padding=padding, rng=rng)
    conv.bias[:] = 0.0
    x = rng.standard_normal((2, in_ch, 8, 8))
    y = rng.standard_normal((2, in_ch, 8, 8))
    lhs = conv(2.0 * x - 3.0 * y)
    rhs = 2.0 * conv(x) - 3.0 * conv(y)
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)
