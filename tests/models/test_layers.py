"""Unit tests for NumPy inference layers, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import signal

from repro.models.nn import (
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLU,
    Softmax,
    im2col,
)

rng = np.random.default_rng(42)


class TestIm2Col:
    def test_shape(self):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=1, padding=0)
        assert cols.shape == (2, 3 * 3 * 3, 6 * 6)

    def test_stride_and_padding_shape(self):
        x = rng.standard_normal((1, 1, 7, 7))
        cols = im2col(x, 3, 3, stride=2, padding=1)
        assert cols.shape == (1, 9, 16)  # out 4x4

    def test_identity_kernel_window_content(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, stride=2, padding=0)
        # first window is [[0,1],[4,5]]
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])

    def test_kernel_too_large_rejected(self):
        x = rng.standard_normal((1, 1, 2, 2))
        with pytest.raises(ValueError):
            im2col(x, 3, 3, stride=1, padding=0)


class TestConv2D:
    def test_matches_scipy_correlate(self):
        """Conv2D must equal per-channel scipy cross-correlation."""
        conv = Conv2D(3, 4, 3, rng=np.random.default_rng(1))
        x = rng.standard_normal((2, 3, 10, 10))
        out = conv(x)
        assert out.shape == (2, 4, 8, 8)
        for n in range(2):
            for oc in range(4):
                want = sum(
                    signal.correlate2d(x[n, ic], conv.weight[oc, ic], mode="valid")
                    for ic in range(3)
                ) + conv.bias[oc]
                np.testing.assert_allclose(out[n, oc], want, rtol=1e-10)

    def test_padding_preserves_spatial_size(self):
        conv = Conv2D(1, 1, 3, padding=1)
        x = rng.standard_normal((1, 1, 5, 5))
        assert conv(x).shape == (1, 1, 5, 5)

    def test_stride_downsamples(self):
        conv = Conv2D(1, 2, 3, stride=2, padding=1)
        x = rng.standard_normal((1, 1, 8, 8))
        assert conv(x).shape == (1, 2, 4, 4)

    def test_wrong_channel_count_rejected(self):
        conv = Conv2D(3, 4, 3)
        with pytest.raises(ValueError):
            conv(rng.standard_normal((1, 2, 8, 8)))

    def test_parameter_count(self):
        conv = Conv2D(3, 8, 5)
        assert conv.num_parameters == 8 * 3 * 5 * 5 + 8

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Conv2D(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2D(1, 1, 3, padding=-1)

    def test_deterministic_in_seed(self):
        a = Conv2D(2, 2, 3, rng=np.random.default_rng(7))
        b = Conv2D(2, 2, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight, b.weight)


class TestPooling:
    def test_maxpool_values(self):
        x = np.array([[[[1, 2, 5, 6], [3, 4, 7, 8], [0, 0, 1, 1], [0, 0, 2, 3]]]], dtype=float)
        out = MaxPool2D(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[4, 8], [0, 3]])

    def test_maxpool_stride_defaults_to_kernel(self):
        assert MaxPool2D(3).stride == 3

    def test_maxpool_too_small_input(self):
        with pytest.raises(ValueError):
            MaxPool2D(4)(rng.standard_normal((1, 1, 2, 2)))

    def test_global_avg_pool(self):
        x = np.ones((2, 3, 4, 4))
        out = GlobalAvgPool()(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 1.0)


class TestOtherLayers:
    def test_relu_clamps_negatives(self):
        out = ReLU()(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_batchnorm_identity_by_default(self):
        bn = BatchNorm2D(3)
        x = rng.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(bn(x), x, rtol=1e-5, atol=1e-5)

    def test_batchnorm_normalizes_with_running_stats(self):
        bn = BatchNorm2D(1)
        bn.running_mean[:] = 5.0
        bn.running_var[:] = 4.0
        x = np.full((1, 1, 2, 2), 9.0)
        np.testing.assert_allclose(bn(x), (9.0 - 5.0) / 2.0, rtol=1e-3)

    def test_flatten(self):
        out = Flatten()(np.zeros((2, 3, 4, 4)))
        assert out.shape == (2, 48)

    def test_linear_matches_manual_matmul(self):
        lin = Linear(4, 3, rng=np.random.default_rng(1))
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(lin(x), x @ lin.weight.T + lin.bias)

    def test_linear_dimension_check(self):
        with pytest.raises(ValueError):
            Linear(4, 3)(rng.standard_normal((2, 5)))

    def test_softmax_rows_sum_to_one(self):
        out = Softmax()(rng.standard_normal((6, 10)) * 50)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)
        assert np.all(out >= 0)

    def test_softmax_is_shift_invariant(self):
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(Softmax()(x), Softmax()(x + 1000.0), rtol=1e-6)
