"""Unit tests for the model zoo, profiles, and registry."""

import pytest

from repro.cluster import GPUTypeSpec, PCIeModel
from repro.models import (
    PAPER_BATCH_SIZE,
    TABLE1,
    TABLE1_ROWS,
    BatchRegression,
    ModelInstance,
    ModelProfile,
    ProfileRegistry,
    get_profile,
    model_names,
    paper_profiles,
)


class TestTable1:
    def test_has_22_models(self):
        assert len(TABLE1_ROWS) == 22
        assert len(TABLE1) == 22

    def test_rows_sorted_by_occupation_size(self):
        sizes = [size for _, size, _, _ in TABLE1_ROWS]
        assert sizes == sorted(sizes)

    def test_known_anchor_rows(self):
        assert TABLE1["squeezenet1.1"] == (1269, 2.41, 1.28)
        assert TABLE1["vgg19"] == (3947, 4.07, 1.33)
        assert TABLE1["inception.v3"] == (2157, 4.42, 1.63)

    def test_get_profile_reproduces_table_values(self):
        p = get_profile("resnet50")
        assert p.occupied_mb == 1701
        assert p.load_time_s == 2.67
        assert p.infer_time_s == pytest.approx(1.28)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            get_profile("gpt4")

    def test_paper_profiles_cover_all_names(self):
        assert set(paper_profiles()) == set(model_names())

    def test_all_load_times_exceed_inference_times(self):
        """Table I invariant the LALB policy exploits: loads cost more than inference."""
        for _, _, load, infer in TABLE1_ROWS:
            assert load > infer


class TestBatchRegression:
    def test_anchor_reproduces_value_at_32(self):
        reg = BatchRegression.from_anchor(1.28)
        assert reg.time_for(PAPER_BATCH_SIZE) == pytest.approx(1.28)

    def test_monotone_in_batch_size(self):
        reg = BatchRegression.from_anchor(1.28)
        assert reg.time_for(1) < reg.time_for(16) < reg.time_for(64)

    def test_fit_recovers_line(self):
        truth = BatchRegression(intercept=0.5, slope=0.01)
        batches = [1, 8, 16, 32]
        times = [truth.time_for(b) for b in batches]
        fitted = BatchRegression.fit(batches, times)
        assert fitted.intercept == pytest.approx(0.5)
        assert fitted.slope == pytest.approx(0.01)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            BatchRegression.fit([32], [1.0])

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchRegression.from_anchor(1.0).time_for(0)

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ValueError):
            BatchRegression(intercept=-1.0, slope=0.1)
        with pytest.raises(ValueError):
            BatchRegression(intercept=0.0, slope=0.0)

    def test_invalid_anchor_args(self):
        with pytest.raises(ValueError):
            BatchRegression.from_anchor(0.0)
        with pytest.raises(ValueError):
            BatchRegression.from_anchor(1.0, fixed_fraction=1.5)


class TestModelProfile:
    def test_validation(self):
        reg = BatchRegression.from_anchor(1.0)
        with pytest.raises(ValueError):
            ModelProfile("m", occupied_mb=0, load_time_s=1.0, regression=reg)
        with pytest.raises(ValueError):
            ModelProfile("m", occupied_mb=100, load_time_s=0, regression=reg)

    def test_on_gpu_type_scales_latencies(self):
        p = get_profile("vgg19")
        fast = p.on_gpu_type("a100", speed_factor=0.5, load_factor=0.25)
        assert fast.gpu_type == "a100"
        assert fast.infer_time_s == pytest.approx(p.infer_time_s * 0.5)
        assert fast.load_time_s == pytest.approx(p.load_time_s * 0.25)
        assert fast.occupied_mb == p.occupied_mb  # memory footprint unchanged

    def test_on_gpu_type_rejects_bad_factors(self):
        with pytest.raises(ValueError):
            get_profile("vgg19").on_gpu_type("x", speed_factor=0.0)


class TestModelInstance:
    def test_instance_delegates_to_profile(self):
        inst = ModelInstance("fn-7", get_profile("alexnet"), tenant="acme")
        assert inst.occupied_mb == 1437
        assert inst.architecture == "alexnet"
        assert inst.tenant == "acme"

    def test_instances_with_same_profile_are_distinct_cache_items(self):
        p = get_profile("alexnet")
        a = ModelInstance("fn-1", p)
        b = ModelInstance("fn-2", p)
        assert a != b
        assert a.instance_id != b.instance_id


class TestProfileRegistry:
    def test_from_table1_baseline(self):
        reg = ProfileRegistry.from_table1()
        assert len(reg) == 22
        assert reg.gpu_types() == {"rtx2080"}
        assert reg.get("vgg16", "rtx2080").occupied_mb == 3907

    def test_heterogeneous_types_derived(self):
        a100 = GPUTypeSpec(
            name="a100",
            memory_mb=40000,
            pcie=PCIeModel(bandwidth_mb_s=6456.0, fixed_overhead_s=0.8),
            speed_factor=0.4,
        )
        reg = ProfileRegistry.from_table1([a100])
        assert len(reg) == 44
        base = reg.get("resnet152", "rtx2080")
        fast = reg.get("resnet152", "a100")
        assert fast.infer_time_s == pytest.approx(base.infer_time_s * 0.4)
        assert fast.load_time_s < base.load_time_s

    def test_missing_profile_message_mentions_profiling(self):
        reg = ProfileRegistry.from_table1()
        with pytest.raises(KeyError, match="profiling procedure"):
            reg.get("resnet50", "h100")

    def test_baseline_duplicate_type_not_doubled(self):
        reg = ProfileRegistry.from_table1([GPUTypeSpec()])  # same name as baseline
        assert len(reg) == 22
