"""Chaos subsystem against a live system: injector, watchdog, control plane.

Covers the runtime half of :mod:`repro.chaos` — faults compiled into
simulator events actually crash/slow/silence the right components, the
health watchdog escalates and self-heals, deadlines and retry budgets
bound the damage, and every replay drains to zero live events (no fault
may leak simulator state).
"""

import pytest

from repro.chaos import ChaosInjector, FaultPlan, build_fault_plan
from repro.chaos.plan import GPUCrash, KVLatencySpike, LeaseExpiry, Straggler, WatchDrop
from repro.cluster import ClusterSpec
from repro.runtime import FaaSCluster, SystemConfig


def _system(plan=None, *, gpus=2, policy="lalb", **kwargs):
    return FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(1, gpus),
            policy=policy,
            fault_plan=plan,
            **kwargs,
        )
    )


class TestInjector:
    def test_crash_and_recover_records_mttr(self, make_request):
        plan = FaultPlan(
            "crash", faults=(GPUCrash(at_s=1.0, gpu_index=0, recover_after_s=4.0),)
        )
        system = _system(plan)
        gpu0, gpu1 = system.cluster.gpus
        r = make_request("fn-a", "resnet50")
        system.submit(r)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id  # crash mid-load pushed it over
        assert r.retries == 1
        assert gpu0.is_online  # recovered
        assert system.chaos.injected == 1
        assert system.metrics.faults_injected == 1
        assert system.metrics.repairs == [("crash", gpu0.gpu_id, 4.0)]
        assert system.metrics.mean_mttr() == 4.0
        assert len(system.sim) == 0

    def test_crash_against_offline_gpu_is_skipped(self, make_request):
        """Overlapping crashes on one target: the second finds the GPU
        already offline and must not double-inject (or double-recover)."""
        plan = FaultPlan(
            "overlap",
            faults=(
                GPUCrash(at_s=1.0, gpu_index=0, recover_after_s=10.0),
                GPUCrash(at_s=2.0, gpu_index=0, recover_after_s=1.0),
            ),
        )
        system = _system(plan)
        system.run()
        assert system.chaos.injected == 1
        assert system.cluster.gpus[0].is_online
        assert len(system.sim) == 0

    def test_straggler_slows_real_execution(self, make_request):
        healthy = _system(None, gpus=1)
        r_fast = make_request("fn-a", "resnet50")
        healthy.submit(r_fast)
        healthy.run()

        plan = FaultPlan(
            "slow",
            faults=(Straggler(at_s=0.0, gpu_index=0, factor=3.0, duration_s=100.0),),
        )
        slowed = _system(plan, gpus=1)
        # arrive in-sim at 1.0 so the dispatch happens after the straggler
        # fault (armed at 0.0) has taken effect
        r_slow = make_request("fn-b", "resnet50", arrival=1.0)
        slowed.submit_at(r_slow)
        slowed.run()
        # the device underdelivers: same request, ~3x the wall time
        assert (r_slow.completed_at - 1.0) > r_fast.completed_at * 2
        assert slowed.metrics.repairs[0][0] == "straggler"
        assert len(slowed.sim) == 0

    def test_watch_drop_swallows_deliveries(self):
        plan = FaultPlan("drop", faults=(WatchDrop(at_s=1.0, duration_s=5.0),))
        system = _system(plan)
        client = system.datastore.client()
        seen = []
        client.watch("chaos-test/", seen.append, prefix=True)
        system.sim.schedule_at(2.0, client.put, "chaos-test/a", 1)  # inside window
        system.sim.schedule_at(8.0, client.put, "chaos-test/b", 2)  # after it
        system.run()
        assert [e.key for e in seen] == ["chaos-test/b"]
        assert system.datastore.watches.chaos_dropped_batches >= 1
        assert len(system.sim) == 0

    def test_kv_latency_spike_delays_deliveries(self):
        plan = FaultPlan(
            "spike",
            faults=(KVLatencySpike(at_s=1.0, duration_s=5.0, extra_delay_s=2.0),),
        )
        system = _system(plan)
        client = system.datastore.client()
        delivered_at = []
        client.watch(
            "chaos-test/", lambda ev: delivered_at.append(system.sim.now), prefix=True
        )
        system.sim.schedule_at(2.0, client.put, "chaos-test/a", 1)
        system.run()
        assert len(delivered_at) == 1
        assert delivered_at[0] >= 4.0  # put at 2.0 + 2.0 s spike
        assert ("kv_latency_spike", "hub", 5.0) in system.metrics.repairs
        assert len(system.sim) == 0


class TestHealthWatchdog:
    def test_lease_expiry_escalates_and_self_heals(self, make_request):
        plan = FaultPlan(
            "silent", faults=(LeaseExpiry(at_s=1.0, gpu_index=0, duration_s=6.0),)
        )
        system = _system(plan)
        gpu0 = system.cluster.gpus[0]
        offline_window = []
        system.sim.schedule_at(6.0, lambda: offline_window.append(gpu0.is_online))
        system.run()
        # mid-suppression the missed heartbeats had taken the GPU offline...
        assert offline_window == [False]
        # ...and resumed heartbeats healed it
        assert gpu0.is_online
        health = system.health
        assert health.escalations >= 1
        assert health.recoveries >= 1
        assert health.retired  # past the horizon the beat loop stops
        kinds = [kind for kind, _, _ in system.metrics.repairs]
        assert "lease_expiry" in kinds
        assert len(system.sim) == 0  # the heartbeat loop doesn't run forever

    def test_escalated_gpu_requeues_work(self, make_request):
        plan = FaultPlan(
            "silent", faults=(LeaseExpiry(at_s=1.0, gpu_index=0, duration_s=8.0),)
        )
        system = _system(plan)
        gpu0, gpu1 = system.cluster.gpus
        # the first beat (t=1.0) refreshes before suppression lands, so the
        # lease expires at 4.0; a request loading on gpu0 at that moment is
        # evicted by the escalation and retried on gpu1
        r = make_request("fn-a", "resnet50", arrival=2.0)
        system.submit_at(r)  # dispatches at 2.0, loading until 4.67
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id  # escalation evicted it from gpu0
        assert r.retries == 1
        assert len(system.sim) == 0

    def test_watchdog_without_faults_is_not_built(self):
        system = _system(None)
        assert system.health is None and system.chaos is None
        assert len(system.sim) == 0  # zero chaos events when disarmed


class TestDeadlines:
    def test_queued_request_times_out(self, make_request):
        from repro.core.decisions import DecisionKind
        from repro.core.request import RequestState

        system = _system(None, gpus=1, deadline_s=2.0)
        gpu = system.cluster.gpus[0]
        system.fail_gpu(gpu.gpu_id)  # nowhere to run: request stays queued
        r = make_request("fn-a", "resnet50")
        system.submit(r)
        system.run()
        assert r.completed_at is None
        assert r.state is RequestState.LOST
        assert len(system.scheduler.global_queue) == 0  # removed, not stuck
        assert system.scheduler.lost_count == 1
        assert system.metrics.lost_reasons == {"deadline": 1}
        kinds = [d.kind for d in system.scheduler.decisions]
        assert DecisionKind.TIMEOUT in kinds
        assert len(system.sim) == 0

    def test_dispatched_request_is_never_timed_out(self, make_request):
        from repro.core.decisions import DecisionKind

        # deadline shorter than the cold run (load 2.67 + infer): the
        # request is already executing when the timer fires, so it is
        # committed work and must complete
        system = _system(None, gpus=1, deadline_s=0.5)
        r = make_request("fn-a", "resnet50")
        system.submit(r)
        system.run()
        assert r.completed_at is not None
        assert system.scheduler.lost_count == 0
        assert DecisionKind.TIMEOUT not in [d.kind for d in system.scheduler.decisions]
        assert len(system.sim) == 0

    def test_lost_requests_reach_the_summary(self, make_request):
        from repro.metrics.summary import summarize

        system = _system(None, gpus=1, deadline_s=1.0)
        gpu = system.cluster.gpus[0]
        ok = make_request("fn-a", "resnet50")
        system.submit(ok)
        system.run()  # completes while the GPU is healthy
        system.fail_gpu(gpu.gpu_id)
        doomed = make_request("fn-b", "alexnet", arrival=system.sim.now)
        system.submit(doomed)
        system.run()
        summary = summarize(system.metrics, system.cluster)
        assert summary.completed_requests == 1
        assert summary.lost_requests == 1
        assert summary.goodput_rps > 0


class TestConfigValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="fault profile"):
            SystemConfig(fault_profile="blast-radius")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(deadline_s=0.0)

    def test_bad_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(max_retries=-1)

    def test_ttl_must_exceed_heartbeat(self):
        with pytest.raises(ValueError):
            SystemConfig(health_heartbeat_s=2.0, health_ttl_s=1.0)


class TestAvailabilityUnderChaos:
    def test_recoverable_replay_loses_nothing(self, make_request):
        """The acceptance property in miniature: a recoverable plan over a
        busy workload completes everything with bounded retries."""
        from repro.metrics.summary import summarize

        plan = build_fault_plan("recoverable", seed=2, horizon_s=30.0, gpus=4)
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(2, 2),
                policy="lalbo3",
                fault_plan=plan,
            )
        )
        requests = [
            make_request(f"fn-{i % 6}", "resnet18", arrival=i * 0.2) for i in range(120)
        ]
        for r in requests:
            system.submit_at(r)
        system.run()
        assert all(r.completed_at is not None for r in requests)
        summary = summarize(system.metrics, system.cluster)
        assert summary.lost_requests == 0
        assert summary.completed_requests == 120
        assert summary.faults_injected >= len(plan) - 1  # overlaps may skip
        assert summary.mean_mttr_s > 0
        assert len(system.sim) == 0
