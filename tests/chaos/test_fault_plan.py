"""FaultPlan construction: seeded determinism and validation.

A plan is pure data; every guarantee downstream (byte-identical chaos
replays, the bench gates, the sweep's fault axis) rests on
``build_fault_plan`` being a pure function of (profile, seed, horizon,
gpus).
"""

import pytest

from repro.chaos import FAULT_PROFILES, FaultPlan, build_fault_plan
from repro.chaos.plan import (
    DEFAULT_HORIZON_S,
    GPUCrash,
    KVLatencySpike,
    LeaseExpiry,
    Straggler,
    WatchDrop,
)


class TestSeededProfiles:
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_same_arguments_same_plan(self, profile):
        a = build_fault_plan(profile, seed=7, horizon_s=100.0, gpus=8)
        b = build_fault_plan(profile, seed=7, horizon_s=100.0, gpus=8)
        assert a == b  # frozen dataclasses: field-for-field equality

    def test_different_seeds_differ(self):
        a = build_fault_plan("recoverable", seed=0)
        b = build_fault_plan("recoverable", seed=1)
        assert a != b

    def test_none_profile_is_empty(self):
        plan = build_fault_plan("none", seed=3)
        assert len(plan) == 0
        assert plan.end_s == 0.0

    def test_recoverable_profile_always_heals(self):
        for seed in range(5):
            plan = build_fault_plan("recoverable", seed=seed)
            assert len(plan) == 6
            for fault in plan:
                if isinstance(fault, GPUCrash):
                    assert fault.recover_after_s is not None
            # every fault lands strictly inside the horizon
            assert all(0 < f.at_s < DEFAULT_HORIZON_S for f in plan)

    def test_severe_profile_has_a_permanent_crash(self):
        plan = build_fault_plan("severe", seed=0)
        permanent = [
            f for f in plan
            if isinstance(f, GPUCrash) and f.recover_after_s is None
        ]
        assert len(permanent) == 1

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            build_fault_plan("blast-radius")

    def test_bad_arguments_raise(self):
        with pytest.raises(ValueError):
            build_fault_plan("recoverable", horizon_s=0.0)
        with pytest.raises(ValueError):
            build_fault_plan("recoverable", gpus=0)


class TestValidation:
    def test_negative_injection_time_rejected(self):
        plan = FaultPlan("bad", faults=(WatchDrop(at_s=-1.0, duration_s=2.0),))
        with pytest.raises(ValueError, match="at_s"):
            plan.validate()

    def test_sub_unity_straggler_rejected(self):
        plan = FaultPlan(
            "bad", faults=(Straggler(at_s=1.0, gpu_index=0, factor=0.5, duration_s=2.0),)
        )
        with pytest.raises(ValueError, match="factor"):
            plan.validate()

    def test_nonpositive_duration_rejected(self):
        plan = FaultPlan(
            "bad", faults=(LeaseExpiry(at_s=1.0, gpu_index=0, duration_s=0.0),)
        )
        with pytest.raises(ValueError, match="duration_s"):
            plan.validate()

    def test_end_s_covers_recovery_and_windows(self):
        plan = FaultPlan(
            "spans",
            faults=(
                GPUCrash(at_s=10.0, gpu_index=0, recover_after_s=25.0),
                KVLatencySpike(at_s=20.0, duration_s=5.0, extra_delay_s=0.5),
            ),
        )
        assert plan.end_s == 35.0
        # a permanent crash contributes only its injection time
        permanent = FaultPlan(
            "perm", faults=(GPUCrash(at_s=12.0, gpu_index=0),)
        )
        assert permanent.end_s == 12.0
