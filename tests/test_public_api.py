"""The package's public API surface must stay importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_flow():
    system = repro.FaaSCluster(repro.SystemConfig(policy="lalbo3"))
    gateway = repro.Gateway(system)
    gateway.register(repro.FunctionSpec(name="classify", model_architecture="resnet50"))
    cold = gateway.invoke("classify")
    system.run()
    warm = gateway.invoke("classify")
    system.run()
    assert warm.latency < cold.latency
    assert cold.status is repro.InvocationStatus.SUCCEEDED


def test_paper_testbed_constant():
    assert repro.PAPER_TESTBED.total_gpus == 12


def test_subpackages_importable():
    import repro.chaos
    import repro.cluster
    import repro.core
    import repro.datastore
    import repro.experiments
    import repro.faas
    import repro.metrics
    import repro.models
    import repro.obs
    import repro.sim
    import repro.traces

    assert repro.sim.Simulator is not None
