"""Shared fixtures for core tests."""

import pytest

from repro.core.request import InferenceRequest
from repro.models import ModelInstance, get_profile


@pytest.fixture
def make_instance():
    def _make(instance_id="fn-1", architecture="resnet50", tenant="default"):
        return ModelInstance(instance_id, get_profile(architecture), tenant=tenant)

    return _make


@pytest.fixture
def make_request(make_instance):
    def _make(
        instance_id="fn-1",
        architecture="resnet50",
        arrival=0.0,
        function=None,
        tenant="default",
        batch_size=32,
    ):
        inst = make_instance(instance_id, architecture, tenant)
        return InferenceRequest(
            function_name=function or instance_id,
            model=inst,
            arrival_time=arrival,
            tenant=tenant,
            batch_size=batch_size,
        )

    return _make
