"""Unit tests for the synthetic Azure trace generator."""

import numpy as np
import pytest

from repro.traces import AzureTraceConfig, SyntheticAzureTrace, calibrate_zipf_exponent


class TestCalibration:
    def test_top15_share_matches_paper(self):
        s = calibrate_zipf_exponent()
        trace = SyntheticAzureTrace()
        assert trace.share_of_top(15) == pytest.approx(0.56, abs=1e-6)
        assert s > 0

    def test_far_tail_below_paper_bound(self):
        """The far tail satisfies the paper's <0.01%-per-function bound,
        while ranks 16-35 keep meaningful traffic for the working-set
        experiments (see azure.py docstring for the interpretation)."""
        trace = SyntheticAzureTrace()
        assert trace.weights[600:].max() < 1e-4
        assert trace.weights[15:35].min() > 1e-3

    def test_weights_are_a_distribution(self):
        trace = SyntheticAzureTrace()
        assert trace.weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(trace.weights) <= 0)  # sorted by popularity

    def test_invalid_calibration_args(self):
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(top_k=0)
        with pytest.raises(ValueError):
            calibrate_zipf_exponent(top_share=1.5)

    def test_custom_share(self):
        s = calibrate_zipf_exponent(1000, top_k=10, top_share=0.3)
        ranks = np.arange(1, 1001, dtype=float)
        w = ranks**-s
        assert w[:10].sum() / w.sum() == pytest.approx(0.3, abs=1e-8)


class TestConfig:
    def test_paper_dimensions(self):
        cfg = AzureTraceConfig()
        assert cfg.num_functions == 46_413
        assert cfg.days == 14
        assert cfg.total_minutes == 14 * 1440

    def test_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(num_functions=1)
        with pytest.raises(ValueError):
            AzureTraceConfig(mean_rate_per_minute=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(diurnal_amplitude=1.5)


class TestCounts:
    @pytest.fixture(scope="class")
    def small_trace(self):
        return SyntheticAzureTrace(
            AzureTraceConfig(num_functions=1000, mean_rate_per_minute=5000, seed=7)
        )

    def test_counts_shape(self, small_trace):
        fids = small_trace.top_functions(10)
        counts = small_trace.counts(fids, range(6))
        assert counts.shape == (10, 6)
        assert counts.dtype == np.int64
        assert np.all(counts >= 0)

    def test_counts_deterministic(self, small_trace):
        fids = small_trace.top_functions(5)
        a = small_trace.counts(fids, range(3))
        b = small_trace.counts(fids, range(3))
        np.testing.assert_array_equal(a, b)

    def test_minute_isolation(self, small_trace):
        """Minute m's counts do not depend on which other minutes are read."""
        fids = small_trace.top_functions(5)
        full = small_trace.counts(fids, range(6))
        only_m3 = small_trace.counts(fids, range(3, 4))
        np.testing.assert_array_equal(full[:, 3], only_m3[:, 0])

    def test_popularity_ordering_respected(self, small_trace):
        fids = small_trace.top_functions(20)
        counts = small_trace.counts(fids, range(30)).sum(axis=1)
        # rank-0 function must clearly dominate rank-19
        assert counts[0] > counts[-1] * 2

    def test_top_functions_validation(self, small_trace):
        with pytest.raises(ValueError):
            small_trace.top_functions(0)
        with pytest.raises(ValueError):
            small_trace.top_functions(10_000)

    def test_unknown_function_rejected(self, small_trace):
        with pytest.raises(KeyError):
            small_trace.counts(["nope"], range(2))
        with pytest.raises(KeyError):
            small_trace.counts(["fn99999"], range(2))

    def test_minute_bounds(self, small_trace):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            small_trace.minute_total(10**9, rng)

    def test_diurnal_pattern_modulates_totals(self):
        cfg = AzureTraceConfig(
            num_functions=100, mean_rate_per_minute=10_000, diurnal_amplitude=0.5, seed=1
        )
        trace = SyntheticAzureTrace(cfg)
        rng = np.random.default_rng(0)
        peak = trace.minute_total(360, rng)  # sin peak at quarter day
        trough = trace.minute_total(1080, rng)  # sin trough at 3/4 day
        assert peak > trough
