"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.traces import (
    cifar_like,
    compress_to_batch,
    hymenoptera_like,
    load_dataset,
    mnist_like,
)


class TestFixedSizeDatasets:
    def test_mnist_shape_and_range(self):
        batch = mnist_like(16)
        assert batch.images.shape == (16, 1, 28, 28)
        assert batch.images.dtype == np.float32
        assert batch.images.min() >= 0.0 and batch.images.max() <= 1.0
        assert batch.labels.shape == (16,)
        assert set(batch.labels) <= set(range(10))

    def test_cifar_shape(self):
        batch = cifar_like(8)
        assert batch.images.shape == (8, 3, 32, 32)

    def test_deterministic_in_seed(self):
        a = mnist_like(4, seed=5)
        b = mnist_like(4, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_class_signal_separable(self):
        """Same-class images must correlate more than cross-class ones."""
        batch = cifar_like(64, noise=0.05, seed=0)
        flat = batch.images.reshape(len(batch), -1)
        by_class = {}
        for img, label in zip(flat, batch.labels):
            by_class.setdefault(int(label), []).append(img)
        two = {k: v for k, v in by_class.items() if len(v) >= 2}
        assert len(two) >= 2
        keys = sorted(two)[:2]
        same = np.corrcoef(two[keys[0]][0], two[keys[0]][1])[0, 1]
        cross = np.corrcoef(two[keys[0]][0], two[keys[1]][0])[0, 1]
        assert same > cross

    def test_len_protocol(self):
        assert len(mnist_like(5)) == 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            mnist_like(0)


class TestHymenoptera:
    def test_variable_sizes_hwc(self):
        images = hymenoptera_like(6, min_size=32, max_size=128, seed=1)
        assert len(images) == 6
        shapes = {img.shape[:2] for img in images}
        assert all(img.ndim == 3 and img.shape[2] == 3 for img in images)
        assert len(shapes) > 1  # sizes actually vary

    def test_invalid_size_range(self):
        with pytest.raises(ValueError):
            hymenoptera_like(2, min_size=4, max_size=2)


class TestCompression:
    def test_compress_to_batch_shape(self):
        images = hymenoptera_like(5, min_size=40, max_size=100, seed=2)
        batch = compress_to_batch(images, size=32)
        assert batch.shape == (5, 3, 32, 32)
        assert batch.min() >= -1e-6 and batch.max() <= 1.0 + 1e-6

    def test_compress_preserves_mean_brightness(self):
        images = [np.full((80, 60, 3), 0.25, dtype=np.float32)]
        batch = compress_to_batch(images, size=16)
        np.testing.assert_allclose(batch, 0.25, rtol=1e-5)

    def test_compress_rejects_non_rgb(self):
        with pytest.raises(ValueError):
            compress_to_batch([np.zeros((10, 10))])

    def test_invalid_target_size(self):
        with pytest.raises(ValueError):
            compress_to_batch([np.zeros((10, 10, 3))], size=0)


class TestRegistry:
    def test_load_each_dataset(self):
        assert load_dataset("mnist", 4).images.shape[1:] == (1, 28, 28)
        assert load_dataset("cifar10", 4).images.shape[1:] == (3, 32, 32)
        assert len(load_dataset("hymenoptera", 4)) == 4

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet")
