"""Columnar workload pipeline vs. the retained per-request reference.

The columnar :func:`build_workload` must encode the byte-identical request
stream the seed's per-request loop produced — same function sequence, same
arrival instants, same model assignment — for every working set and seed,
while building no request objects until asked.
"""

import numpy as np
import pytest

from repro.traces import (
    AzureTraceConfig,
    SyntheticAzureTrace,
    WorkloadSpec,
    build_workload,
    build_workload_reference,
)


@pytest.fixture(scope="module")
def trace():
    return SyntheticAzureTrace(
        AzureTraceConfig(num_functions=500, mean_rate_per_minute=3000, seed=3)
    )


class TestStreamParity:
    @pytest.mark.parametrize("working_set", [15, 25, 35])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_columns_identical_to_reference(self, trace, working_set, seed):
        spec = WorkloadSpec(working_set=working_set, minutes=3, seed=seed)
        columnar = build_workload(spec, trace=trace)
        reference = build_workload_reference(spec, trace=trace)
        np.testing.assert_array_equal(columnar.arrival_times, reference.arrival_times)
        np.testing.assert_array_equal(columnar.function_index, reference.function_index)
        np.testing.assert_array_equal(columnar.counts, reference.counts)
        assert columnar.function_ids == reference.function_ids

    @pytest.mark.parametrize("working_set", [15, 25, 35])
    def test_materialized_requests_identical(self, trace, working_set):
        spec = WorkloadSpec(working_set=working_set, minutes=2, seed=11)
        columnar = build_workload(spec, trace=trace).requests
        reference = build_workload_reference(spec, trace=trace).requests
        assert len(columnar) == len(reference)
        # ids come from a process-global counter: compare as per-build
        # offsets so the streams prove identical construction order
        base_c, base_r = columnar[0].request_id, reference[0].request_id
        for c, r in zip(columnar, reference):
            assert c.function_name == r.function_name
            assert c.arrival_time == r.arrival_time
            assert c.model.instance_id == r.model.instance_id
            assert c.batch_size == r.batch_size
            assert c.tenant == r.tenant
            assert c.sla_s == r.sla_s
            assert c.request_id - base_c == r.request_id - base_r


class TestLazyMaterialization:
    def test_build_makes_no_request_objects(self, trace):
        w = build_workload(WorkloadSpec(working_set=5, minutes=2), trace=trace)
        assert not w.materialized
        assert len(w) == 2 * 325
        assert len(w.arrival_times) == len(w.function_index) == len(w)
        assert not w.materialized  # column access does not materialize

    def test_describe_is_column_only(self, trace):
        w = build_workload(WorkloadSpec(working_set=5, minutes=2), trace=trace)
        stats = w.describe()
        assert stats["total_requests"] == len(w)
        assert not w.materialized

    def test_requests_cached_single_materialization(self, trace):
        w = build_workload(WorkloadSpec(working_set=5, minutes=1), trace=trace)
        first = w.requests
        assert w.materialized
        assert w.requests is first  # same list object: built exactly once
        assert [r.arrival_time for r in first] == w.arrival_times.tolist()

    def test_iteration_sees_the_cached_objects(self, trace):
        w = build_workload(WorkloadSpec(working_set=5, minutes=1), trace=trace)
        via_iter = list(w)
        assert via_iter == w.requests
        assert via_iter[0] is w.requests[0]

    def test_reference_builder_is_prematerialized(self, trace):
        w = build_workload_reference(WorkloadSpec(working_set=5, minutes=1), trace=trace)
        assert w.materialized
