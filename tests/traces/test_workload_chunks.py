"""Chunked workload stream vs the monolithic builder: exact RNG parity.

The streaming pipeline's first guarantee: however the stream is chunked,
concatenating the chunks reproduces ``build_workload``'s columns byte for
byte, because both consume the identical per-minute draws from one
``default_rng(seed)``.
"""

import numpy as np
import pytest

from repro.traces.workload import (
    WorkloadSpec,
    build_workload,
    build_workload_streaming,
)


def _concat(stream, minutes_per_chunk):
    chunks = list(stream.chunks(minutes_per_chunk=minutes_per_chunk))
    times = np.concatenate([c.arrival_times for c in chunks])
    index = np.concatenate([c.function_index for c in chunks])
    return chunks, times, index


class TestColumnParity:
    @pytest.mark.parametrize("working_set", [15, 25, 35])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_concat_equals_build_workload(self, working_set, seed):
        spec = WorkloadSpec(
            working_set=working_set, minutes=6, requests_per_minute=120, seed=seed
        )
        whole = build_workload(spec)
        stream = build_workload_streaming(spec)
        _, times, index = _concat(stream, minutes_per_chunk=3)
        assert np.array_equal(times, whole.arrival_times)
        assert np.array_equal(index, whole.function_index)
        assert stream.function_ids == whole.function_ids

    @pytest.mark.parametrize("minutes_per_chunk", [1, 2, 5, 6, 100])
    def test_chunking_granularity_is_invisible(self, minutes_per_chunk):
        spec = WorkloadSpec(working_set=15, minutes=6, requests_per_minute=90, seed=3)
        whole = build_workload(spec)
        stream = build_workload_streaming(spec)
        chunks, times, index = _concat(stream, minutes_per_chunk)
        assert np.array_equal(times, whole.arrival_times)
        assert np.array_equal(index, whole.function_index)
        assert sum(c.minutes for c in chunks) == spec.minutes
        assert chunks[0].start_minute == 0

    def test_reiteration_is_deterministic(self):
        stream = build_workload_streaming(
            WorkloadSpec(working_set=15, minutes=4, requests_per_minute=60, seed=1)
        )
        _, t1, i1 = _concat(stream, 2)
        _, t2, i2 = _concat(stream, 2)
        assert np.array_equal(t1, t2)
        assert np.array_equal(i1, i2)

    def test_rejects_bad_chunk_size(self):
        stream = build_workload_streaming(WorkloadSpec(minutes=2))
        with pytest.raises(ValueError):
            next(stream.chunks(minutes_per_chunk=0))


class TestMaterialize:
    def test_requests_match_monolithic_build(self):
        spec = WorkloadSpec(working_set=25, minutes=4, requests_per_minute=80, seed=5)
        whole = build_workload(spec)
        stream = build_workload_streaming(spec)
        streamed = []
        for chunk in stream.chunks(minutes_per_chunk=2):
            streamed.extend(stream.materialize(chunk))
        assert len(streamed) == len(whole.requests) == stream.total_requests
        for got, want in zip(streamed, whole.requests):
            assert got.function_name == want.function_name
            assert got.arrival_time == want.arrival_time
            assert got.model.instance_id == want.model.instance_id
            assert got.batch_size == want.batch_size
            assert got.sla_s == want.sla_s
            assert got.tenant == want.tenant

    def test_stream_metadata_matches(self):
        spec = WorkloadSpec(working_set=15, minutes=3, requests_per_minute=50, seed=9)
        whole = build_workload(spec)
        stream = build_workload_streaming(spec)
        assert stream.describe() == whole.describe()
        assert stream.top_function == whole.top_function
        assert stream.top_model_id == whole.top_model_id
        assert stream.duration_s == whole.duration_s
        assert len(stream) == len(whole)
