"""Unit tests for the workload extraction pipeline (§V-A.1)."""

import numpy as np
import pytest

from repro.models import TABLE1_ROWS
from repro.traces import (
    AzureTraceConfig,
    SyntheticAzureTrace,
    WorkloadSpec,
    assign_architectures,
    build_workload,
)


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticAzureTrace(
        AzureTraceConfig(num_functions=500, mean_rate_per_minute=3000, seed=3)
    )


@pytest.fixture(scope="module")
def workload(small_trace):
    return build_workload(WorkloadSpec(working_set=15, seed=11), trace=small_trace)


class TestNormalization:
    def test_each_minute_sums_to_325(self, workload):
        totals = workload.counts.sum(axis=0)
        assert list(totals) == [325] * 6

    def test_total_request_count(self, workload):
        assert len(workload.requests) == 325 * 6

    def test_custom_rate(self, small_trace):
        w = build_workload(
            WorkloadSpec(working_set=5, minutes=2, requests_per_minute=50), trace=small_trace
        )
        assert len(w.requests) == 100

    def test_skew_preserved_after_normalization(self, workload):
        """The hottest function must dominate, as in the raw trace."""
        per_fn = workload.counts.sum(axis=1)
        assert per_fn[0] == per_fn.max()
        assert per_fn[0] > per_fn[-1] * 2


class TestArchitectureAssignment:
    def test_unique_model_instances_per_function(self, workload):
        ids = [inst.instance_id for inst in workload.instances.values()]
        assert len(set(ids)) == 15

    def test_sizes_distributed_evenly(self):
        """Any contiguous popularity window must mix small and large models."""
        fids = [f"fn{i:05d}" for i in range(35)]
        arch = assign_architectures(fids)
        sizes = {name: size for name, size, *_ in TABLE1_ROWS}
        head = [sizes[arch[f]] for f in fids[:10]]
        # the head of the working set must span a wide size range
        assert max(head) - min(head) > 1500

    def test_working_set_beyond_22_reuses_architectures(self):
        fids = [f"fn{i:05d}" for i in range(35)]
        arch = assign_architectures(fids)
        assert len(set(arch.values())) == 22  # all architectures used
        assert len(arch) == 35

    def test_stride_covers_all_architectures_in_first_22(self):
        fids = [f"fn{i:05d}" for i in range(22)]
        arch = assign_architectures(fids)
        assert len(set(arch.values())) == 22


class TestRequestStream:
    def test_arrivals_sorted_and_within_window(self, workload):
        times = [r.arrival_time for r in workload.requests]
        assert times == sorted(times)
        assert 0.0 <= times[0] and times[-1] < 6 * 60.0

    def test_per_minute_request_counts_match_matrix(self, workload):
        for m in range(6):
            in_minute = [
                r for r in workload.requests if 60 * m <= r.arrival_time < 60 * (m + 1)
            ]
            assert len(in_minute) == 325

    def test_requests_reference_shared_instances(self, workload):
        """All requests of a function share one ModelInstance (one cache item)."""
        by_fn = {}
        for r in workload.requests:
            by_fn.setdefault(r.function_name, set()).add(id(r.model))
        assert all(len(s) == 1 for s in by_fn.values())

    def test_batch_size_paper_default(self, workload):
        assert all(r.batch_size == 32 for r in workload.requests)

    def test_deterministic_in_seed(self, small_trace):
        a = build_workload(WorkloadSpec(working_set=5, minutes=2, seed=9), trace=small_trace)
        b = build_workload(WorkloadSpec(working_set=5, minutes=2, seed=9), trace=small_trace)
        assert [r.function_name for r in a.requests] == [r.function_name for r in b.requests]
        assert [r.arrival_time for r in a.requests] == [r.arrival_time for r in b.requests]

    def test_different_seeds_differ(self, small_trace):
        a = build_workload(WorkloadSpec(working_set=5, minutes=2, seed=1), trace=small_trace)
        b = build_workload(WorkloadSpec(working_set=5, minutes=2, seed=2), trace=small_trace)
        assert [r.arrival_time for r in a.requests] != [r.arrival_time for r in b.requests]

    def test_top_function_properties(self, workload):
        assert workload.top_function == workload.function_ids[0]
        assert workload.top_model_id == workload.instances[workload.top_function].instance_id

    def test_duration(self, workload):
        assert workload.duration_s == 360.0


class TestSpecValidation:
    def test_invalid_working_set(self):
        with pytest.raises(ValueError):
            WorkloadSpec(working_set=0)

    def test_invalid_minutes(self):
        with pytest.raises(ValueError):
            WorkloadSpec(minutes=0)


def test_normalize_empty_minute():
    """A zero-count raw minute still yields exactly the target requests."""
    from repro.traces.workload import _normalize_minute

    out = _normalize_minute(np.zeros(7, dtype=np.int64), 10)
    assert out.sum() == 10
    assert out.max() - out.min() <= 1  # spread uniformly
