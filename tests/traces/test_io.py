"""Unit tests for Azure-trace CSV I/O and the FileTrace adapter."""

import numpy as np
import pytest

from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload
from repro.traces.io import (
    FileTrace,
    TraceFrame,
    export_synthetic_day,
    read_invocations_csv,
    write_invocations_csv,
)


@pytest.fixture(scope="module")
def small_trace():
    return SyntheticAzureTrace(
        AzureTraceConfig(num_functions=200, mean_rate_per_minute=1000, seed=2)
    )


def make_frame(n=5, seed=0):
    rng = np.random.default_rng(seed)
    return TraceFrame(
        function_ids=[f"fn{i:05d}" for i in range(n)],
        counts=rng.integers(0, 50, size=(n, 1440)),
    )


class TestTraceFrame:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceFrame(function_ids=["a"], counts=np.zeros((2, 1440)))
        with pytest.raises(ValueError):
            TraceFrame(function_ids=["a"], counts=np.zeros((1, 100)))
        with pytest.raises(ValueError):
            TraceFrame(function_ids=["a"], counts=-np.ones((1, 1440)))

    def test_default_triggers(self):
        frame = make_frame(3)
        assert frame.triggers == ["http"] * 3

    def test_total_invocations(self):
        frame = TraceFrame(function_ids=["a"], counts=np.ones((1, 1440)))
        assert frame.total_invocations == 1440


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        frame = make_frame(8, seed=3)
        path = tmp_path / "d01.csv"
        write_invocations_csv(path, frame)
        back = read_invocations_csv(path)
        np.testing.assert_array_equal(back.counts, frame.counts)
        assert len(back.function_ids) == 8
        assert back.triggers == frame.triggers

    def test_header_format_matches_azure(self, tmp_path):
        path = tmp_path / "d01.csv"
        write_invocations_csv(path, make_frame(2))
        header = path.read_text().splitlines()[0].split(",")
        assert header[:4] == ["HashOwner", "HashApp", "HashFunction", "Trigger"]
        assert header[4] == "1" and header[-1] == "1440"

    def test_hashes_are_stable_and_anonymous(self, tmp_path):
        path = tmp_path / "d01.csv"
        write_invocations_csv(path, make_frame(2))
        rows = path.read_text().splitlines()[1:]
        fn_hash = rows[0].split(",")[2]
        assert len(fn_hash) == 32
        assert "fn00000" not in rows[0].split(",")[2]

    def test_read_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="not an Azure"):
            read_invocations_csv(path)

    def test_read_rejects_ragged_rows(self, tmp_path):
        frame = make_frame(1)
        path = tmp_path / "d01.csv"
        write_invocations_csv(path, frame)
        with path.open("a") as fh:
            fh.write("x,y,z,http,1,2\n")
        with pytest.raises(ValueError, match="ragged"):
            read_invocations_csv(path)

    def test_read_rejects_empty(self, tmp_path):
        path = tmp_path / "d01.csv"
        write_invocations_csv(path, make_frame(1))
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")
        with pytest.raises(ValueError, match="no function rows"):
            read_invocations_csv(path)


class TestExportSynthetic:
    def test_export_day_shapes(self, tmp_path, small_trace):
        frame = export_synthetic_day(small_trace, tmp_path / "d01.csv", top_k=20)
        assert frame.counts.shape == (20, 1440)
        assert (tmp_path / "d01.csv").exists()

    def test_export_invalid_day(self, tmp_path, small_trace):
        with pytest.raises(ValueError):
            export_synthetic_day(small_trace, tmp_path / "x.csv", day=99)


class TestFileTrace:
    def test_popularity_ordering(self):
        counts = np.zeros((3, 1440), dtype=np.int64)
        counts[0, :] = 1   # 1440 total
        counts[1, :] = 5   # 7200 total (hottest)
        counts[2, :10] = 2  # 20 total
        ft = FileTrace([TraceFrame(function_ids=["a", "b", "c"], counts=counts)])
        assert ft.top_functions(3) == ["b", "a", "c"]

    def test_counts_slice(self):
        counts = np.arange(2 * 1440).reshape(2, 1440)
        ft = FileTrace([TraceFrame(function_ids=["a", "b"], counts=counts)])
        got = ft.counts(["b"], range(3))
        np.testing.assert_array_equal(got, counts[1:2, :3])

    def test_multi_day_concatenation(self):
        f1 = make_frame(3, seed=1)
        f2 = make_frame(3, seed=2)
        ft = FileTrace([f1, f2])
        assert ft.total_minutes == 2880
        np.testing.assert_array_equal(
            ft.counts(ft.function_ids, range(1440, 2880))[0],
            f2.counts[0],
        )

    def test_mismatched_days_rejected(self):
        f1 = make_frame(3)
        f2 = make_frame(4)
        with pytest.raises(ValueError):
            FileTrace([f1, f2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FileTrace([])

    def test_out_of_range_minutes(self):
        ft = FileTrace([make_frame(2)])
        with pytest.raises(ValueError):
            ft.counts(["fn00000"], range(1440, 1500))

    def test_load_from_files(self, tmp_path, small_trace):
        p1 = tmp_path / "d01.csv"
        export_synthetic_day(small_trace, p1, top_k=30, day=0)
        ft = FileTrace.load([p1])
        assert len(ft.top_functions(10)) == 10

    def test_drop_in_for_build_workload(self, tmp_path, small_trace):
        """The §V-A.1 pipeline runs unchanged on a file-backed trace."""
        export_synthetic_day(small_trace, tmp_path / "d01.csv", top_k=30)
        ft = FileTrace.load([tmp_path / "d01.csv"])
        wl = build_workload(
            WorkloadSpec(working_set=8, minutes=3, requests_per_minute=40), trace=ft
        )
        assert len(wl.requests) == 120
        assert wl.counts.sum(axis=0).tolist() == [40, 40, 40]
