"""Robustness integration tests: seeds, failures at scale, datastore lag."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import ExperimentConfig, run_experiment
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload


class TestSeedRobustness:
    """The paper's qualitative ordering must not depend on the RNG seed."""

    @pytest.fixture(scope="class")
    def per_seed(self):
        trace = SyntheticAzureTrace()
        out = {}
        for seed in (1, 2, 3):
            out[seed] = {
                policy: run_experiment(
                    ExperimentConfig(policy=policy, working_set=25, seed=seed),
                    trace=trace,
                )
                for policy in ("lb", "lalb")
            }
        return out

    def test_lalb_beats_lb_for_every_seed(self, per_seed):
        for seed, res in per_seed.items():
            assert res["lalb"].avg_latency_s < res["lb"].avg_latency_s / 10, seed
            assert res["lalb"].cache_miss_ratio < res["lb"].cache_miss_ratio, seed

    def test_seeds_produce_different_workloads(self, per_seed):
        latencies = {res["lalb"].avg_latency_s for res in per_seed.values()}
        assert len(latencies) == 3  # genuinely different runs

    def test_metric_spread_is_moderate(self, per_seed):
        """Seed-to-seed variation should not change orders of magnitude."""
        vals = [res["lalb"].avg_latency_s for res in per_seed.values()]
        assert max(vals) / min(vals) < 3.0


class TestFailuresAtScale:
    def test_paper_workload_survives_gpu_failures(self):
        """Fail a quarter of the testbed mid-run; every request completes."""
        trace = SyntheticAzureTrace(
            AzureTraceConfig(num_functions=500, mean_rate_per_minute=3000, seed=6)
        )
        wl = build_workload(WorkloadSpec(working_set=15, minutes=4), trace=trace)
        system = FaaSCluster(SystemConfig(policy="lalbo3"))
        for r in wl.requests:
            system.submit_at(r)
        victims = [g.gpu_id for g in system.cluster.gpus[:3]]
        for i, gpu_id in enumerate(victims):
            system.sim.schedule_at(60.0 + 10.0 * i, system.fail_gpu, gpu_id)
            system.sim.schedule_at(150.0 + 10.0 * i, system.recover_gpu, gpu_id)
        system.run()
        assert len(system.completed) == len(wl.requests)
        retried = [r for r in wl.requests if r.retries > 0]
        assert retried, "failures should have interrupted some requests"
        assert all(r.completed_at is not None for r in wl.requests)
        # memory accounting still sane everywhere
        for gpu in system.cluster.gpus:
            assert 0.0 <= gpu.used_mb <= gpu.memory_mb

    def test_permanent_failure_degrades_but_completes(self):
        trace = SyntheticAzureTrace(
            AzureTraceConfig(num_functions=500, mean_rate_per_minute=3000, seed=6)
        )
        wl = build_workload(
            WorkloadSpec(working_set=10, minutes=2, requests_per_minute=100), trace=trace
        )
        healthy = FaaSCluster(SystemConfig(policy="lalbo3"))
        degraded = FaaSCluster(SystemConfig(policy="lalbo3"))
        for system in (healthy, degraded):
            wl_run = build_workload(
                WorkloadSpec(working_set=10, minutes=2, requests_per_minute=100),
                trace=trace,
            )
            for r in wl_run.requests:
                system.submit_at(r)
        for gpu in list(degraded.cluster.gpus[:6]):
            degraded.fail_gpu(gpu.gpu_id)  # half the cluster gone for good
        healthy.run()
        degraded.run()
        assert len(degraded.completed) == 200
        h = sum(r.latency for r in healthy.completed) / 200
        d = sum(r.latency for r in degraded.completed) / 200
        assert d >= h  # fewer GPUs can never be faster


class TestDatastoreLag:
    def test_delayed_watches_still_converge(self):
        """With a non-zero watch delay, mirrored state arrives late but the
        system's behaviour (driven by authoritative in-memory state, as the
        components are co-located) is unchanged and mirrors converge."""
        trace = SyntheticAzureTrace(
            AzureTraceConfig(num_functions=300, mean_rate_per_minute=2000, seed=9)
        )

        def run(delay):
            wl = build_workload(
                WorkloadSpec(working_set=6, minutes=2, requests_per_minute=60),
                trace=trace,
            )
            system = FaaSCluster(
                SystemConfig(
                    cluster=ClusterSpec.homogeneous(1, 4),
                    policy="lalbo3",
                    watch_delay_s=delay,
                )
            )
            seen = []
            system.datastore.watches.watch(
                "gpu/status/", lambda ev: seen.append(ev), prefix=True
            )
            for r in wl.requests:
                system.submit_at(r)
            system.run()
            return system, seen

        sys0, seen0 = run(0.0)
        sys1, seen1 = run(0.5)
        assert len(sys0.completed) == len(sys1.completed) == 120
        assert len(seen1) == len(seen0)  # every event eventually delivered
        # final mirrored statuses agree with device state
        for system in (sys0, sys1):
            for gpu in system.cluster.gpus:
                assert system.datastore.client().get(f"gpu/status/{gpu.gpu_id}") == "idle"
