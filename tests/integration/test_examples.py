"""Every example script must run clean end-to-end (they self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script.stem} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script.stem} produced no output"
