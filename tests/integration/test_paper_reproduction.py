"""Full-scale integration tests: the paper's qualitative claims must hold.

These run the complete evaluation pipeline (synthetic Azure trace → 12-GPU
testbed → all three schedulers) at the paper's scale (325 requests/minute,
6 minutes).  They assert the *shape* of every headline result — who wins,
by roughly what factor, and how trends move with the working-set size —
not absolute numbers (our substrate replays Table I latencies in a
simulator, not on RTX 2080s).
"""

import pytest

from repro.experiments import (
    false_per_miss,
    run_fig4,
    run_fig7,
)
from repro.traces import SyntheticAzureTrace


@pytest.fixture(scope="module")
def trace():
    return SyntheticAzureTrace()


@pytest.fixture(scope="module")
def grid(trace):
    """The shared Figs. 4/5/6 sweep at full paper scale."""
    return run_fig4(trace=trace)


class TestFig4aLatency:
    def test_lalb_beats_lb_by_an_order_of_magnitude(self, grid):
        for ws in (15, 25, 35):
            lb = grid[("lb", ws)].avg_latency_s
            lalb = grid[("lalb", ws)].avg_latency_s
            assert lalb < lb / 10, f"ws={ws}"

    def test_lalb_reduction_band_ws15(self, grid):
        """Paper: 97.74% at WS 15; accept >90%."""
        lb = grid[("lb", 15)].avg_latency_s
        lalb = grid[("lalb", 15)].avg_latency_s
        assert (lb - lalb) / lb > 0.90

    def test_lalbo3_at_least_as_good_as_lalb(self, grid):
        for ws in (15, 25, 35):
            assert (
                grid[("lalbo3", ws)].avg_latency_s
                <= grid[("lalb", ws)].avg_latency_s + 1e-9
            )

    def test_o3_helps_at_large_working_set(self, grid):
        """Paper §V-B: O3 further improves WS 25/35 (not needed at 15)."""
        assert grid[("lalbo3", 35)].avg_latency_s < grid[("lalb", 35)].avg_latency_s

    def test_lalb_latency_grows_with_working_set(self, grid):
        """Paper: LALB performance degrades as the working set grows."""
        assert (
            grid[("lalb", 15)].avg_latency_s
            < grid[("lalb", 25)].avg_latency_s
            < grid[("lalb", 35)].avg_latency_s
        )


class TestFig4bMissRatio:
    def test_lalb_reduces_miss_ratio_strongly_at_ws15(self, grid):
        """Paper: 94.11% reduction at WS 15; accept >85%."""
        lb = grid[("lb", 15)].cache_miss_ratio
        lalb = grid[("lalb", 15)].cache_miss_ratio
        assert (lb - lalb) / lb > 0.85

    def test_reduction_degrades_with_working_set(self, grid):
        """Paper: 94.11% at WS 15 vs 65.21% at WS 35."""
        red = {
            ws: (grid[("lb", ws)].cache_miss_ratio - grid[("lalb", ws)].cache_miss_ratio)
            / grid[("lb", ws)].cache_miss_ratio
            for ws in (15, 35)
        }
        assert red[15] > red[35]

    def test_lalbo3_beats_lalb_at_ws35(self, grid):
        """Paper: LALBO3 reduces LB's miss ratio by 81% vs LALB's 65% at WS 35."""
        assert grid[("lalbo3", 35)].cache_miss_ratio < grid[("lalb", 35)].cache_miss_ratio

    def test_miss_ratio_grows_with_working_set_for_lalb(self, grid):
        assert (
            grid[("lalb", 15)].cache_miss_ratio
            < grid[("lalb", 25)].cache_miss_ratio
            < grid[("lalb", 35)].cache_miss_ratio
        )


class TestFig4cUtilization:
    def test_locality_schedulers_have_highest_sm_utilization(self, grid):
        for ws in (15, 25, 35):
            assert grid[("lalbo3", ws)].sm_utilization > grid[("lb", ws)].sm_utilization

    def test_sm_utilization_anticorrelates_with_miss_ratio(self, grid):
        """§V-C: SM utilization negatively correlates with the miss ratio."""
        import numpy as np

        points = [(s.cache_miss_ratio, s.sm_utilization) for s in grid.values()]
        miss, util = zip(*points)
        assert np.corrcoef(miss, util)[0, 1] < -0.5

    def test_utilization_stable_across_working_sets(self, grid):
        """§V-C: per-scheduler SM utilization is consistent across the three
        working sets (the request rate is pinned at 325/min)."""
        for policy in ("lb", "lalb", "lalbo3"):
            utils = [grid[(policy, ws)].sm_utilization for ws in (15, 25, 35)]
            assert max(utils) - min(utils) < 0.1

    def test_utilization_well_below_one(self, grid):
        """§V-C: reaching 100% SM utilization is impossible here."""
        assert all(s.sm_utilization < 0.95 for s in grid.values())


class TestFig5FalseMiss:
    def test_lb_has_the_worst_false_miss_ratio(self, grid):
        for ws in (15, 25, 35):
            lb = grid[("lb", ws)]
            for policy in ("lalb", "lalbo3"):
                assert grid[(policy, ws)].false_miss_ratio < lb.false_miss_ratio

    def test_lb_misses_are_mostly_false_at_ws15(self, grid):
        """Paper: LB's false-miss ratio approaches 96% — most of its misses
        re-load a model that sits on another GPU."""
        assert false_per_miss(grid[("lb", 15)]) > 0.6

    def test_lalbo3_no_worse_than_lalb(self, grid):
        for ws in (15, 25, 35):
            assert (
                grid[("lalbo3", ws)].false_miss_ratio
                <= grid[("lalb", ws)].false_miss_ratio + 1e-9
            )


class TestFig6Duplicates:
    def test_bounded_by_gpu_count(self, grid):
        assert all(s.avg_duplicates_top_model <= 12.0 for s in grid.values())

    def test_lalb_halves_lb_duplicates_at_ws15(self, grid):
        """Paper: 48.96% reduction at WS 15; accept >30%."""
        lb = grid[("lb", 15)].avg_duplicates_top_model
        lalb = grid[("lalb", 15)].avg_duplicates_top_model
        assert (lb - lalb) / lb > 0.30

    def test_lb_always_has_most_duplicates(self, grid):
        for ws in (15, 25, 35):
            lb = grid[("lb", ws)].avg_duplicates_top_model
            assert grid[("lalb", ws)].avg_duplicates_top_model < lb
            assert grid[("lalbo3", ws)].avg_duplicates_top_model < lb


class TestFig7O3Sensitivity:
    @pytest.fixture(scope="class")
    def sweep(self, trace):
        return run_fig7(limits=(0, 15, 45), trace=trace)

    def test_limit45_beats_limit0_on_all_metrics(self, sweep):
        """Paper: limit 45 cuts latency 85%, miss ratio 46%, variance 96%
        vs limit 0; we assert the direction of each."""
        assert sweep[45].avg_latency_s < sweep[0].avg_latency_s
        assert sweep[45].cache_miss_ratio < sweep[0].cache_miss_ratio
        assert sweep[45].latency_variance < sweep[0].latency_variance

    def test_limit0_equals_lalb(self, sweep, grid):
        """§V-E: with the limit set to zero, LALBO3 reduces to LALB."""
        assert sweep[0].avg_latency_s == pytest.approx(
            grid[("lalb", 35)].avg_latency_s
        )
        assert sweep[0].cache_miss_ratio == pytest.approx(
            grid[("lalb", 35)].cache_miss_ratio
        )


class TestHeadline:
    def test_order_of_magnitude_speedup(self, grid):
        """Abstract: 'a speedup of 48x compared to the default ... scheduler'
        — we assert >10x at every working set."""
        for ws in (15, 25, 35):
            speedup = grid[("lb", ws)].avg_latency_s / grid[("lalbo3", ws)].avg_latency_s
            assert speedup > 10, f"ws={ws}: {speedup:.1f}x"

    def test_every_request_completes(self, grid):
        assert all(s.completed_requests == 1950 for s in grid.values())
