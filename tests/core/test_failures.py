"""Failure-injection tests: GPUs dying mid-load, mid-inference, and at rest.

The paper's evaluation assumes healthy GPUs; a production runtime cannot.
These tests fail GPUs at every interesting moment and assert the system's
recovery contract: no request is ever lost, cache state never references a
dead GPU, and recovered GPUs come back empty and schedulable.
"""

import pytest

from repro.cluster import ClusterSpec, GPUState
from repro.core import TenantQuota
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig


@pytest.fixture
def system():
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalb"))


def submit(system, req):
    system.submit(req)
    return req


class TestFailureDuringExecution:
    def test_fail_during_load_retries_elsewhere(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        assert r.gpu_id == gpu0.gpu_id
        system.run(until=1.0)  # mid-upload (load takes 2.67 s)
        assert gpu0.state is GPUState.LOADING
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id  # retried on the survivor
        assert r.retries == 1

    def test_fail_during_inference_retries(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=3.0)  # load done at 2.67, inferring until 3.95
        assert gpu0.state is GPUState.INFERRING
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id

    def test_failed_gpu_loses_cached_models(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run()
        gpu_id = r.gpu_id
        system.fail_gpu(gpu_id)
        assert not system.cache.cached_anywhere(r.model_id)
        assert system.cluster.gpu(gpu_id).resident_models() == []
        assert system.cluster.gpu(gpu_id).used_mb == 0.0

    def test_offline_gpu_not_schedulable(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        system.fail_gpu(gpu0.gpu_id)
        r = submit(system, make_request("fn-a", "alexnet"))
        system.run()
        assert r.gpu_id == gpu1.gpu_id

    def test_all_gpus_failed_requests_wait(self, system, make_request):
        for gpu in list(system.cluster.gpus):
            system.fail_gpu(gpu.gpu_id)
        r = submit(system, make_request())
        system.run()
        assert r.completed_at is None
        assert len(system.scheduler.global_queue) == 1

    def test_datastore_status_offline(self, system, make_request):
        gpu0 = system.cluster.gpus[0]
        system.fail_gpu(gpu0.gpu_id)
        assert system.datastore.client().get(f"gpu/status/{gpu0.gpu_id}") == "offline"


class TestRecovery:
    def test_recovered_gpu_serves_again(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        system.fail_gpu(gpu0.gpu_id)
        system.fail_gpu(gpu1.gpu_id)
        r = submit(system, make_request())
        system.run()
        assert r.completed_at is None
        system.recover_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu0.gpu_id

    def test_recovered_gpu_is_empty(self, system, make_request):
        gpu0 = system.cluster.gpus[0]
        r = submit(system, make_request())
        system.run()
        system.fail_gpu(r.gpu_id)
        system.recover_gpu(r.gpu_id)
        assert system.cluster.gpu(r.gpu_id).is_idle
        assert system.cluster.gpu(r.gpu_id).resident_models() == []

    def test_recover_online_gpu_rejected(self, system):
        with pytest.raises(RuntimeError):
            system.recover_gpu(system.cluster.gpus[0].gpu_id)


class TestLocalQueueFailure:
    def test_local_queue_requests_requeued_in_arrival_order(self, system, make_request):
        """Requests bound to a failed GPU's local queue go back to the
        global queue at their arrival position."""
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-hot", get_profile("resnet50"))
        warmup = make_request("fn-hot-warm", "resnet50")
        warmup.model = inst
        gpu1.begin_inference()  # park gpu1 → warmup loads the model on gpu0
        submit(system, warmup)
        system.run()
        gpu1.become_idle()
        # a hit keeps gpu0 busy inferring (1.28 s < 2.67 s load) ...
        r0 = make_request("fn-hot0", "resnet50", arrival=system.sim.now)
        r0.model = inst
        gpu1.begin_inference()
        submit(system, r0)
        gpu1.become_idle()
        # ... so the next same-model request is bound to gpu0's local queue
        r1 = make_request("fn-hot1", "resnet50", arrival=system.sim.now)
        r1.model = inst
        submit(system, r1)
        assert system.scheduler.local_queues.length(gpu0.gpu_id) == 1
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        # both the in-flight r0 and the local-queued r1 completed on gpu1
        assert r0.completed_at is not None and r0.gpu_id == gpu1.gpu_id
        assert r1.completed_at is not None and r1.gpu_id == gpu1.gpu_id
        assert r0.exec_start_at < r1.exec_start_at  # arrival order preserved


class TestTenancyCleanup:
    def test_reservation_released_on_abort(self, make_request):
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(1, 2),
                policy="lalb",
                quotas={"t": TenantQuota(max_processes=1)},
            )
        )
        inst = ModelInstance("fn-t", get_profile("resnet50"), tenant="t")
        system.register_model(inst)
        r = make_request("fn-t", "resnet50", tenant="t")
        r.model = inst
        system.submit(r)
        system.run(until=1.0)  # mid-load: reservation held
        assert system.tenancy.usage("t")["processes"] == 1
        system.fail_gpu(r.gpu_id)
        # the aborted load's reservation is gone, then the retry re-reserves
        system.run()
        assert r.completed_at is not None
        assert system.tenancy.usage("t")["processes"] == 1  # one real process


class TestQueueResorting:
    def test_push_sorted_restores_arrival_order(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        a = make_request("a", arrival=1.0)
        b = make_request("b", arrival=2.0)
        c = make_request("c", arrival=3.0)
        q.push(a)
        q.push(c)
        q.push_sorted(b)
        assert [r.function_name for r in q] == ["a", "b", "c"]

    def test_push_sorted_to_empty_and_tail(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        b = make_request("b", arrival=5.0)
        q.push_sorted(b)
        late = make_request("z", arrival=9.0)
        q.push_sorted(late)
        assert [r.function_name for r in q] == ["b", "z"]

    def test_push_sorted_duplicate_rejected(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        r = make_request()
        q.push(r)
        with pytest.raises(ValueError):
            q.push_sorted(r)

    def test_reset_for_retry_clears_execution_state(self, make_request):
        r = make_request()
        r.gpu_id = "g"
        r.dispatched_at = 1.0
        r.cache_hit = False
        r.false_miss = True
        r.reset_for_retry()
        assert r.gpu_id is None and r.dispatched_at is None
        assert r.cache_hit is None and r.false_miss is False
        assert r.retries == 1

    def test_reset_completed_request_rejected(self, make_request):
        r = make_request()
        r.completed_at = 5.0
        from repro.core.request import RequestState

        r.state = RequestState.COMPLETED
        with pytest.raises(RuntimeError):
            r.reset_for_retry()
