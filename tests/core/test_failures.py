"""Failure-injection tests: GPUs dying mid-load, mid-inference, and at rest.

The paper's evaluation assumes healthy GPUs; a production runtime cannot.
These tests fail GPUs at every interesting moment and assert the system's
recovery contract: no request is ever lost, cache state never references a
dead GPU, and recovered GPUs come back empty and schedulable.
"""

import pytest

from repro.cluster import ClusterSpec, GPUState
from repro.core import TenantQuota
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig


@pytest.fixture
def system():
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalb"))


def submit(system, req):
    system.submit(req)
    return req


class TestFailureDuringExecution:
    def test_fail_during_load_retries_elsewhere(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        assert r.gpu_id == gpu0.gpu_id
        system.run(until=1.0)  # mid-upload (load takes 2.67 s)
        assert gpu0.state is GPUState.LOADING
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id  # retried on the survivor
        assert r.retries == 1

    def test_fail_during_inference_retries(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=3.0)  # load done at 2.67, inferring until 3.95
        assert gpu0.state is GPUState.INFERRING
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id

    def test_failed_gpu_loses_cached_models(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run()
        gpu_id = r.gpu_id
        system.fail_gpu(gpu_id)
        assert not system.cache.cached_anywhere(r.model_id)
        assert system.cluster.gpu(gpu_id).resident_models() == []
        assert system.cluster.gpu(gpu_id).used_mb == 0.0

    def test_offline_gpu_not_schedulable(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        system.fail_gpu(gpu0.gpu_id)
        r = submit(system, make_request("fn-a", "alexnet"))
        system.run()
        assert r.gpu_id == gpu1.gpu_id

    def test_all_gpus_failed_requests_wait(self, system, make_request):
        for gpu in list(system.cluster.gpus):
            system.fail_gpu(gpu.gpu_id)
        r = submit(system, make_request())
        system.run()
        assert r.completed_at is None
        assert len(system.scheduler.global_queue) == 1

    def test_datastore_status_offline(self, system, make_request):
        gpu0 = system.cluster.gpus[0]
        system.fail_gpu(gpu0.gpu_id)
        assert system.datastore.client().get(f"gpu/status/{gpu0.gpu_id}") == "offline"


class TestRecovery:
    def test_recovered_gpu_serves_again(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        system.fail_gpu(gpu0.gpu_id)
        system.fail_gpu(gpu1.gpu_id)
        r = submit(system, make_request())
        system.run()
        assert r.completed_at is None
        system.recover_gpu(gpu0.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu0.gpu_id

    def test_recovered_gpu_is_empty(self, system, make_request):
        gpu0 = system.cluster.gpus[0]
        r = submit(system, make_request())
        system.run()
        system.fail_gpu(r.gpu_id)
        system.recover_gpu(r.gpu_id)
        assert system.cluster.gpu(r.gpu_id).is_idle
        assert system.cluster.gpu(r.gpu_id).resident_models() == []

    def test_recover_online_gpu_rejected(self, system):
        with pytest.raises(RuntimeError):
            system.recover_gpu(system.cluster.gpus[0].gpu_id)


class TestLocalQueueFailure:
    def test_local_queue_requests_requeued_in_arrival_order(self, system, make_request):
        """Requests bound to a failed GPU's local queue go back to the
        global queue at their arrival position."""
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-hot", get_profile("resnet50"))
        warmup = make_request("fn-hot-warm", "resnet50")
        warmup.model = inst
        gpu1.begin_inference()  # park gpu1 → warmup loads the model on gpu0
        submit(system, warmup)
        system.run()
        gpu1.become_idle()
        # a hit keeps gpu0 busy inferring (1.28 s < 2.67 s load) ...
        r0 = make_request("fn-hot0", "resnet50", arrival=system.sim.now)
        r0.model = inst
        gpu1.begin_inference()
        submit(system, r0)
        gpu1.become_idle()
        # ... so the next same-model request is bound to gpu0's local queue
        r1 = make_request("fn-hot1", "resnet50", arrival=system.sim.now)
        r1.model = inst
        submit(system, r1)
        assert system.scheduler.local_queues.length(gpu0.gpu_id) == 1
        system.fail_gpu(gpu0.gpu_id)
        system.run()
        # both the in-flight r0 and the local-queued r1 completed on gpu1
        assert r0.completed_at is not None and r0.gpu_id == gpu1.gpu_id
        assert r1.completed_at is not None and r1.gpu_id == gpu1.gpu_id
        assert r0.exec_start_at < r1.exec_start_at  # arrival order preserved


class TestKillAudit:
    """Audit of the ``GPU.kill(force=True)`` / ``go_offline`` paths: the
    event slab must free the killed process's pending completion events,
    and the cluster's incremental idle accounting must stay consistent
    through crash → recover at every GPU state."""

    def test_fail_mid_load_leaks_no_events(self, make_request):
        # single GPU: the killed load's completion event must be cancelled
        # (freeing its slab slot); after recovery the request completes and
        # the simulator drains to zero live events
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(1, 1), policy="lalb")
        )
        gpu = system.cluster.gpus[0]
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=1.0)
        assert gpu.state is GPUState.LOADING
        system.fail_gpu(gpu.gpu_id)
        system.run()
        assert r.completed_at is None  # nowhere to run yet
        system.recover_gpu(gpu.gpu_id)
        system.run()
        assert r.completed_at is not None and r.retries == 1
        assert len(system.sim) == 0  # no cancelled-but-leaked slab slots

    def test_fail_mid_inference_leaks_no_events(self, make_request):
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(1, 1), policy="lalb")
        )
        gpu = system.cluster.gpus[0]
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=3.0)  # load done at 2.67, inferring until 3.95
        assert gpu.state is GPUState.INFERRING
        system.fail_gpu(gpu.gpu_id)
        system.recover_gpu(gpu.gpu_id)
        system.run()
        assert r.completed_at is not None
        assert len(system.sim) == 0

    def test_idle_count_through_crash_of_idle_gpu(self, system, make_request):
        assert system.cluster.idle_count == 2
        gpu0 = system.cluster.gpus[0]
        system.fail_gpu(gpu0.gpu_id)
        assert system.cluster.idle_count == 1
        assert gpu0 not in system.cluster.idle_gpus()
        assert gpu0 not in system.cluster.idle_gpus_by_frequency()
        system.recover_gpu(gpu0.gpu_id)
        assert system.cluster.idle_count == 2
        assert gpu0 in system.cluster.idle_gpus()

    def test_idle_count_through_crash_mid_dispatch(self, system, make_request):
        """Crash while the GPU is busy (mid-load): it never passes through
        idle on the way offline, and recovery files it back exactly once."""
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=1.0)
        assert gpu0.state is GPUState.LOADING
        assert system.cluster.idle_count == 1  # gpu1 only
        system.fail_gpu(gpu0.gpu_id)
        # busy → offline doesn't touch the counter, and the retried request
        # immediately dispatched onto the survivor — so nothing is idle now
        assert system.cluster.idle_count == 0
        assert gpu1.state is GPUState.LOADING
        system.recover_gpu(gpu0.gpu_id)
        assert system.cluster.idle_count == 1  # the recovered GPU, filed once
        system.run()
        assert r.completed_at is not None and r.gpu_id == gpu1.gpu_id
        # both GPUs idle again; the view and the counter agree
        assert system.cluster.idle_count == len(system.cluster.idle_gpus()) == 2


class TestGracefulDrain:
    def test_drain_idle_gpu_retires_immediately(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run()
        assert r.gpu_id == gpu0.gpu_id
        system.drain_gpu(gpu0.gpu_id)
        assert not gpu0.is_online
        assert not system.cache.cached_anywhere(r.model_id)
        assert gpu0.resident_models() == []
        assert system.datastore.client().get(f"gpu/status/{gpu0.gpu_id}") == "offline"

    def test_drain_busy_gpu_finishes_running_work(self, system, make_request):
        """The drain contract vs. fail_gpu: in-flight work is NOT aborted —
        it finishes on the draining GPU, which only then goes offline."""
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=1.0)
        assert gpu0.state is GPUState.LOADING
        system.drain_gpu(gpu0.gpu_id)
        assert gpu0.is_online  # still finishing
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu0.gpu_id  # completed where it started
        assert r.retries == 0           # never aborted, never resubmitted
        assert not gpu0.is_online       # then retired
        assert not system.cache.cached_anywhere(r.model_id)

    def test_drain_reschedules_local_queue(self, system, make_request):
        """Queued (not yet running) work on the draining GPU reschedules
        onto survivors instead of dying with it."""
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-hot", get_profile("resnet50"))
        warmup = make_request("fn-hot-warm", "resnet50")
        warmup.model = inst
        gpu1.begin_inference()  # park gpu1 → warmup loads on gpu0
        submit(system, warmup)
        system.run()
        gpu1.become_idle()
        r0 = make_request("fn-hot0", "resnet50", arrival=system.sim.now)
        r0.model = inst
        gpu1.begin_inference()
        submit(system, r0)  # hit keeps gpu0 busy
        gpu1.become_idle()
        r1 = make_request("fn-hot1", "resnet50", arrival=system.sim.now)
        r1.model = inst
        submit(system, r1)  # same model → bound to gpu0's local queue
        assert system.scheduler.local_queues.length(gpu0.gpu_id) == 1
        system.drain_gpu(gpu0.gpu_id)
        system.run()
        assert r0.completed_at is not None and r0.gpu_id == gpu0.gpu_id
        assert r1.completed_at is not None and r1.gpu_id == gpu1.gpu_id
        assert not gpu0.is_online
        assert len(system.sim) == 0

    def test_drained_gpu_recovers(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        system.drain_gpu(gpu0.gpu_id)
        assert not gpu0.is_online
        system.recover_gpu(gpu0.gpu_id)
        assert gpu0.is_online and gpu0.is_idle
        r = submit(system, make_request("fn-a", "alexnet"))
        gpu1.begin_inference()  # force the recovered GPU to take it
        system.run()
        gpu1.become_idle()
        assert r.gpu_id == gpu0.gpu_id


class TestRetryBudget:
    def test_retry_budget_exhaustion_loses_request(self, make_request):
        """With max_retries=0 a single failure exhausts the budget: the
        request is recorded LOST, not resubmitted forever."""
        from repro.core.request import RequestState

        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(1, 1), policy="lalb", max_retries=0
            )
        )
        gpu = system.cluster.gpus[0]
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=1.0)
        system.fail_gpu(gpu.gpu_id)
        system.recover_gpu(gpu.gpu_id)
        system.run()
        assert r.completed_at is None
        assert r.state is RequestState.LOST
        assert system.scheduler.lost_count == 1
        assert system.metrics.lost_reasons == {"retries_exhausted": 1}
        assert len(system.sim) == 0

    def test_retry_backoff_delays_resubmit(self, make_request):
        """With a backoff configured, a failed request re-enters the queue
        only after the delay — and completes afterwards."""
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(1, 2),
                policy="lalb",
                retry_backoff_s=5.0,
            )
        )
        gpu0, gpu1 = system.cluster.gpus
        r = submit(system, make_request("fn-a", "resnet50"))
        system.run(until=1.0)
        fail_at = system.sim.now
        system.fail_gpu(gpu0.gpu_id)
        assert len(system.scheduler.global_queue) == 0  # parked in backoff
        system.run()
        assert r.completed_at is not None
        assert r.gpu_id == gpu1.gpu_id
        assert r.exec_start_at >= fail_at + 5.0


class TestTenancyCleanup:
    def test_reservation_released_on_abort(self, make_request):
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(1, 2),
                policy="lalb",
                quotas={"t": TenantQuota(max_processes=1)},
            )
        )
        inst = ModelInstance("fn-t", get_profile("resnet50"), tenant="t")
        system.register_model(inst)
        r = make_request("fn-t", "resnet50", tenant="t")
        r.model = inst
        system.submit(r)
        system.run(until=1.0)  # mid-load: reservation held
        assert system.tenancy.usage("t")["processes"] == 1
        system.fail_gpu(r.gpu_id)
        # the aborted load's reservation is gone, then the retry re-reserves
        system.run()
        assert r.completed_at is not None
        assert system.tenancy.usage("t")["processes"] == 1  # one real process


class TestQueueResorting:
    def test_push_sorted_restores_arrival_order(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        a = make_request("a", arrival=1.0)
        b = make_request("b", arrival=2.0)
        c = make_request("c", arrival=3.0)
        q.push(a)
        q.push(c)
        q.push_sorted(b)
        assert [r.function_name for r in q] == ["a", "b", "c"]

    def test_push_sorted_to_empty_and_tail(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        b = make_request("b", arrival=5.0)
        q.push_sorted(b)
        late = make_request("z", arrival=9.0)
        q.push_sorted(late)
        assert [r.function_name for r in q] == ["b", "z"]

    def test_push_sorted_duplicate_rejected(self, make_request):
        from repro.core.queues import GlobalQueue

        q = GlobalQueue()
        r = make_request()
        q.push(r)
        with pytest.raises(ValueError):
            q.push_sorted(r)

    def test_reset_for_retry_clears_execution_state(self, make_request):
        r = make_request()
        r.gpu_id = "g"
        r.dispatched_at = 1.0
        r.cache_hit = False
        r.false_miss = True
        r.reset_for_retry()
        assert r.gpu_id is None and r.dispatched_at is None
        assert r.cache_hit is None and r.false_miss is False
        assert r.retries == 1

    def test_reset_completed_request_rejected(self, make_request):
        r = make_request()
        r.completed_at = 5.0
        from repro.core.request import RequestState

        r.state = RequestState.COMPLETED
        with pytest.raises(RuntimeError):
            r.reset_for_retry()
