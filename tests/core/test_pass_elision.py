"""Event-driven pass elision: guard soundness, counters, and parity.

The elision engine (``SystemConfig(pass_elision=True)``, the default) may
only skip scheduling passes that are provably no-ops, so replaying any
workload with elision on and off must produce byte-identical
:class:`DecisionLog` sequences **and** identical final Datastore state.
This module asserts exactly that, property-test style, across seeds ×
policies × GPU-failure injection, and pins down the engine's elided/
executed pass accounting.
"""

import random

import pytest

from repro.cluster import ClusterSpec
from repro.core.policies import make_scheduling_policy
from repro.core.signals import DispatchableWorkGuard, PassGuard
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import FaaSCluster, SystemConfig

POLICIES = ["lb", "lalb", "lalbo3", "locality"]
SEEDS = [11, 12, 13]
N_FUNCTIONS = 24


def _workload(seed: int, n_requests: int):
    rng = random.Random(seed)
    spec = []
    t = 0.0
    for _ in range(n_requests):
        t += rng.expovariate(2.0) if rng.random() < 0.05 else rng.expovariate(1 / 0.035)
        spec.append((min(int(rng.paretovariate(0.9)) - 1, N_FUNCTIONS - 1), t))
    return spec


def _architecture(fn_idx: int) -> str:
    names = model_names()
    return names[fn_idx % len(names)]


def _run(policy: str, elide: bool, spec, *, fail_gpu_at: float | None = None):
    """Replay ``spec``; return (system, decision log, normalized KV state)."""
    from repro.core.request import InferenceRequest

    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 3),
            policy=policy,
            pass_elision=elide,
        )
    )
    instances = [
        ModelInstance(f"m{i}", get_profile(_architecture(i))) for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    if fail_gpu_at is not None:
        gpu_id = system.cluster.gpus[1].gpu_id
        system.sim.schedule_at(fail_gpu_at, system.fail_gpu, gpu_id)
        system.sim.schedule_at(fail_gpu_at + 5.0, system.recover_gpu, gpu_id)
    system.run()
    assert len(system.completed) == len(spec)
    decisions = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    # request ids come from a process-global counter: normalize the
    # fn/latency/<request_id> keys onto submission indices for comparison
    state = {}
    for kv in system.datastore.kv.items():
        key = kv.key
        if key.startswith("fn/latency/"):
            key = f"fn/latency/#{id_to_index[int(key.rsplit('/', 1)[1])]}"
        state[key] = kv.value
    return system, decisions, state


class TestElisionParity:
    """Elision on vs off: identical decisions and final KV state."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_parity_across_policies_and_seeds(self, policy, seed):
        spec = _workload(seed, n_requests=400)
        _, dec_on, state_on = _run(policy, True, spec)
        _, dec_off, state_off = _run(policy, False, spec)
        assert dec_on == dec_off
        assert state_on == state_off

    @pytest.mark.parametrize("policy", ["lalbo3", "lb"])
    def test_parity_survives_gpu_failure_and_recovery(self, policy):
        spec = _workload(99, n_requests=400)
        fail_at = spec[150][1]  # mid-load: exercises resubmit + offline GPUs
        _, dec_on, state_on = _run(policy, True, spec, fail_gpu_at=fail_at)
        _, dec_off, state_off = _run(policy, False, spec, fail_gpu_at=fail_at)
        assert any(kind.value == "resubmit" for _, kind, *_ in dec_on)
        assert dec_on == dec_off
        assert state_on == state_off

    def test_elision_is_the_default(self):
        assert SystemConfig().pass_elision is True


class TestPassCounters:
    """Elided/executed accounting: every considered pass lands in exactly
    one bin, counters are monotone, and elision measurably engages."""

    def test_counters_sum_and_monotonicity(self):
        from repro.core.request import InferenceRequest

        spec = _workload(7, n_requests=300)
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(2, 3), policy="lalbo3")
        )
        instances = [
            ModelInstance(f"m{i}", get_profile(_architecture(i)))
            for i in range(N_FUNCTIONS)
        ]
        for fn, t in spec:
            system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t))

        snapshots = []

        def snap() -> None:
            s = system.scheduler
            snapshots.append((s.actions, s.passes_executed, s.passes_elided))

        system.sim.subscribe_post_event(snap)
        system.run()
        sched = system.scheduler

        # monotone, per-sample
        for prev, cur in zip(snapshots, snapshots[1:]):
            assert all(c >= p for p, c in zip(prev, cur))
        # every action considered at least one pass, and each considered
        # pass was either executed or elided — the elided bin gets at most
        # one entry per action (an elision always ends the action)
        actions, executed, elided = (
            sched.actions, sched.passes_executed, sched.passes_elided,
        )
        assert actions > 0
        assert executed + elided >= actions
        assert elided <= actions
        # the engine must actually engage on a real workload, and every
        # decision came out of an executed pass
        assert elided > 0
        assert executed > 0
        assert len(sched.decisions) <= executed * len(system.cluster.gpus) + executed

    def test_elision_off_never_counts_elided_passes(self):
        from repro.core.request import InferenceRequest

        spec = _workload(8, n_requests=200)
        system = FaaSCluster(
            SystemConfig(
                cluster=ClusterSpec.homogeneous(2, 3),
                policy="lalbo3",
                pass_elision=False,
            )
        )
        instances = [
            ModelInstance(f"m{i}", get_profile(_architecture(i)))
            for i in range(N_FUNCTIONS)
        ]
        for fn, t in spec:
            system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t))
        system.run()
        assert system.scheduler.passes_elided == 0
        assert system.scheduler.passes_executed > 0

    def test_elided_fraction_is_substantial_on_bursty_workload(self):
        from repro.core.request import InferenceRequest

        spec = _workload(9, n_requests=400)
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(2, 3), policy="lalbo3")
        )
        instances = [
            ModelInstance(f"m{i}", get_profile(_architecture(i)))
            for i in range(N_FUNCTIONS)
        ]
        for fn, t in spec:
            system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t))
        system.run()
        s = system.scheduler
        fraction = s.passes_elided / (s.passes_elided + s.passes_executed)
        assert fraction >= 0.3  # the bench gate's floor must hold here too


class TestGuards:
    """PassGuard semantics against a live system."""

    def test_policies_declare_the_shared_guard(self):
        for name in POLICIES:
            assert isinstance(make_scheduling_policy(name).guard, DispatchableWorkGuard)

    def test_base_guard_is_the_failsafe_default(self):
        from repro.core.policies import SchedulingPolicy

        class Custom(SchedulingPolicy):
            def schedule_pass(self, s):  # pragma: no cover - never runs
                return False

        assert type(Custom().guard) is PassGuard

    def test_guard_refuses_only_provable_noops(self):
        from repro.core.request import InferenceRequest

        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalbo3")
        )
        sched = system.scheduler
        guard = sched.policy.guard
        # idle cluster, empty queues: provably nothing to do
        assert guard.may_act(sched) is False
        inst = ModelInstance("m0", get_profile(_architecture(0)))
        system.submit(InferenceRequest("fn0", inst, arrival_time=0.0))
        # the submit dispatched immediately (idle GPU): back at rest
        assert guard.may_act(sched) is False
        # make every GPU busy, then queue a request: no idle GPU → no pass
        system.sim.run(until=0.0)
        for gpu in system.cluster.gpus:
            if gpu.is_idle:
                gpu.begin_inference()
        r = InferenceRequest("fn1", inst, arrival_time=0.0)
        sched.global_queue.push(r)
        assert guard.may_act(sched) is False
        for gpu in system.cluster.gpus:
            if gpu.state.value == "infer":
                gpu.become_idle()
        assert guard.may_act(sched) is True

    def test_idle_local_work_index_tracks_the_join(self):
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalbo3")
        )
        sched = system.scheduler
        gpu = system.cluster.gpus[0]
        inst = ModelInstance("m0", get_profile(_architecture(0)))
        from repro.core.request import InferenceRequest

        assert not sched.idle_local_work
        gpu.begin_inference()  # busy GPU with local work → not dispatchable
        sched.local_queues.push(gpu.gpu_id, InferenceRequest("fn0", inst, arrival_time=0.0))
        assert not sched.idle_local_work
        gpu.become_idle()  # now idle with local work → dispatchable
        assert sched.idle_local_work
        sched.local_queues.pop(gpu.gpu_id)
        assert not sched.idle_local_work
