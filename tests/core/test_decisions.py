"""Unit + integration tests for the scheduling decision log."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import DecisionKind, DecisionLog
from repro.core.decisions import Decision
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig


def mk(kind, req_id=1, t=0.0, gpu="g0"):
    return Decision(time_s=t, kind=kind, request_id=req_id, model_id="m", gpu_id=gpu)


class TestDecisionLog:
    def test_record_and_count(self):
        log = DecisionLog()
        log.record(mk(DecisionKind.DISPATCH_HIT))
        log.record(mk(DecisionKind.DISPATCH_MISS))
        log.record(mk(DecisionKind.DISPATCH_HIT))
        assert len(log) == 3
        assert log.count(DecisionKind.DISPATCH_HIT) == 2
        assert log.hit_rate() == pytest.approx(2 / 3)

    def test_hit_rate_empty(self):
        assert DecisionLog().hit_rate() == 0.0

    def test_ring_buffer_evicts_and_recounts(self):
        log = DecisionLog(maxlen=2)
        log.record(mk(DecisionKind.DISPATCH_HIT, req_id=1))
        log.record(mk(DecisionKind.DISPATCH_MISS, req_id=2))
        log.record(mk(DecisionKind.DISPATCH_MISS, req_id=3))
        assert len(log) == 2
        assert log.count(DecisionKind.DISPATCH_HIT) == 0
        assert log.count(DecisionKind.DISPATCH_MISS) == 2

    def test_queries(self):
        log = DecisionLog()
        log.record(mk(DecisionKind.DISPATCH_HIT, req_id=7, gpu="g1"))
        log.record(mk(DecisionKind.MOVE_TO_LOCAL, req_id=7, gpu="g2"))
        log.record(mk(DecisionKind.DISPATCH_MISS, req_id=9, gpu="g1"))
        assert [d.kind for d in log.for_request(7)] == [
            DecisionKind.DISPATCH_HIT,
            DecisionKind.MOVE_TO_LOCAL,
        ]
        assert len(log.for_gpu("g1")) == 2
        assert [d.request_id for d in log.last(2)] == [7, 9]

    def test_invalid_maxlen(self):
        with pytest.raises(ValueError):
            DecisionLog(maxlen=0)


class TestSchedulerIntegration:
    @pytest.fixture
    def system(self):
        return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalb"))

    def test_miss_then_hit_recorded(self, system, make_request):
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        r1 = make_request("fn-m", "resnet50")
        r1.model = inst
        system.submit(r1)
        system.run()
        r2 = make_request("fn-m", "resnet50", arrival=system.sim.now)
        r2.model = inst
        system.submit(r2)
        system.run()
        log = system.scheduler.decisions
        kinds = [d.kind for d in log]
        assert kinds[0] is DecisionKind.DISPATCH_MISS
        assert DecisionKind.DISPATCH_HIT in kinds
        assert log.hit_rate() == pytest.approx(0.5)

    def test_move_and_local_dispatch_recorded(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        warm = make_request("w", "resnet50")
        warm.model = inst
        gpu1.begin_inference()
        system.submit(warm)
        system.run()
        gpu1.become_idle()
        # hit keeps gpu0 busy; next same-model request moves to local queue
        a = make_request("a", "resnet50", arrival=system.sim.now)
        a.model = inst
        gpu1.begin_inference()
        system.submit(a)
        gpu1.become_idle()
        b = make_request("b", "resnet50", arrival=system.sim.now)
        b.model = inst
        system.submit(b)
        system.run()
        log = system.scheduler.decisions
        assert log.count(DecisionKind.MOVE_TO_LOCAL) == 1
        assert log.count(DecisionKind.DISPATCH_LOCAL) == 1
        moved = log.for_request(b.request_id)
        assert [d.kind for d in moved] == [
            DecisionKind.MOVE_TO_LOCAL,
            DecisionKind.DISPATCH_LOCAL,
        ]

    def test_resubmit_recorded_on_failure(self, system, make_request):
        r = system_submit = make_request("fn", "resnet50")
        system.submit(system_submit)
        system.run(until=1.0)
        system.fail_gpu(r.gpu_id)
        system.run()
        assert system.scheduler.decisions.count(DecisionKind.RESUBMIT) == 1

    def test_log_agrees_with_request_outcomes(self, system, make_request):
        for i in range(6):
            system.submit(make_request(f"fn-{i}", "alexnet", arrival=system.sim.now))
            system.run()
        log = system.scheduler.decisions
        misses = sum(1 for r in system.completed if r.cache_hit is False)
        assert log.count(DecisionKind.DISPATCH_MISS) == misses
