"""Unit tests for GPU Managers: execution, caching transitions, reporting."""

import pytest

from repro.cluster import ClusterSpec, GPUState
from repro.core.request import RequestState
from repro.runtime import FaaSCluster, SystemConfig


@pytest.fixture
def system():
    """A 1-node, 2-GPU system with the LB policy (simplest dispatch path)."""
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lb"))


def submit(system, req):
    system.submit(req)
    return req


class TestMissPath:
    def test_first_request_is_a_cold_miss(self, system, make_request):
        r = submit(system, make_request("fn-1", "resnet50"))
        system.run()
        assert r.state is RequestState.COMPLETED
        assert r.cache_hit is False
        assert r.false_miss is False  # nothing cached anywhere yet
        # latency = load (2.67) + inference (1.28) from Table I
        assert r.latency == pytest.approx(2.67 + 1.28)

    def test_model_resident_after_completion(self, system, make_request):
        r = submit(system, make_request("fn-1", "resnet50"))
        system.run()
        assert system.cache.is_cached_on(r.model_id, r.gpu_id)
        gpu = system.cluster.gpu(r.gpu_id)
        assert gpu.has_model(r.model_id)
        assert gpu.used_mb == pytest.approx(1701)

    def test_gpu_address_shipped_with_dispatch(self, system, make_request):
        r = submit(system, make_request())
        system.run()
        ip, device = r.gpu_address
        assert device.startswith("cuda:")
        assert ip == system.cluster.nodes[0].ip


class TestHitPath:
    def test_second_request_same_model_is_a_hit(self, system, make_request):
        inst_req = make_request("fn-1", "resnet50")
        submit(system, inst_req)
        system.run()
        r2 = make_request("fn-1", "resnet50", arrival=system.sim.now)
        # same *instance* → same cache item
        r2.model = inst_req.model
        submit(system, r2)
        system.run()
        assert r2.cache_hit is True
        assert r2.latency == pytest.approx(1.28)  # inference only

    def test_hit_touches_lru(self, system, make_request):
        a = make_request("fn-a", "resnet50")
        submit(system, a)
        system.run()
        gpu_id = a.gpu_id
        b = make_request("fn-b", "alexnet")
        # force b onto the same GPU by making the other GPU busy via a dummy
        system.cluster.gpus[1].begin_inference()
        submit(system, b)
        system.run(until=system.sim.now + 10)
        system.cluster.gpus[1].become_idle()
        assert system.cache.lru_list(gpu_id) == [a.model_id, b.model_id]
        # reuse a → it becomes hottest
        r = make_request("fn-a", "resnet50")
        r.model = a.model
        system.cluster.gpus[1].begin_inference()
        submit(system, r)
        system.run(until=system.sim.now + 10)
        assert system.cache.lru_list(gpu_id) == [b.model_id, a.model_id]


class TestEvictionPath:
    def test_eviction_when_memory_full(self, system, make_request):
        """Fill one GPU past capacity and verify LRU victims are killed."""
        gpu0, gpu1 = system.cluster.gpus
        gpu1.begin_inference()  # park gpu1 so everything lands on gpu0
        # 7800 MB: vgg19 (3947) + vgg16 (3907) > 7800 → second load evicts first
        a = submit(system, make_request("fn-a", "vgg19"))
        system.run(until=system.sim.now + 10)
        b = submit(system, make_request("fn-b", "vgg16"))
        system.run(until=system.sim.now + 10)
        assert not gpu0.has_model(a.model_id)  # evicted
        assert gpu0.has_model(b.model_id)
        assert not system.cache.cached_anywhere(a.model_id)

    def test_evicted_process_is_killed(self, system, make_request):
        from repro.cluster import ProcessState

        gpu0, gpu1 = system.cluster.gpus
        gpu1.begin_inference()
        a = submit(system, make_request("fn-a", "vgg19"))
        system.run(until=system.sim.now + 10)
        proc_a = gpu0.process_for(a.model_id)
        submit(system, make_request("fn-b", "vgg16"))
        system.run(until=system.sim.now + 10)
        assert proc_a.state is ProcessState.KILLED


class TestStateAndReporting:
    def test_gpu_states_during_miss(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        gpu1.begin_inference()
        submit(system, make_request("fn-a", "resnet50"))
        # during load (first 2.67s) the GPU is LOADING
        system.run(until=1.0)
        assert gpu0.state is GPUState.LOADING
        system.run(until=3.0)  # load done at 2.67 → inferring
        assert gpu0.state is GPUState.INFERRING
        system.run(until=4.0)  # done at 3.95
        assert gpu0.state is GPUState.IDLE

    def test_status_mirrored_to_datastore(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        gpu1.begin_inference()
        submit(system, make_request())
        client = system.datastore.client()
        assert client.get(f"gpu/status/{gpu0.gpu_id}") == "busy"
        system.run()
        assert client.get(f"gpu/status/{gpu0.gpu_id}") == "idle"

    def test_latency_record_written(self, system, make_request):
        r = submit(system, make_request("fn-z", "alexnet"))
        system.run()
        rec = system.datastore.client().get(f"fn/latency/{r.request_id}")
        assert rec.function == "fn-z"
        assert rec.cache_hit is False
        assert rec.latency_s == pytest.approx(2.81 + 1.25)

    def test_busy_until_maintained(self, system, make_request):
        gpu0, gpu1 = system.cluster.gpus
        gpu1.begin_inference()
        submit(system, make_request("fn-a", "resnet50"))
        assert system.estimator.busy_until(gpu0.gpu_id) == pytest.approx(3.95)
        system.run()
        # cleared after completion
        assert system.estimator.busy_until(gpu0.gpu_id) == system.sim.now

    def test_execute_on_busy_gpu_rejected(self, system, make_request):
        gpu0 = system.cluster.gpus[0]
        gpu0.begin_inference()
        mgr = system.gpu_managers()["node0"]
        with pytest.raises(RuntimeError):
            mgr.execute(make_request(), gpu0)

    def test_execute_on_foreign_node_rejected(self, make_request):
        sys2 = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(2, 1), policy="lb"))
        mgr0 = sys2.gpu_managers()["node0"]
        foreign_gpu = sys2.cluster.nodes[1].gpus[0]
        with pytest.raises(ValueError):
            mgr0.execute(make_request(), foreign_gpu)

    def test_completed_requests_counter_feeds_frequency(self, system, make_request):
        r = submit(system, make_request())
        system.run()
        assert system.cluster.gpu(r.gpu_id).completed_requests == 1
