"""Unit tests for the GlobalQueue's index-driven fast-path machinery:

lazy O3-visit accounting (prefix bumps + materialization), the ordered
starved set, positional ``push_sorted``, and the allocation-free live walk.
The end-to-end guarantees are covered by ``test_decision_parity``; these
tests pin the queue-level contracts directly.
"""

import pytest

from repro.core.queues import GlobalQueue


def _push_n(q, make_request, n, prefix="fn", arch="alexnet"):
    reqs = [make_request(f"{prefix}-{i}", arch, arrival=float(i)) for i in range(n)]
    for r in reqs:
        q.push(r)
    return reqs


class TestLazyVisits:
    def test_bump_counts_prefix_only(self, make_request):
        q = GlobalQueue(o3_limit=25)
        reqs = _push_n(q, make_request, 5)
        stop = q.first_entry_for_model(reqs[3].model_id)
        assert stop.request is reqs[3]  # each request deploys its own instance
        assert stop.slot == 3
        q.bump_visits_before(stop.slot)
        assert [r.visits for r in reqs] == [1, 1, 1, 0, 0]
        q.bump_visits_before(None)  # whole queue
        assert [r.visits for r in reqs] == [2, 2, 2, 1, 1]

    def test_visits_materialized_on_remove(self, make_request):
        q = GlobalQueue(o3_limit=25)
        reqs = _push_n(q, make_request, 3)
        q.bump_visits_before(None)
        q.bump_visits_before(None)
        q.remove(reqs[1])
        assert reqs[1].visits == 2  # frozen at removal
        q.bump_visits_before(None)
        assert reqs[1].visits == 2  # no longer tracked
        assert reqs[0].visits == 3

    def test_direct_writes_stay_consistent(self, make_request):
        """The reference scan's `visits += 1` and lazy bumps may interleave."""
        q = GlobalQueue(o3_limit=25)
        (r,) = _push_n(q, make_request, 1)
        q.bump_visits_before(None)
        r.visits += 1
        q.bump_visits_before(None)
        assert r.visits == 3

    def test_untracked_queue_rejects_bumps(self, make_request):
        q = GlobalQueue()
        assert not q.tracks_visits
        with pytest.raises(RuntimeError):
            q.bump_visits_before(None)


class TestStarvedSet:
    def test_starved_surface_in_queue_order(self, make_request):
        q = GlobalQueue(o3_limit=1)
        reqs = _push_n(q, make_request, 4)
        q.bump_visits_before(3)  # visits=1 for slots 0..2
        assert q.starved_entries_before(None) == []
        q.bump_visits_before(2)  # slots 0..1 cross the limit
        starved = q.starved_entries_before(None)
        assert [e.request for e in starved] == reqs[:2]
        assert all(e.request.visits == 2 for e in starved)  # frozen at limit+1

    def test_starved_never_bumped_again(self, make_request):
        q = GlobalQueue(o3_limit=0)
        reqs = _push_n(q, make_request, 2)
        q.bump_visits_before(None)
        q.bump_visits_before(None)
        q.bump_visits_before(None)
        assert [r.visits for r in reqs] == [1, 1]  # starved counts freeze

    def test_stop_slot_filters_starved(self, make_request):
        q = GlobalQueue(o3_limit=0)
        reqs = _push_n(q, make_request, 3)
        q.bump_visits_before(None)  # limit 0: every covered request starves
        entry = q.first_entry_for_model(reqs[2].model_id)
        assert [e.request for e in q.starved_entries_before(entry.slot)] == reqs[:2]
        assert len(q.starved_entries_before(None)) == 3

    def test_requeued_request_keeps_starvation(self, make_request):
        """Fairness: resubmit preserves visits, so a starved request must
        surface immediately after re-insertion."""
        q = GlobalQueue(o3_limit=2)
        reqs = _push_n(q, make_request, 2)
        for _ in range(3):
            q.bump_visits_before(None)
        q.remove(reqs[0])
        assert reqs[0].visits == 3
        q.push_sorted(reqs[0])
        starved = q.starved_entries_before(None)
        assert reqs[0] in [e.request for e in starved]
        assert reqs[0] is q.head()  # re-inserted at its arrival position


class TestPushSortedIncremental:
    def test_model_index_order_after_reinsertion(self, make_request):
        q = GlobalQueue(o3_limit=25)
        a0 = make_request("fn-a", arrival=0.0)
        b = make_request("fn-b", arrival=1.0)
        a2 = make_request("fn-a", arrival=2.0)
        for r in (a0, b, a2):
            q.push(r)
        q.remove(a0)
        assert q.first_for_model(a0.model_id) is a2
        q.push_sorted(a0)
        assert q.first_for_model(a0.model_id) is a0  # back in front of a2
        assert [r.arrival_time for r in q] == [0.0, 1.0, 2.0]

    def test_visits_survive_reindex(self, make_request):
        q = GlobalQueue(o3_limit=25)
        reqs = _push_n(q, make_request, 4)
        q.bump_visits_before(None)
        q.remove(reqs[1])
        q.push_sorted(reqs[1])  # forces a full re-index
        assert [r.visits for r in reqs] == [1, 1, 1, 1]
        q.bump_visits_before(None)
        assert [r.visits for r in reqs] == [2, 2, 2, 2]


class TestLiveIteration:
    def test_iter_requests_skips_removed_ahead(self, make_request):
        q = GlobalQueue()
        reqs = _push_n(q, make_request, 4)
        seen = []
        for r in q.iter_requests():
            seen.append(r)
            if r is reqs[0]:
                q.remove(reqs[2])
        assert seen == [reqs[0], reqs[1], reqs[3]]

    def test_iter_requests_survives_reindex(self, make_request):
        q = GlobalQueue()
        reqs = _push_n(q, make_request, 4)
        late = make_request("fn-late", arrival=1.5)
        seen = []
        for r in q.iter_requests():
            seen.append(r)
            if r is reqs[1]:
                q.push_sorted(late)  # renumbers every slot mid-walk
        assert seen == [reqs[0], reqs[1], late, reqs[2], reqs[3]]

    def test_hole_compaction_preserves_order(self, make_request):
        q = GlobalQueue(o3_limit=25)
        reqs = _push_n(q, make_request, 200)
        q.bump_visits_before(None)
        for r in reqs[:150]:
            q.remove(r)
        # appending past the hole threshold compacts the entry array
        extra = make_request("fn-extra", arrival=500.0)
        q.push(extra)
        assert list(q) == reqs[150:] + [extra]
        assert [r.visits for r in reqs[150:]] == [1] * 50
        q.bump_visits_before(None)
        assert [r.visits for r in reqs[150:]] == [2] * 50
        assert extra.visits == 1
