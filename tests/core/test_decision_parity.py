"""Decision parity: the index-driven fast path vs. the reference scans.

The scheduling fast path (``SchedulingPolicy.use_fast_path``) replaces the
O(GPUs × queue) Algorithm-1/2 loops with index lookups, a lazy O3-visit
tree, and an ordered starved set.  Nothing about the *decisions* may
change: this module replays a seeded multi-thousand-request workload under
every policy twice — once with the literal reference scans, once with the
fast path — and asserts the resulting :class:`DecisionLog` sequences are
identical, field for field (timestamps, decision kinds, targets, and the
O3 ``visits`` counters recorded with each decision).

Request IDs come from a process-global counter, so logs are compared after
mapping each run's IDs onto the submission index.
"""

import json
import random
import re

import pytest

from repro.cluster import ClusterSpec
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import FaaSCluster, SystemConfig

SEED = 20230517  # arbitrary but frozen: parity must hold for any seed
N_REQUESTS = 2000
N_FUNCTIONS = 30

POLICIES = ["lb", "lalb", "lalbo3", "locality"]


def _workload(seed: int, n_requests: int = N_REQUESTS):
    """Seeded arrival trace: (function index, arrival time) tuples.

    Popularity is heavily skewed (a few hot functions dominate, §V-A.1's
    Zipf-like reality) and arrivals are bursty, so queues build up deep
    enough to exercise O3 skips, the starvation guard, and Algorithm 2's
    every branch.
    """
    rng = random.Random(seed)
    spec = []
    t = 0.0
    for _ in range(n_requests):
        # bursts: occasionally a batch of arrivals lands at nearly one instant
        if rng.random() < 0.05:
            t += rng.expovariate(2.0)
        else:
            t += rng.expovariate(1 / 0.035)
        fn = min(int(rng.paretovariate(0.9)) - 1, N_FUNCTIONS - 1)
        spec.append((fn, t))
    return spec


def _architecture(fn_idx: int) -> str:
    names = model_names()
    return names[fn_idx % len(names)]


def _run(
    policy: str,
    fast: bool,
    spec,
    *,
    fail_gpu_at: float | None = None,
    elide: bool = True,
):
    """Run the workload; return the decision log keyed by submission index."""
    from repro.core.request import InferenceRequest

    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4), policy=policy, pass_elision=elide
        )
    )
    system.scheduler.policy.use_fast_path = fast
    instances = [
        ModelInstance(f"m{i}", get_profile(_architecture(i))) for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    if fail_gpu_at is not None:
        gpu_id = system.cluster.gpus[2].gpu_id
        system.sim.schedule_at(fail_gpu_at, system.fail_gpu, gpu_id)
        system.sim.schedule_at(fail_gpu_at + 5.0, system.recover_gpu, gpu_id)
    system.run()
    assert len(system.completed) == len(spec)
    return [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]


@pytest.mark.parametrize("policy", POLICIES)
def test_fast_path_matches_reference_decisions(policy):
    spec = _workload(SEED)
    reference = _run(policy, fast=False, spec=spec)
    fast = _run(policy, fast=True, spec=spec)
    assert len(reference) >= N_REQUESTS  # sanity: every request decided at least once
    assert fast == reference


def test_fast_path_matches_reference_after_failure():
    """Parity must survive a mid-run GPU failure: the resubmit path
    exercises ``push_sorted`` (positional re-insertion) and preserved
    O3 visits on re-queued requests."""
    spec = _workload(SEED + 1, n_requests=600)
    fail_at = spec[250][1]  # while the system is under load
    reference = _run("lalbo3", fast=False, spec=spec, fail_gpu_at=fail_at)
    fast = _run("lalbo3", fast=True, spec=spec, fail_gpu_at=fail_at)
    assert fast == reference
    assert any(kind.value == "resubmit" for _, kind, *_ in fast)


@pytest.mark.parametrize("policy", POLICIES)
def test_elision_and_fast_path_matrix_identical(policy):
    """All four engine configurations — (fast, elision) × (on, off) — must
    produce the same decision sequence; the literal scans with the literal
    always-pass engine are the reference corner."""
    spec = _workload(SEED + 6, n_requests=800)
    reference = _run(policy, fast=False, spec=spec, elide=False)
    for fast, elide in ((True, True), (True, False), (False, True)):
        assert _run(policy, fast=fast, spec=spec, elide=elide) == reference


def test_elision_matches_reference_after_failure():
    """The elision engine must stay byte-identical through a mid-run GPU
    failure: resubmits re-enter via push_sorted and the guard must keep
    admitting passes while resubmitted work is dispatchable."""
    spec = _workload(SEED + 7, n_requests=600)
    fail_at = spec[250][1]
    reference = _run("lalbo3", fast=False, spec=spec, fail_gpu_at=fail_at, elide=False)
    elided = _run("lalbo3", fast=True, spec=spec, fail_gpu_at=fail_at, elide=True)
    assert elided == reference
    assert any(kind.value == "resubmit" for _, kind, *_ in elided)


def test_fast_path_is_the_default():
    from repro.core.policies import make_scheduling_policy

    for policy in POLICIES:
        assert make_scheduling_policy(policy).use_fast_path is True


def _run_tenant(
    policy: str,
    fast: bool,
    spec,
    quotas,
    *,
    n_functions: int = N_FUNCTIONS,
    elide: bool = True,
):
    """Run the workload with a TenancyController installed.

    Every third function belongs to tenant ``"capped"`` (the quota'd one);
    the rest stay on ``"default"``.  Returns (decision log keyed by
    submission index, completed count, the policy object) so callers can
    assert both parity and which scan route ran.
    """
    from repro.core.request import InferenceRequest

    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy=policy,
            quotas=quotas,
            pass_elision=elide,
        )
    )
    system.scheduler.policy.use_fast_path = fast
    instances = [
        ModelInstance(
            f"m{i}",
            get_profile(_architecture(i)),
            tenant="capped" if i % 3 == 0 else "default",
        )
        for i in range(n_functions)
    ]
    for inst in instances:
        system.register_model(inst)
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(
            f"fn{fn}", instances[fn], arrival_time=t, tenant=instances[fn].tenant
        )
        id_to_index[request.request_id] = index
        system.submit_at(request)
    system.run()
    log = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    return log, len(system.completed), system.scheduler.policy


class TestTenancyFastPath:
    """With a TenancyController installed the policies must keep the
    O(models-on-GPU) bound whenever no quota is binding — and still match
    the reference scans decision for decision either way."""

    def test_non_binding_quota_uses_fast_path_with_identical_decisions(self):
        from repro.core.tenancy import TenantQuota

        spec = _workload(SEED + 3, n_requests=1200)
        quotas = {"capped": TenantQuota(max_processes=100)}
        ref_log, ref_done, ref_policy = _run_tenant("lalbo3", False, spec, quotas)
        fast_log, fast_done, fast_policy = _run_tenant("lalbo3", True, spec, quotas)
        assert fast_log == ref_log
        assert fast_done == ref_done == len(spec)
        # the loose quota never binds: every scan must take the fast route
        assert fast_policy.fast_scans > 0
        assert fast_policy.reference_scans == 0

    def test_binding_quota_falls_back_and_stays_identical(self):
        from repro.core.tenancy import TenantQuota

        spec = _workload(SEED + 4, n_requests=1200)
        quotas = {"capped": TenantQuota(max_processes=2)}
        ref_log, ref_done, _ = _run_tenant("lalbo3", False, spec, quotas)
        fast_log, fast_done, fast_policy = _run_tenant("lalbo3", True, spec, quotas)
        assert fast_log == ref_log
        assert fast_done == ref_done
        # a binding quota must send scans to the reference loops (whose
        # per-request probes implement the refusals)
        assert fast_policy.reference_scans > 0

    def test_lb_policy_parity_under_quota(self):
        from repro.core.tenancy import TenantQuota

        spec = _workload(SEED + 5, n_requests=800)
        for quota in (TenantQuota(max_processes=3), TenantQuota(max_processes=64)):
            quotas = {"capped": quota}
            ref_log, ref_done, _ = _run_tenant("lb", False, spec, quotas)
            fast_log, fast_done, _ = _run_tenant("lb", True, spec, quotas)
            assert fast_log == ref_log
            assert fast_done == ref_done


def test_quota_scenarios_identical_with_elision_on_and_off():
    """§VI isolation: with a binding tenant quota (admission probes can
    refuse) the elided engine must still match the literal one exactly —
    the guard never skips a pass that tenancy state could turn into a
    decision."""
    from repro.core.tenancy import TenantQuota

    spec = _workload(SEED + 8, n_requests=800)
    for quota in (TenantQuota(max_processes=2), TenantQuota(max_processes=100)):
        quotas = {"capped": quota}
        on_log, on_done, _ = _run_tenant("lalbo3", True, spec, quotas, elide=True)
        off_log, off_done, _ = _run_tenant("lalbo3", True, spec, quotas, elide=False)
        assert on_log == off_log
        # a binding quota may legitimately strand requests (they stay
        # queued until the tenant's usage drops); both engines must
        # strand exactly the same ones
        assert on_done == off_done


# ----------------------------------------------------------------------
# Chaos parity: seeded fault schedules (repro.chaos, docs/robustness.md)
# ----------------------------------------------------------------------
def _chaos_plan():
    """Hand-built crash/recover + straggler schedule, dense enough to land
    mid-burst on the seeded workload (which spans ~30 simulated seconds)."""
    from repro.chaos import FaultPlan
    from repro.chaos.plan import GPUCrash, Straggler

    return FaultPlan(
        name="parity-crash-straggle",
        faults=(
            GPUCrash(at_s=4.0, gpu_index=2, recover_after_s=6.0),
            Straggler(at_s=9.0, gpu_index=5, factor=3.0, duration_s=8.0),
            GPUCrash(at_s=15.0, gpu_index=0, recover_after_s=5.0),
        ),
        seed=SEED,
    )


def _run_chaos(policy: str, fast: bool, elide: bool, spec):
    """Run the workload under the chaos schedule; return the decision log
    (keyed by submission index) and the normalized final KV state."""
    from repro.core.request import InferenceRequest

    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy=policy,
            pass_elision=elide,
            fault_plan=_chaos_plan(),
        )
    )
    system.scheduler.policy.use_fast_path = fast
    instances = [
        ModelInstance(f"m{i}", get_profile(_architecture(i))) for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    system.run()
    assert len(system.completed) == len(spec)  # recoverable plan loses nothing
    log = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    # request IDs are process-global, so per-request keys are re-keyed by
    # submission index before byte comparison
    state = {}
    for key, value in system.datastore.client().range("").items():
        m = re.fullmatch(r"fn/latency/(\d+)", key)
        if m:
            key = f"fn/latency/idx{id_to_index[int(m.group(1))]}"
        state[key] = value
    return log, json.dumps(state, sort_keys=True, default=repr)


@pytest.mark.parametrize("policy", POLICIES)
def test_chaos_schedule_parity_across_engines(policy):
    """Under a seeded crash/recover + straggler schedule, every engine
    configuration — fast path × pass elision — must produce byte-identical
    decision logs *and* final datastore state.  Fault handling may not
    depend on which scan or guard implementation ran."""
    spec = _workload(SEED + 9, n_requests=800)
    ref_log, ref_kv = _run_chaos(policy, fast=False, elide=False, spec=spec)
    assert any(kind.value == "resubmit" for _, kind, *_ in ref_log)
    for fast, elide in ((True, True), (True, False), (False, True)):
        log, kv = _run_chaos(policy, fast=fast, elide=elide, spec=spec)
        assert log == ref_log, f"decision drift with fast={fast}, elide={elide}"
        assert kv == ref_kv, f"KV drift with fast={fast}, elide={elide}"


def test_chaos_replay_is_deterministic():
    """Two runs of the same plan + seed + workload are byte-identical:
    the replay property every chaos debugging session depends on."""
    spec = _workload(SEED + 10, n_requests=600)
    first = _run_chaos("lalbo3", fast=True, elide=True, spec=spec)
    second = _run_chaos("lalbo3", fast=True, elide=True, spec=spec)
    assert first == second


def test_o3_visits_identical_under_both_scans():
    """Spot-check the lazy visit accounting itself: with the same seeded
    workload, the distribution of recorded O3 visits must be identical —
    not only each decision's value (covered above) but the totals used by
    Fig. 7-style analyses."""
    spec = _workload(SEED + 2, n_requests=800)
    for policy in ("lalb", "lalbo3"):
        ref = _run(policy, fast=False, spec=spec)
        fast = _run(policy, fast=True, spec=spec)
        assert sum(v for *_, v in fast) == sum(v for *_, v in ref)
        assert max(v for *_, v in fast) == max(v for *_, v in ref)
