"""Unit tests for finish-time estimation (Alg. 2's hit-vs-miss comparison)."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.core.estimator import FinishTimeEstimator
from repro.core.queues import LocalQueues
from repro.models import ProfileRegistry
from repro.sim import Simulator


@pytest.fixture
def env():
    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec.homogeneous(1, 2))
    lq = LocalQueues()
    est = FinishTimeEstimator(sim, ProfileRegistry.from_table1(), lq)
    return sim, cluster, lq, est


def test_idle_gpu_finish_time_is_now(env):
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    assert est.estimated_finish_time(gpu) == sim.now
    assert est.wait_time(gpu) == 0.0


def test_busy_until_tracked(env):
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    est.set_busy_until(gpu.gpu_id, 5.0)
    assert est.estimated_finish_time(gpu) == 5.0
    est.clear_busy(gpu.gpu_id)
    assert est.estimated_finish_time(gpu) == sim.now


def test_stale_busy_until_clamped_to_now(env):
    """A busy_until in the past must not produce negative waits."""
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    est.set_busy_until(gpu.gpu_id, 1.0)
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert est.estimated_finish_time(gpu) == sim.now
    assert est.wait_time(gpu) == 0.0


def test_local_queue_requests_add_inference_time(env, make_request):
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    est.set_busy_until(gpu.gpu_id, 2.0)
    lq.push(gpu.gpu_id, make_request("fn-a", "resnet50"))  # 1.28 s
    lq.push(gpu.gpu_id, make_request("fn-b", "alexnet"))  # 1.25 s
    assert est.estimated_finish_time(gpu) == pytest.approx(2.0 + 1.28 + 1.25)


def test_profile_lookup_methods(env, make_request):
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    r = make_request("fn", "vgg19")
    assert est.load_time(r, gpu) == pytest.approx(4.07)
    assert est.infer_time(r, gpu) == pytest.approx(1.33)


def test_infer_time_respects_batch_size(env, make_request):
    sim, cluster, lq, est = env
    gpu = cluster.gpus[0]
    small = make_request("fn", "vgg19", batch_size=1)
    big = make_request("fn", "vgg19", batch_size=64)
    assert est.infer_time(small, gpu) < est.infer_time(big, gpu)


class TestIncrementalQueuedCost:
    """The running per-GPU inference-time sum vs. the reference walk."""

    def test_incremental_sum_tracks_push_pop(self, env, make_request):
        sim, cluster, lq, est = env
        gpu = cluster.gpus[0]
        est.register_gpus(cluster.gpus)
        rng_ops = [
            make_request(f"fn-{i}", arch)
            for i, arch in enumerate(["resnet50", "alexnet", "vgg19", "vgg16"])
        ]
        for r in rng_ops:
            lq.push(gpu.gpu_id, r)
            assert est.queued_cost(gpu) == pytest.approx(est.reference_queued_cost(gpu))
        while lq.length(gpu.gpu_id):
            lq.pop(gpu.gpu_id)
            assert est.queued_cost(gpu) == pytest.approx(est.reference_queued_cost(gpu))

    def test_sum_resets_exactly_at_empty(self, env, make_request):
        sim, cluster, lq, est = env
        gpu = cluster.gpus[0]
        est.register_gpus(cluster.gpus)
        for _ in range(3):
            lq.push(gpu.gpu_id, make_request("fn", "resnet50"))
        while lq.length(gpu.gpu_id):
            lq.pop(gpu.gpu_id)
        assert est.queued_cost(gpu) == 0.0  # exact zero, not accumulated drift

    def test_unregistered_gpu_falls_back_to_reference_walk(self, env, make_request):
        sim, cluster, lq, est = env
        gpu = cluster.gpus[0]
        # no register_gpus: the push is observed before the device is known
        lq.push(gpu.gpu_id, make_request("fn", "alexnet"))
        assert est.queued_cost(gpu) == pytest.approx(est.reference_queued_cost(gpu))
        # the lazy recompute registered the device: further mutations are
        # tracked incrementally
        lq.push(gpu.gpu_id, make_request("fn2", "vgg19"))
        assert est.queued_cost(gpu) == pytest.approx(est.reference_queued_cost(gpu))

    def test_estimated_finish_time_uses_running_sum(self, env, make_request):
        sim, cluster, lq, est = env
        gpu = cluster.gpus[0]
        est.register_gpus(cluster.gpus)
        est.set_busy_until(gpu.gpu_id, 2.0)
        lq.push(gpu.gpu_id, make_request("fn-a", "resnet50"))  # 1.28 s
        assert est.estimated_finish_time(gpu) == pytest.approx(2.0 + 1.28)


class TestHitVsMissDecision:
    def test_short_wait_beats_load(self, env, make_request):
        sim, cluster, lq, est = env
        busy, idle = cluster.gpus
        busy.begin_inference()
        est.set_busy_until(busy.gpu_id, 1.0)  # wait 1.0 < load 2.67
        r = make_request("fn", "resnet50")
        assert est.hit_on_busy_beats_miss_on_idle(r, busy, idle)

    def test_long_wait_loses_to_load(self, env, make_request):
        sim, cluster, lq, est = env
        busy, idle = cluster.gpus
        busy.begin_inference()
        est.set_busy_until(busy.gpu_id, 10.0)  # wait 10 > load 2.67
        r = make_request("fn", "resnet50")
        assert not est.hit_on_busy_beats_miss_on_idle(r, busy, idle)

    def test_local_queue_pushes_wait_over_threshold(self, env, make_request):
        sim, cluster, lq, est = env
        busy, idle = cluster.gpus
        busy.begin_inference()
        est.set_busy_until(busy.gpu_id, 2.0)  # wait 2.0 < 2.67 → would win
        r = make_request("fn", "resnet50")
        assert est.hit_on_busy_beats_miss_on_idle(r, busy, idle)
        # one queued hit (1.28s) tips it over: 3.28 > 2.67
        lq.push(busy.gpu_id, make_request("other", "resnet50"))
        assert not est.hit_on_busy_beats_miss_on_idle(r, busy, idle)
