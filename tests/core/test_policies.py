"""Behavioral tests for the LB, LALB, and LALBO3 scheduling policies.

These run small hand-crafted scenarios through the full runtime and assert
the dispatch decisions the paper's Algorithms 1 and 2 prescribe.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core.policies import (
    LALBPolicy,
    LoadBalancingPolicy,
    make_scheduling_policy,
)
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig


def build(policy, gpus=2, o3_limit=25):
    return FaaSCluster(
        SystemConfig(cluster=ClusterSpec.homogeneous(1, gpus), policy=policy, o3_limit=o3_limit)
    )


def warm(system, instance, gpu):
    """Pre-load a model instance onto a GPU (bypassing a request)."""
    gpu.admit(instance.instance_id, instance.occupied_mb).mark_ready(system.sim.now)
    system.cache.on_loaded(gpu.gpu_id, instance)


class TestFactory:
    def test_names(self):
        assert make_scheduling_policy("lb").name == "lb"
        assert make_scheduling_policy("lalb").name == "lalb"
        assert make_scheduling_policy("lalbo3").name == "lalbo3"

    def test_lalb_is_limit_zero(self):
        p = make_scheduling_policy("lalb")
        assert isinstance(p, LALBPolicy) and p.limit == 0

    def test_lalbo3_limit_configurable(self):
        p = make_scheduling_policy("lalbo3", o3_limit=45)
        assert p.limit == 45

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_scheduling_policy("fifo")

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            LALBPolicy(limit=-1)


class TestLoadBalancing:
    def test_head_of_queue_dispatched_regardless_of_locality(self, make_request):
        system = build("lb")
        gpu0, gpu1 = system.cluster.gpus
        inst_b = ModelInstance("fn-b", get_profile("alexnet"))
        warm(system, inst_b, gpu1)  # fn-b cached on gpu1
        # head request is fn-a; LB sends it to the first idle GPU (gpu0),
        # and fn-b goes to gpu1 (its cached GPU, but only by accident)
        ra = make_request("fn-a", "resnet50")
        rb = make_request("fn-b", "alexnet")
        rb.model = inst_b
        system.submit(ra)
        system.submit(rb)
        system.run()
        assert ra.gpu_id == gpu0.gpu_id
        assert ra.cache_hit is False

    def test_lb_creates_false_misses(self, make_request):
        system = build("lb")
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        warm(system, inst, gpu1)
        gpu1.begin_inference()  # cached GPU busy
        r = make_request("fn-m", "resnet50")
        r.model = inst
        system.submit(r)
        system.run(until=10.0)
        # LB dispatched to idle gpu0 although gpu1 held the model
        assert r.gpu_id == gpu0.gpu_id
        assert r.cache_hit is False
        assert r.false_miss is True


class TestLALBLocality:
    def test_hit_on_idle_gpu_preferred(self, make_request):
        system = build("lalb")
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        warm(system, inst, gpu1)
        r = make_request("fn-m", "resnet50")
        r.model = inst
        system.submit(r)
        system.run()
        assert r.gpu_id == gpu1.gpu_id
        assert r.cache_hit is True

    def test_short_wait_on_busy_cached_gpu_wins(self, make_request):
        """Alg. 2 lines 8–15: queue behind the cached copy when wait < load."""
        system = build("lalb")
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        # a hit in flight on gpu1 keeps it busy only 1.28 s < 2.67 s load
        r0 = make_request("fn-m0", "resnet50")
        r0.model = inst
        warm(system, inst, gpu1)
        gpu0.begin_inference()  # park gpu0 so r0 lands on gpu1
        system.submit(r0)
        gpu0.become_idle()
        r = make_request("fn-m", "resnet50", arrival=system.sim.now)
        r.model = inst
        system.submit(r)
        # r should be in gpu1's local queue, not dispatched to gpu0
        assert system.scheduler.local_queues.length(gpu1.gpu_id) == 1
        system.run()
        assert r.gpu_id == gpu1.gpu_id
        assert r.cache_hit is True

    def test_long_wait_allows_cache_miss_on_idle(self, make_request):
        """Alg. 2 lines 16–18: miss on the idle GPU when waiting costs more."""
        system = build("lalb")
        gpu0, gpu1 = system.cluster.gpus
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        warm(system, inst, gpu1)
        gpu1.begin_inference()
        # make the estimated wait enormous
        system.estimator.set_busy_until(gpu1.gpu_id, 100.0)
        r = make_request("fn-m", "resnet50")
        r.model = inst
        system.submit(r)
        assert r.gpu_id == gpu0.gpu_id  # dispatched immediately as a miss
        assert r.false_miss is True
        system.estimator.clear_busy(gpu1.gpu_id)
        gpu1.become_idle()
        system.run()
        assert r.cache_hit is False

    def test_uncached_model_goes_to_idle_gpu(self, make_request):
        system = build("lalb")
        r = make_request("fn-new", "vgg19")
        system.submit(r)
        system.run()
        assert r.cache_hit is False
        assert r.false_miss is False

    def test_local_queue_served_before_global(self, make_request):
        system = build("lalb", gpus=1)
        gpu0 = system.cluster.gpus[0]
        inst = ModelInstance("fn-m", get_profile("resnet50"))
        r0 = make_request("fn-m0", "resnet50")
        r0.model = inst
        system.submit(r0)  # cold miss occupies gpu0 (load+infer)
        # while busy, a same-model request and a different-model request arrive
        r1 = make_request("fn-m1", "resnet50", arrival=0.0)
        r1.model = inst
        r2 = make_request("fn-other", "alexnet", arrival=0.0)
        system.submit(r2)  # arrives first in the global queue
        system.submit(r1)
        system.run(until=2.0)  # gpu0 still loading (2.67 s)
        system.run()
        # r1 was moved to gpu0's local queue (hit beats load) and must run
        # before the earlier-arrived r2 from the global queue
        assert r1.cache_hit is True
        assert r1.exec_start_at < r2.exec_start_at


class TestOutOfOrderDispatch:
    def _two_gpu_hot_cold(self, make_request, policy, o3_limit=25):
        """gpu1 caches 'hot'; queue = [cold1, hot]; gpu0 busy, gpu1 idle.

        O3 should promote `hot` to gpu1 ahead of cold1 when the limit
        allows skipping.
        """
        system = build(policy, gpus=2, o3_limit=o3_limit)
        gpu0, gpu1 = system.cluster.gpus
        hot_inst = ModelInstance("hot", get_profile("resnet50"))
        warm(system, hot_inst, gpu1)
        gpu0.begin_inference()  # keep gpu0 out of the picture
        system.estimator.set_busy_until(gpu0.gpu_id, 1000.0)
        cold = make_request("cold-1", "vgg19")
        hot = make_request("hot", "resnet50")
        hot.model = hot_inst
        return system, gpu1, cold, hot

    def test_o3_promotes_cached_request(self, make_request):
        system, gpu1, cold, hot = self._two_gpu_hot_cold(make_request, "lalbo3")
        system.submit(cold)
        # cold is dispatched to idle gpu1 (miss: nothing else available)...
        # actually with LALBO3 the scan sees no cached request yet; submit
        # both before running the clock to exercise the promotion.
        system2, gpu1b, cold2, hot2 = self._two_gpu_hot_cold(make_request, "lalbo3")
        system2.scheduler.global_queue.push(cold2)
        system2.scheduler.global_queue.push(hot2)
        system2.scheduler.on_gpu_idle(gpu1b)
        assert hot2.gpu_id == gpu1b.gpu_id  # promoted past cold2
        assert hot2.cache_hit is True
        assert cold2.gpu_id is None  # still waiting (gpu0 parked busy)
        assert cold2.visits == 1

    def test_starvation_limit_forces_dispatch(self, make_request):
        """Once visits exceed the limit the cold request must be served."""
        system, gpu1, cold, hot = self._two_gpu_hot_cold(
            make_request, "lalbo3", o3_limit=2
        )
        hot_inst = hot.model
        q = system.scheduler.global_queue

        def push_hot(i):
            r = make_request(f"hot-{i}", "resnet50", arrival=system.sim.now)
            r.model = hot_inst
            q.push(r)
            return r

        q.push(cold)
        hots = [push_hot(0)]
        # Keep a cached (hot) request behind cold at every idle moment, so
        # cold only ever gets served through the starvation guard.
        system.scheduler.on_gpu_idle(gpu1)  # dispatches hot-0, skips cold
        for i in range(1, 4):
            hots.append(push_hot(i))
            system.run()  # completing hot-{i-1} triggers the next pass
            if cold.gpu_id is not None:
                break
        assert cold.visits == 3  # skipped until visits exceeded the limit of 2
        assert cold.gpu_id == gpu1.gpu_id  # forced through Algorithm 2
        assert cold.cache_hit is False
        # the promotion that caused the skips really happened out of order
        assert hots[0].exec_start_at < cold.exec_start_at

    def test_lalb_limit_zero_forces_after_single_skip(self, make_request):
        system, gpu1, cold, hot = self._two_gpu_hot_cold(
            make_request, "lalb", o3_limit=0
        )
        q = system.scheduler.global_queue
        q.push(cold)
        q.push(hot)
        system.scheduler.on_gpu_idle(gpu1)
        # limit 0: cold skipped once (visits=1), hot promoted
        assert hot.gpu_id == gpu1.gpu_id
        assert cold.visits == 1
        system.run()
        # next opportunity: visits(1) > 0 → forced through Alg. 2
        system.scheduler.on_gpu_idle(gpu1)
        assert cold.gpu_id == gpu1.gpu_id


class TestIdleGPUOrdering:
    def test_sorted_by_completed_requests(self, make_request):
        system = build("lalb", gpus=3)
        g0, g1, g2 = system.cluster.gpus
        g1.completed_requests = 5
        g2.completed_requests = 2
        order = [g.gpu_id for g in system.scheduler.idle_gpus_by_frequency()]
        assert order == [g1.gpu_id, g2.gpu_id, g0.gpu_id]

    def test_tie_broken_by_gpu_id(self, make_request):
        system = build("lalb", gpus=3)
        order = [g.gpu_id for g in system.scheduler.idle_gpus_by_frequency()]
        assert order == sorted(order)


class TestSchedulerGuards:
    def test_move_to_local_on_idle_gpu_rejected(self, make_request):
        system = build("lalb")
        r = make_request()
        system.scheduler.global_queue.push(r)
        with pytest.raises(RuntimeError):
            system.scheduler.move_to_local(r, system.cluster.gpus[0])

    def test_lb_policy_never_uses_local_queues(self, make_request):
        system = build("lb", gpus=2)
        for i in range(6):
            system.submit(make_request(f"fn-{i}", "resnet50"))
        system.run()
        assert system.scheduler.local_queues.total() == 0

    def test_no_dispatch_without_idle_gpu(self, make_request):
        system = build("lb", gpus=1)
        gpu = system.cluster.gpus[0]
        gpu.begin_inference()
        r = make_request()
        system.submit(r)
        assert r.gpu_id is None
        assert len(system.scheduler.global_queue) == 1
