"""Unit tests for the inference-request lifecycle record."""

import pytest

from repro.core.request import InferenceRequest, RequestState


def test_request_ids_unique(make_request):
    assert make_request().request_id != make_request().request_id


def test_model_id_is_instance_identity(make_request):
    a = make_request("fn-1", "resnet50")
    b = make_request("fn-2", "resnet50")
    assert a.model_id != b.model_id  # same architecture, distinct cache items


def test_latency_and_derived_times(make_request):
    r = make_request(arrival=10.0)
    r.dispatched_at = 12.0
    r.exec_start_at = 14.0
    r.completed_at = 15.5
    assert r.latency == pytest.approx(5.5)
    assert r.queueing_delay == pytest.approx(2.0)
    assert r.service_time == pytest.approx(3.5)


def test_latency_before_completion_raises(make_request):
    with pytest.raises(RuntimeError):
        _ = make_request().latency
    with pytest.raises(RuntimeError):
        _ = make_request().queueing_delay


def test_invalid_construction(make_instance):
    inst = make_instance()
    with pytest.raises(ValueError):
        InferenceRequest("f", inst, arrival_time=-1.0)
    with pytest.raises(ValueError):
        InferenceRequest("f", inst, arrival_time=0.0, batch_size=0)


def test_initial_state(make_request):
    r = make_request()
    assert r.state is RequestState.QUEUED
    assert r.cache_hit is None
    assert r.false_miss is False
    assert r.visits == 0


def test_sla_tracking(make_instance):
    from repro.core.request import InferenceRequest

    inst = make_instance()
    r = InferenceRequest("f", inst, arrival_time=0.0, sla_s=5.0)
    r.completed_at = 4.0
    assert r.met_sla is True
    r.completed_at = 6.0
    assert r.met_sla is False


def test_no_sla_returns_none(make_request):
    r = make_request()
    r.completed_at = 100.0
    assert r.met_sla is None


def test_invalid_sla_rejected(make_instance):
    import pytest
    from repro.core.request import InferenceRequest

    with pytest.raises(ValueError):
        InferenceRequest("f", make_instance(), arrival_time=0.0, sla_s=0.0)
