"""Behavioral tests for the pure-locality strawman policy (§I motivation)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core.policies import LocalityOnlyPolicy, make_scheduling_policy
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig


def build(gpus=2):
    return FaaSCluster(
        SystemConfig(cluster=ClusterSpec.homogeneous(1, gpus), policy="locality")
    )


def warm(system, instance, gpu):
    gpu.admit(instance.instance_id, instance.occupied_mb).mark_ready(system.sim.now)
    system.cache.on_loaded(gpu.gpu_id, instance)


def test_factory_knows_locality():
    assert isinstance(make_scheduling_policy("locality"), LocalityOnlyPolicy)


def test_waits_for_busy_cached_gpu_even_when_idle_exists(make_request):
    """The defining (bad) behaviour: never miss when a copy exists."""
    system = build()
    gpu0, gpu1 = system.cluster.gpus
    inst = ModelInstance("fn-m", get_profile("resnet50"))
    warm(system, inst, gpu1)
    gpu1.begin_inference()
    system.estimator.set_busy_until(gpu1.gpu_id, 100.0)  # wait >> load time
    r = make_request("fn-m", "resnet50")
    r.model = inst
    system.submit(r)
    # LALB would miss on idle gpu0; locality-only queues behind gpu1
    assert r.gpu_id is None
    assert system.scheduler.local_queues.length(gpu1.gpu_id) == 1
    assert gpu0.is_idle


def test_uncached_requests_use_idle_gpus(make_request):
    system = build()
    r = make_request("fn-new", "vgg19")
    system.submit(r)
    system.run()
    assert r.completed_at is not None
    assert r.cache_hit is False
    assert r.false_miss is False


def test_cached_idle_gpu_dispatch(make_request):
    system = build()
    gpu0, gpu1 = system.cluster.gpus
    inst = ModelInstance("fn-m", get_profile("alexnet"))
    warm(system, inst, gpu1)
    r = make_request("fn-m", "alexnet")
    r.model = inst
    system.submit(r)
    system.run()
    assert r.gpu_id == gpu1.gpu_id
    assert r.cache_hit is True


def test_no_false_misses_by_construction(make_request):
    """Pure locality never re-uploads a model that is cached somewhere.

    Requests are staggered (one at a time) — simultaneous cold arrivals of
    an uncached model can still fan out, which is not a false miss.
    """
    system = build(gpus=3)
    inst = ModelInstance("hot", get_profile("resnet50"))
    reqs = []
    for i in range(6):
        r = make_request(f"hot-{i}", "resnet50", arrival=system.sim.now)
        r.model = inst
        reqs.append(r)
        system.submit(r)
        system.run()
    assert all(r.completed_at is not None for r in reqs)
    assert not any(r.false_miss for r in reqs)
    # a single copy served everything sequentially
    assert system.cache.duplicates("hot") == 1
    assert sum(1 for r in reqs if r.cache_hit) == 5  # all but the cold start
