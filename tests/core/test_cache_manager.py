"""Unit tests for the global Cache Manager."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.core.cache_manager import CacheManager
from repro.core.replacement import LFUPolicy
from repro.datastore import Datastore
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def cluster(sim):
    return build_cluster(sim, ClusterSpec.homogeneous(1, 3))


@pytest.fixture
def ds(sim):
    return Datastore(sim)


@pytest.fixture
def cache(sim, cluster, ds):
    return CacheManager(sim, cluster.gpus, datastore=ds.client())


def g(cluster, i):
    return cluster.gpus[i].gpu_id


class TestLookups:
    def test_empty_cache(self, cache, cluster, make_instance):
        inst = make_instance()
        assert not cache.is_cached_on(inst.instance_id, g(cluster, 0))
        assert not cache.cached_anywhere(inst.instance_id)
        assert cache.locations(inst.instance_id) == []
        assert cache.duplicates(inst.instance_id) == 0

    def test_loaded_model_visible(self, cache, cluster, make_instance):
        inst = make_instance("fn-1")
        cache.on_loaded(g(cluster, 0), inst)
        assert cache.is_cached_on("fn-1", g(cluster, 0))
        assert not cache.is_cached_on("fn-1", g(cluster, 1))
        assert cache.cached_anywhere("fn-1")
        assert cache.locations("fn-1") == [g(cluster, 0)]

    def test_duplicates_across_gpus(self, cache, cluster, make_instance):
        inst = make_instance("hot")
        cache.on_loaded(g(cluster, 0), inst)
        cache.on_loaded(g(cluster, 1), inst)
        cache.on_loaded(g(cluster, 2), inst)
        assert cache.duplicates("hot") == 3
        cache.on_evicted(g(cluster, 1), "hot")
        assert cache.duplicates("hot") == 2
        assert cache.locations("hot") == [g(cluster, 0), g(cluster, 2)]

    def test_eviction_of_last_copy_clears_location(self, cache, cluster, make_instance):
        inst = make_instance("m")
        cache.on_loaded(g(cluster, 0), inst)
        cache.on_evicted(g(cluster, 0), "m")
        assert not cache.cached_anywhere("m")


class TestVictims:
    def test_victims_follow_lru(self, sim, cache, cluster, make_instance):
        gpu = cluster.gpus[0]  # 7800 MB
        a = make_instance("a", "resnet50")      # 1701
        b = make_instance("b", "densenet121")   # 1601
        c = make_instance("c", "vgg11")         # 2903
        for inst in (a, b, c):
            gpu.admit(inst.instance_id, inst.occupied_mb)
            cache.on_loaded(gpu.gpu_id, inst)
        # used: a most recent
        cache.on_used(gpu.gpu_id, "a")
        # 7800 - 6205 = 1595 free; need vgg19 (3947) → evict b (coldest), then c
        victims = cache.choose_victims(gpu.gpu_id, make_instance("d", "vgg19"))
        assert victims == ["b", "c"]

    def test_no_victims_when_fits(self, cache, cluster, make_instance):
        gpu = cluster.gpus[0]
        assert cache.choose_victims(gpu.gpu_id, make_instance("x", "vgg19")) == []

    def test_custom_policy_factory(self, sim, cluster, ds):
        cache = CacheManager(sim, cluster.gpus, policy_factory=LFUPolicy)
        assert isinstance(cache._policies[g(cluster, 0)], LFUPolicy)


class TestDatastoreMirror:
    def test_lru_list_published(self, cache, cluster, ds, make_instance):
        gpu0 = g(cluster, 0)
        cache.on_loaded(gpu0, make_instance("a"))
        cache.on_loaded(gpu0, make_instance("b", "alexnet"))
        cache.on_used(gpu0, "a")
        assert ds.client().get(f"gpu/lru/{gpu0}") == ("b", "a")

    def test_locations_published_and_cleared(self, cache, cluster, ds, make_instance):
        gpu0 = g(cluster, 0)
        inst = make_instance("m")
        cache.on_loaded(gpu0, inst)
        assert ds.client().get("cache/locations/m") == (gpu0,)
        cache.on_evicted(gpu0, "m")
        assert ds.client().get("cache/locations/m") is None


class TestObservers:
    def test_events_emitted_in_order(self, cache, cluster, make_instance):
        events = []
        cache.subscribe(lambda kind, gpu, model, now: events.append((kind, gpu, model)))
        gpu0 = g(cluster, 0)
        inst = make_instance("m")
        cache.on_loaded(gpu0, inst)
        cache.on_used(gpu0, "m")
        cache.on_evicted(gpu0, "m")
        assert events == [("load", gpu0, "m"), ("use", gpu0, "m"), ("evict", gpu0, "m")]
