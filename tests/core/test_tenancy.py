"""Unit tests for multi-tenant isolation (§VI)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core.tenancy import TenancyController, TenantQuota
from repro.models import ModelInstance, get_profile
from repro.runtime import FaaSCluster, SystemConfig
from repro.sim import Simulator


class TestQuotaValidation:
    def test_negative_processes_rejected(self):
        with pytest.raises(ValueError):
            TenantQuota(max_processes=-1)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            TenantQuota(max_memory_fraction=1.5)
        with pytest.raises(ValueError):
            TenantQuota(max_time_fraction=-0.1)

    def test_none_disables_dimension(self):
        q = TenantQuota()
        assert q.max_processes is None


class TestController:
    def make_controller(self, quotas):
        sim = Simulator()
        return sim, TenancyController(
            sim, quotas=quotas, total_memory_mb=10000.0, num_gpus=2
        )

    def test_unknown_tenant_always_allowed(self, make_request):
        sim, tc = self.make_controller({})
        assert tc.allows(make_request(tenant="anyone"))

    def test_process_limit_blocks(self, make_request):
        sim, tc = self.make_controller({"acme": TenantQuota(max_processes=1)})
        inst = ModelInstance("fn-1", get_profile("alexnet"), tenant="acme")
        tc.register_instance(inst)
        r = make_request("fn-1", "alexnet", tenant="acme")
        assert tc.allows(r)
        tc.on_cache_event("load", "g0", "fn-1", 0.0)
        assert not tc.allows(r)
        tc.on_cache_event("evict", "g0", "fn-1", 1.0)
        assert tc.allows(r)

    def test_memory_share_blocks(self, make_request):
        sim, tc = self.make_controller(
            {"acme": TenantQuota(max_memory_fraction=0.2)}  # 2000 MB of 10000
        )
        inst = ModelInstance("fn-1", get_profile("alexnet"), tenant="acme")  # 1437 MB
        tc.register_instance(inst)
        r = make_request("fn-1", "alexnet", tenant="acme")
        assert tc.allows(r)  # 1437 < 2000
        tc.on_cache_event("load", "g0", "fn-1", 0.0)
        # second copy would be 2874 > 2000
        assert not tc.allows(r)

    def test_time_share_blocks(self, make_request):
        sim, tc = self.make_controller({"acme": TenantQuota(max_time_fraction=0.25)})
        r = make_request("fn-1", "alexnet", tenant="acme", arrival=0.0)
        r.dispatched_at = 0.0
        r.completed_at = 6.0  # 6s of 2 GPUs * 10s = 30% > 25%
        sim.schedule(10.0, lambda: None)
        sim.run()
        tc.on_request_complete(r)
        assert not tc.allows(make_request("fn-2", "alexnet", tenant="acme", arrival=10.0))

    def test_usage_introspection(self, make_request):
        sim, tc = self.make_controller({})
        inst = ModelInstance("fn-1", get_profile("alexnet"), tenant="t")
        tc.register_instance(inst)
        tc.on_cache_event("load", "g0", "fn-1", 0.0)
        u = tc.usage("t")
        assert u["processes"] == 1
        assert u["memory_mb"] == pytest.approx(1437)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TenancyController(Simulator(), total_memory_mb=0, num_gpus=1)


class TestEndToEndIsolation:
    def test_over_quota_tenant_waits_while_others_proceed(self, make_request):
        """A tenant at its process limit is bypassed until eviction frees it.

        Single GPU (7800 MB): greedy-1 (resnet50, 1701) loads; greedy-2 is
        blocked by the 1-process quota, so polite's requests overtake it.
        polite-2 (vgg16, 3907) forces the eviction of greedy-1 (the LRU
        victim), after which greedy-2 finally runs.
        """
        config = SystemConfig(
            cluster=ClusterSpec.homogeneous(1, 1),
            policy="lb",
            quotas={"greedy": TenantQuota(max_processes=1)},
        )
        system = FaaSCluster(config)
        g1 = ModelInstance("greedy-1", get_profile("resnet50"), tenant="greedy")
        g2 = ModelInstance("greedy-2", get_profile("alexnet"), tenant="greedy")
        p1 = ModelInstance("polite-1", get_profile("vgg19"), tenant="polite")
        p2 = ModelInstance("polite-2", get_profile("vgg16"), tenant="polite")
        for inst in (g1, g2, p1, p2):
            system.register_model(inst)

        def req(inst):
            r = make_request(inst.instance_id, inst.architecture, tenant=inst.tenant)
            r.model = inst
            return r

        r1, r2, r3, r4 = req(g1), req(g2), req(p1), req(p2)
        for r in (r1, r2, r3, r4):
            system.submit(r)
        system.run()
        assert all(r.completed_at is not None for r in (r1, r2, r3, r4))
        # polite's requests both overtook the quota-blocked greedy-2
        assert r3.exec_start_at < r2.exec_start_at
        assert r4.exec_start_at < r2.exec_start_at
        # and greedy-2 only ran after greedy-1 was evicted
        assert not system.cache.cached_anywhere(g1.instance_id)


class TestNoBusyLoop:
    def test_blocked_requests_do_not_spin_the_scheduler(self, make_request):
        """With only quota-blocked requests queued and idle GPUs available,
        the policy must report no progress (bounded event count) instead of
        spinning forever."""
        config = SystemConfig(
            cluster=ClusterSpec.homogeneous(1, 2),
            policy="lalbo3",
            quotas={"t": TenantQuota(max_processes=0)},  # tenant can never load
        )
        system = FaaSCluster(config)
        inst = ModelInstance("fn-t", get_profile("alexnet"), tenant="t")
        system.register_model(inst)
        for i in range(3):
            r = make_request(f"fn-t{i}", "alexnet", tenant="t")
            r.model = inst
            system.submit(r)
        system.sim.run(max_events=10_000)  # raises SimError if it spins
        assert len(system.scheduler.global_queue) == 3
        assert all(g.is_idle for g in system.cluster.gpus)
