"""Write-path parity: the batched Datastore write path vs. the literal one.

The batched path (``SystemConfig.datastore_batching=True``, the default)
accumulates every scheduling action's Datastore writes and commits them as
one transaction; the literal path issues one revision per put.  Nothing
about *what* the control plane computes may change: on a seeded
2k-request workload (including a mid-run GPU failure) both modes must
produce identical DecisionLogs and an identical final key→value store
state — the batch only removes intermediate revisions, never final values.

It must also actually remove them: the revision count (write
amplification) must drop by at least 3× per scheduling action.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core.request import InferenceRequest
from repro.experiments.bench import seeded_workload
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import FaaSCluster, SystemConfig

SEED = 20230731  # arbitrary but frozen; shared with the write-amp bench
N_REQUESTS = 2000
N_FUNCTIONS = 30


def _workload(seed: int, n_requests: int = N_REQUESTS):
    """The bench's seeded bursty workload — one generator, one definition,
    so the parity assertions and the committed write-amplification numbers
    describe the same run."""
    return seeded_workload(seed, n_requests, N_FUNCTIONS)


def _architecture(fn_idx: int) -> str:
    names = model_names()
    return names[fn_idx % len(names)]


def _run(batched: bool, spec, *, fail_gpu_at: float | None = None, elide: bool = True):
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy="lalbo3",
            datastore_batching=batched,
            pass_elision=elide,
        )
    )
    instances = [
        ModelInstance(f"m{i}", get_profile(_architecture(i))) for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    if fail_gpu_at is not None:
        gpu_id = system.cluster.gpus[2].gpu_id
        system.sim.schedule_at(fail_gpu_at, system.fail_gpu, gpu_id)
        system.sim.schedule_at(fail_gpu_at + 5.0, system.recover_gpu, gpu_id)
    system.run()
    assert len(system.completed) == len(spec)
    decisions = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    # request ids come from a process-global counter: normalize the
    # fn/latency/<request_id> keys onto submission indices for comparison
    state = {}
    for kv in system.datastore.kv.items():
        key = kv.key
        if key.startswith("fn/latency/"):
            key = f"fn/latency/#{id_to_index[int(key.rsplit('/', 1)[1])]}"
        state[key] = kv.value
    return system, decisions, state


class TestBatchedWritePathParity:
    def test_identical_decisions_and_final_state(self):
        spec = _workload(SEED)
        fail_at = spec[900][1]  # while the system is under load
        sys_lit, dec_lit, state_lit = _run(False, spec, fail_gpu_at=fail_at)
        sys_bat, dec_bat, state_bat = _run(True, spec, fail_gpu_at=fail_at)
        assert any(kind.value == "resubmit" for _, kind, *_ in dec_bat)
        assert dec_bat == dec_lit
        assert state_bat == state_lit

    def test_batching_cuts_revisions_at_least_3x(self):
        spec = _workload(SEED + 1)
        sys_lit, dec_lit, _ = _run(False, spec)
        sys_bat, dec_bat, _ = _run(True, spec)
        assert dec_bat == dec_lit
        rev_lit = sys_lit.datastore.kv.revision
        rev_bat = sys_bat.datastore.kv.revision
        actions = len(dec_bat)
        assert rev_bat / actions * 3 <= rev_lit / actions
        # the logical write stream is identical; batching only changes
        # how many revisions (commits) carry it
        assert (
            sys_bat.datastore.stats.logical_writes
            == sys_lit.datastore.stats.logical_writes
        )

    def test_watchers_see_coalesced_batches_with_same_final_values(self):
        spec = _workload(SEED + 2, n_requests=300)

        def run_with_watch(batched):
            system = FaaSCluster(
                SystemConfig(
                    cluster=ClusterSpec.homogeneous(1, 4),
                    datastore_batching=batched,
                )
            )
            instances = [
                ModelInstance(f"m{i}", get_profile(_architecture(i)))
                for i in range(N_FUNCTIONS)
            ]
            events = []
            system.datastore.watches.watch(
                "gpu/lru/", events.append, prefix=True
            )
            for fn, t in spec:
                system.submit_at(
                    InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
                )
            system.run()
            final = {ev.key: ev.value for ev in events}
            return events, final

        lit_events, lit_final = run_with_watch(False)
        bat_events, bat_final = run_with_watch(True)
        # last-write-wins coalescing: strictly fewer notifications, but the
        # last observed value per key is identical
        assert len(bat_events) < len(lit_events)
        assert bat_final == lit_final

    def test_batching_is_the_default(self):
        assert SystemConfig().datastore_batching is True

    def test_pass_elision_dimension_preserves_decisions_and_state(self):
        """Pass elision composes with both write paths: every combination
        of (batched, elision) commits the same final Datastore state and
        decision sequence, including through a GPU failure."""
        spec = _workload(SEED + 1, n_requests=1200)
        fail_at = spec[500][1]
        _, ref_dec, ref_state = _run(True, spec, fail_gpu_at=fail_at, elide=False)
        for batched in (True, False):
            _, dec, state = _run(batched, spec, fail_gpu_at=fail_at, elide=True)
            assert dec == ref_dec
            assert state == ref_state


class TestIncrementalEstimatorParity:
    """Satellite check: the running queued-cost sums match a reference
    recompute throughout a real run (assertions ride completion events)."""

    def test_running_sums_match_reference_walk_during_run(self):
        spec = _workload(SEED + 3, n_requests=500)
        system = FaaSCluster(
            SystemConfig(cluster=ClusterSpec.homogeneous(2, 4), policy="lalbo3")
        )
        instances = [
            ModelInstance(f"m{i}", get_profile(_architecture(i)))
            for i in range(N_FUNCTIONS)
        ]
        checks = []

        def check(_request):
            for gpu in system.cluster.gpus:
                incremental = system.estimator.queued_cost(gpu)
                reference = system.estimator.reference_queued_cost(gpu)
                checks.append(incremental == pytest.approx(reference, abs=1e-9))

        system.subscribe_completion(check)
        for fn, t in spec:
            system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t))
        system.run()
        assert checks and all(checks)
