"""Unit tests for the global and local scheduler queues."""

import pytest

from repro.core.queues import GlobalQueue, LocalQueues


class TestGlobalQueue:
    def test_arrival_order_preserved(self, make_request):
        q = GlobalQueue()
        reqs = [make_request(f"fn-{i}", arrival=float(i)) for i in range(5)]
        for r in reqs:
            q.push(r)
        assert list(q) == reqs
        assert q.head() is reqs[0]
        assert len(q) == 5

    def test_duplicate_push_rejected(self, make_request):
        q = GlobalQueue()
        r = make_request()
        q.push(r)
        with pytest.raises(ValueError):
            q.push(r)

    def test_remove_middle_keeps_order(self, make_request):
        q = GlobalQueue()
        reqs = [make_request(f"fn-{i}") for i in range(3)]
        for r in reqs:
            q.push(r)
        q.remove(reqs[1])
        assert list(q) == [reqs[0], reqs[2]]
        assert reqs[1] not in q

    def test_remove_absent_raises(self, make_request):
        q = GlobalQueue()
        with pytest.raises(KeyError):
            q.remove(make_request())

    def test_model_index_returns_oldest_first(self, make_request):
        q = GlobalQueue()
        a1 = make_request("fn-a", arrival=0.0)
        b = make_request("fn-b", arrival=1.0)
        a2_req = make_request("fn-a", arrival=2.0)
        for r in (a1, b, a2_req):
            q.push(r)
        assert q.first_for_model(a1.model_id) is a1
        q.remove(a1)
        assert q.first_for_model(a2_req.model_id) is a2_req

    def test_model_index_cleared_on_removal(self, make_request):
        q = GlobalQueue()
        r = make_request("fn-x")
        q.push(r)
        q.remove(r)
        assert q.first_for_model(r.model_id) is None
        assert q.queued_models() == set()

    def test_queued_models_set(self, make_request):
        q = GlobalQueue()
        a = make_request("fn-a")
        b = make_request("fn-b")
        q.push(a)
        q.push(b)
        assert q.queued_models() == {a.model_id, b.model_id}

    def test_iteration_snapshot_allows_mutation(self, make_request):
        q = GlobalQueue()
        reqs = [make_request(f"fn-{i}") for i in range(4)]
        for r in reqs:
            q.push(r)
        seen = []
        for r in q:
            seen.append(r)
            if r is reqs[0]:
                q.remove(reqs[2])  # mutate during iteration
        assert seen == reqs  # snapshot iteration sees the original order

    def test_empty_queue(self):
        q = GlobalQueue()
        assert q.head() is None
        assert len(q) == 0
        assert list(q) == []


class TestLocalQueues:
    def test_fifo_per_gpu(self, make_request):
        lq = LocalQueues()
        a = make_request("fn-a")
        b = make_request("fn-b")
        lq.push("g0", a)
        lq.push("g0", b)
        lq.push("g1", make_request("fn-c"))
        assert lq.length("g0") == 2
        assert lq.peek("g0") is a
        assert lq.pop("g0") is a
        assert lq.pop("g0") is b
        assert lq.total() == 1

    def test_pop_empty_raises(self):
        lq = LocalQueues()
        with pytest.raises(IndexError):
            lq.pop("g0")

    def test_push_marks_request_local(self, make_request):
        from repro.core.request import RequestState

        lq = LocalQueues()
        r = make_request()
        lq.push("g0", r)
        assert r.state is RequestState.LOCAL_QUEUED

    def test_non_empty_gpus(self, make_request):
        lq = LocalQueues()
        lq.push("g2", make_request())
        assert lq.non_empty_gpus() == ["g2"]
        lq.pop("g2")
        assert lq.non_empty_gpus() == []

    def test_requests_returns_copy(self, make_request):
        lq = LocalQueues()
        r = make_request()
        lq.push("g0", r)
        snapshot = lq.requests("g0")
        snapshot.clear()
        assert lq.length("g0") == 1
