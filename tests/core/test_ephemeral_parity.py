"""Ephemeral-tier parity: the fast lane must change *costs*, never
*behaviour*.

With ``SystemConfig(ephemeral_prefixes=EPHEMERAL_HOT_PREFIXES)`` the
high-churn status keys skip MVCC history, event-log records, and lineage
— but every scheduling input is a *live* read, so on a seeded workload
the tier on and off must produce identical DecisionLogs and an identical
normalized final key→value store state, across the write-path matrix
(batched × pass-elision), through GPU failure/recovery, and under a full
chaos profile.  The structural claim is asserted too: with the tier on,
the hot prefixes leave zero history entries and zero event-log records.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core.request import InferenceRequest
from repro.experiments.bench import seeded_workload
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import EPHEMERAL_HOT_PREFIXES, FaaSCluster, SystemConfig

SEED = 20230801  # arbitrary but frozen
N_FUNCTIONS = 30


def _workload(seed: int, n_requests: int):
    return seeded_workload(seed, n_requests, N_FUNCTIONS)


def _architecture(fn_idx: int) -> str:
    names = model_names()
    return names[fn_idx % len(names)]


def _run(
    spec,
    *,
    ephemeral: bool,
    batched: bool = True,
    elide: bool = True,
    fail_gpu_at: float | None = None,
    **config_kwargs,
):
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy="lalbo3",
            datastore_batching=batched,
            pass_elision=elide,
            ephemeral_prefixes=EPHEMERAL_HOT_PREFIXES if ephemeral else (),
            **config_kwargs,
        )
    )
    instances = [
        ModelInstance(f"m{i}", get_profile(_architecture(i))) for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    if fail_gpu_at is not None:
        gpu_id = system.cluster.gpus[2].gpu_id
        system.sim.schedule_at(fail_gpu_at, system.fail_gpu, gpu_id)
        system.sim.schedule_at(fail_gpu_at + 5.0, system.recover_gpu, gpu_id)
    system.run()
    decisions = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    # normalize on *values*: ephemeral KeyValues are lineage-free by
    # design (create_revision == mod_revision, version pinned at 1), so
    # revision metadata is intentionally allowed to differ — what must
    # not differ is which keys are live and what they hold.  Request ids
    # come from a process-global counter: fold fn/latency/<request_id>
    # keys onto submission indices for cross-run comparison.
    state = {}
    for kv in system.datastore.kv.items():
        key = kv.key
        if key.startswith("fn/latency/"):
            key = f"fn/latency/#{id_to_index[int(key.rsplit('/', 1)[1])]}"
        state[key] = kv.value
    return system, decisions, state


def _assert_no_hot_residue(system):
    kv = system.datastore.kv
    hot = [k for k in kv._history if k.startswith(EPHEMERAL_HOT_PREFIXES)]
    assert hot == []
    logged = [k for k in kv._event_keys if k.startswith(EPHEMERAL_HOT_PREFIXES)]
    assert logged == []
    assert kv.ephemeral_writes > 0


class TestEphemeralTierParity:
    def test_identical_decisions_and_state_through_gpu_failure(self):
        spec = _workload(SEED, 2000)
        fail_at = spec[900][1]  # while the system is under load
        _, dec_off, state_off = _run(spec, ephemeral=False, fail_gpu_at=fail_at)
        sys_on, dec_on, state_on = _run(spec, ephemeral=True, fail_gpu_at=fail_at)
        assert any(kind.value == "resubmit" for _, kind, *_ in dec_on)
        assert dec_on == dec_off
        assert state_on == state_off
        _assert_no_hot_residue(sys_on)

    def test_parity_across_write_path_matrix(self):
        """The tier composes with every (batched, elision) combination:
        all eight cells agree on decisions and normalized final state."""
        spec = _workload(SEED + 1, 1200)
        reference = None
        for batched in (True, False):
            for elide in (True, False):
                for ephemeral in (False, True):
                    system, dec, state = _run(
                        spec, ephemeral=ephemeral, batched=batched, elide=elide
                    )
                    if reference is None:
                        reference = (dec, state)
                    assert dec == reference[0]
                    assert state == reference[1]
                    if ephemeral:
                        _assert_no_hot_residue(system)

    def test_parity_under_chaos_profile(self):
        """Fault injection exercises the health watchdog, leases, drains,
        and resubmission — none of which may observe the tier."""
        spec = _workload(SEED + 2, 1500)
        _, dec_off, state_off = _run(
            spec, ephemeral=False, fault_profile="recoverable", seed=7
        )
        sys_on, dec_on, state_on = _run(
            spec, ephemeral=True, fault_profile="recoverable", seed=7
        )
        assert dec_on == dec_off
        assert state_on == state_off
        _assert_no_hot_residue(sys_on)

    def test_parity_under_bounded_retention(self):
        """The tier's target configuration: autocompaction plus the
        latency-record sliding window.  Decisions and final values stay
        identical while the tier-on store retains (near) zero history."""
        spec = _workload(SEED + 3, 1500)
        kwargs = dict(kv_autocompact_keep=300, latency_log_keep=300)
        sys_off, dec_off, state_off = _run(spec, ephemeral=False, **kwargs)
        sys_on, dec_on, state_on = _run(spec, ephemeral=True, **kwargs)
        assert dec_on == dec_off
        assert state_on == state_off
        _assert_no_hot_residue(sys_on)
        # the structural win the commit-path bench gates on
        assert (
            sys_on.datastore.kv.history_entry_count()
            < sys_off.datastore.kv.history_entry_count()
        )

    def test_latency_window_stays_bounded_without_history_growth(self):
        spec = _workload(SEED + 4, 1500)
        keep = 100
        system, _, _ = _run(spec, ephemeral=True, latency_log_keep=keep)
        kv = system.datastore.kv
        latency_keys = [k for k in kv.keys() if k.startswith("fn/latency/")]
        # one window per GPU manager node; each bounded by `keep`
        assert latency_keys
        assert len(latency_keys) <= keep * len(system.cluster.nodes)
        assert kv.history_entry_count() == 0 or not any(
            k.startswith("fn/latency/") for k in kv._history
        )

    def test_default_config_keeps_tier_off(self):
        assert SystemConfig().ephemeral_prefixes == ()

    def test_hot_prefixes_cover_the_per_action_keys(self):
        for prefix in ("gpu/status/", "gpu/finish_time/", "fn/latency/", "gpu/lru/"):
            assert prefix in EPHEMERAL_HOT_PREFIXES
