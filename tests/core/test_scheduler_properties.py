"""Property-based tests: system-wide scheduling invariants.

Random workloads (hypothesis-generated arrival patterns, model mixes, and
policies) are driven through the full runtime; afterwards the invariants
that hold for *any* correct schedule are checked:

* every submitted request completes exactly once;
* GPU memory is never oversubscribed;
* a GPU never executes two requests at once (the paper's GPU Managers
  enforce one request at a time);
* cache state and device residency agree at all times;
* every completed request has a consistent timestamp chain.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core.request import InferenceRequest, RequestState
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import FaaSCluster, SystemConfig

_ARCHS = model_names()

_workloads = st.lists(
    st.tuples(
        st.integers(0, 7),          # function index (model instance)
        st.floats(0.0, 120.0),      # arrival time
    ),
    min_size=1,
    max_size=60,
)
_policies = st.sampled_from(["lb", "lalb", "lalbo3"])
_gpu_counts = st.integers(1, 4)


def _run(workload, policy, gpus, replacement="lru"):
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(1, gpus),
            policy=policy,
            replacement=replacement,
        )
    )
    instances = {
        i: ModelInstance(f"fn-{i}", get_profile(_ARCHS[(i * 5) % len(_ARCHS)]))
        for i in range(8)
    }
    requests = []
    for fn_idx, arrival in sorted(workload, key=lambda x: x[1]):
        r = InferenceRequest(
            function_name=f"fn-{fn_idx}",
            model=instances[fn_idx],
            arrival_time=arrival,
        )
        requests.append(r)
        system.submit_at(r)
    system.run()
    return system, requests


@given(_workloads, _policies, _gpu_counts)
@settings(max_examples=40, deadline=None)
def test_every_request_completes_exactly_once(workload, policy, gpus):
    system, requests = _run(workload, policy, gpus)
    assert len(system.completed) == len(requests)
    assert {r.request_id for r in system.completed} == {r.request_id for r in requests}
    assert all(r.state is RequestState.COMPLETED for r in requests)


@given(_workloads, _policies, _gpu_counts)
@settings(max_examples=40, deadline=None)
def test_memory_never_oversubscribed_and_residency_consistent(workload, policy, gpus):
    system, _ = _run(workload, policy, gpus)
    for gpu in system.cluster.gpus:
        assert gpu.used_mb <= gpu.memory_mb + 1e-6
        # device residency and cache-manager view agree
        for model_id in gpu.resident_models():
            assert system.cache.is_cached_on(model_id, gpu.gpu_id)
        for model_id in system.cache.lru_list(gpu.gpu_id):
            assert gpu.has_model(model_id)


@given(_workloads, _policies, _gpu_counts)
@settings(max_examples=40, deadline=None)
def test_timestamp_chains_are_consistent(workload, policy, gpus):
    system, requests = _run(workload, policy, gpus)
    for r in requests:
        assert r.arrival_time <= r.dispatched_at <= r.exec_start_at < r.completed_at
        assert r.latency >= 0
        # service time is at least the model's inference time; with a miss
        # it also covers the load
        min_service = r.model.profile.infer_time(r.batch_size)
        if r.cache_hit is False:
            min_service += r.model.profile.load_time_s
        assert r.service_time >= min_service - 1e-9


@given(_workloads, _policies, _gpu_counts)
@settings(max_examples=30, deadline=None)
def test_gpu_serializes_execution(workload, policy, gpus):
    """No two requests may overlap in execution on the same GPU."""
    system, requests = _run(workload, policy, gpus)
    by_gpu: dict[str, list] = {}
    for r in requests:
        by_gpu.setdefault(r.gpu_id, []).append((r.dispatched_at, r.completed_at))
    for intervals in by_gpu.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9, "overlapping executions on one GPU"


@given(_workloads, st.sampled_from(["lru", "fifo", "lfu", "size"]))
@settings(max_examples=25, deadline=None)
def test_invariants_hold_for_every_replacement_policy(workload, replacement):
    system, requests = _run(workload, "lalbo3", 2, replacement=replacement)
    assert len(system.completed) == len(requests)
    for gpu in system.cluster.gpus:
        assert gpu.used_mb <= gpu.memory_mb + 1e-6


@given(_workloads, _policies)
@settings(max_examples=20, deadline=None)
def test_queues_fully_drain(workload, policy):
    system, _ = _run(workload, policy, 2)
    assert len(system.scheduler.global_queue) == 0
    assert system.scheduler.local_queues.total() == 0
    assert all(g.is_idle for g in system.cluster.gpus)


@given(_workloads, _policies)
@settings(max_examples=20, deadline=None)
def test_miss_accounting_matches_cache_events(workload, policy):
    """Number of misses == number of model-load cache events."""
    system, requests = _run(workload, policy, 3)
    misses = sum(1 for r in requests if r.cache_hit is False)
    loads = sum(
        1 for r in requests if r.cache_hit is False
    )  # one process start per miss
    assert misses == loads
    # every false miss is a miss
    assert all(not (r.false_miss and r.cache_hit) for r in requests)
