"""Property-based tests for the scheduler queues (hypothesis)."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import GlobalQueue
from repro.core.request import InferenceRequest
from repro.models import ModelInstance, get_profile

_PROFILE = get_profile("alexnet")

# operations: ("push", model_idx, arrival) | ("pop_head",) | ("remove_for_model", model_idx)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 4), st.floats(0, 100)),
        st.tuples(st.just("pop_head")),
        st.tuples(st.just("remove_for_model"), st.integers(0, 4)),
    ),
    max_size=60,
)


def _run_ops(ops):
    """Drive the GlobalQueue and a naive reference model side by side."""
    q = GlobalQueue()
    reference: OrderedDict[int, InferenceRequest] = OrderedDict()
    instances = {i: ModelInstance(f"m{i}", _PROFILE) for i in range(5)}
    arrival_clock = 0.0
    for op in ops:
        if op[0] == "push":
            _, idx, extra = op
            arrival_clock += extra  # arrivals non-decreasing, like real submissions
            r = InferenceRequest(f"fn{idx}", instances[idx], arrival_time=arrival_clock)
            q.push(r)
            reference[r.request_id] = r
        elif op[0] == "pop_head":
            head = q.head()
            if head is not None:
                q.remove(head)
                del reference[head.request_id]
        else:  # remove_for_model
            _, idx = op
            target = q.first_for_model(instances[idx].instance_id)
            if target is not None:
                q.remove(target)
                del reference[target.request_id]
    return q, reference, instances


@given(_ops)
@settings(max_examples=80, deadline=None)
def test_queue_matches_reference_order(ops):
    q, reference, _ = _run_ops(ops)
    assert [r.request_id for r in q] == list(reference)
    assert len(q) == len(reference)
    head = q.head()
    if reference:
        assert head is next(iter(reference.values()))
    else:
        assert head is None


@given(_ops)
@settings(max_examples=80, deadline=None)
def test_model_index_always_consistent(ops):
    """first_for_model must always equal a linear scan of the queue."""
    q, reference, instances = _run_ops(ops)
    for inst in instances.values():
        expected = next(
            (r for r in reference.values() if r.model_id == inst.instance_id), None
        )
        assert q.first_for_model(inst.instance_id) is expected
    # queued_models is exactly the distinct models present
    assert q.queued_models() == {r.model_id for r in reference.values()}


@given(_ops)
@settings(max_examples=50, deadline=None)
def test_arrival_order_is_nondecreasing(ops):
    q, _, _ = _run_ops(ops)
    arrivals = [r.arrival_time for r in q]
    assert arrivals == sorted(arrivals)
