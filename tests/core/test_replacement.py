"""Unit tests for cache-replacement policies."""

import pytest

from repro.core.replacement import (
    BeladyPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    SizeAwarePolicy,
    make_policy,
)


class TestLRU:
    def test_eviction_order_is_coldest_first(self):
        p = LRUPolicy()
        p.on_insert("a", 100, now=0.0)
        p.on_insert("b", 100, now=1.0)
        p.on_insert("c", 100, now=2.0)
        p.on_access("a", now=3.0)
        assert p.eviction_order() == ["b", "c", "a"]
        assert p.lru_list() == ["b", "c", "a"]

    def test_insert_counts_as_most_recent(self):
        p = LRUPolicy()
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 1.0)
        assert p.eviction_order()[0] == "a"

    def test_double_insert_rejected(self):
        p = LRUPolicy()
        p.on_insert("a", 1, 0.0)
        with pytest.raises(ValueError):
            p.on_insert("a", 1, 1.0)

    def test_access_unknown_rejected(self):
        with pytest.raises(KeyError):
            LRUPolicy().on_access("ghost", 0.0)

    def test_evict_removes_from_order(self):
        p = LRUPolicy()
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 1.0)
        p.on_evict("a")
        assert p.eviction_order() == ["b"]
        assert p.resident == {"b"}

    def test_evict_unknown_rejected(self):
        with pytest.raises(KeyError):
            LRUPolicy().on_evict("ghost")


class TestVictimSelection:
    def test_no_victims_when_fits(self):
        p = LRUPolicy()
        p.on_insert("a", 3000, 0.0)
        assert p.choose_victims(needed_mb=1000, free_mb=2000) == []

    def test_evicts_coldest_until_space(self):
        p = LRUPolicy()
        p.on_insert("a", 2000, 0.0)
        p.on_insert("b", 2000, 1.0)
        p.on_insert("c", 2000, 2.0)
        # free 1800, need 3900 → evict a (coldest), then b
        victims = p.choose_victims(needed_mb=3900, free_mb=1800)
        assert victims == ["a", "b"]

    def test_pinned_models_skipped(self):
        p = LRUPolicy()
        p.on_insert("a", 2000, 0.0)
        p.on_insert("b", 2000, 1.0)
        victims = p.choose_victims(needed_mb=2000, free_mb=100, pinned=["a"])
        assert victims == ["b"]

    def test_impossible_raises_memory_error(self):
        p = LRUPolicy()
        p.on_insert("a", 1000, 0.0)
        with pytest.raises(MemoryError):
            p.choose_victims(needed_mb=9000, free_mb=500)

    def test_exact_boundary_no_eviction(self):
        p = LRUPolicy()
        p.on_insert("a", 1000, 0.0)
        assert p.choose_victims(needed_mb=500, free_mb=500) == []


class TestFIFO:
    def test_ignores_access_pattern(self):
        p = FIFOPolicy()
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 1.0)
        p.on_access("a", 2.0)
        assert p.eviction_order() == ["a", "b"]


class TestLFU:
    def test_fewest_uses_evicted_first(self):
        p = LFUPolicy()
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 0.5)
        p.on_access("a", 1.0)
        p.on_access("a", 2.0)
        p.on_access("b", 3.0)
        assert p.eviction_order() == ["b", "a"]

    def test_ties_broken_by_recency(self):
        p = LFUPolicy()
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 1.0)
        p.on_access("a", 2.0)
        p.on_access("b", 3.0)
        assert p.eviction_order() == ["a", "b"]  # same count; a used longer ago


class TestSizeAware:
    def test_largest_first(self):
        p = SizeAwarePolicy()
        p.on_insert("small", 1000, 0.0)
        p.on_insert("big", 4000, 1.0)
        p.on_insert("mid", 2000, 2.0)
        assert p.eviction_order() == ["big", "mid", "small"]

    def test_size_ties_broken_lru(self):
        p = SizeAwarePolicy()
        p.on_insert("a", 1000, 0.0)
        p.on_insert("b", 1000, 1.0)
        p.on_access("a", 5.0)
        assert p.eviction_order() == ["b", "a"]


class TestBelady:
    def test_farthest_future_use_evicted_first(self):
        future = {"a": 10.0, "b": 100.0, "c": 50.0}
        p = BeladyPolicy(next_use=lambda m, now: future[m])
        for i, m in enumerate("abc"):
            p.on_insert(m, 1, float(i))
        assert p.eviction_order() == ["b", "c", "a"]

    def test_never_used_again_is_first_victim(self):
        future = {"a": float("inf"), "b": 5.0}
        p = BeladyPolicy(next_use=lambda m, now: future[m])
        p.on_insert("a", 1, 0.0)
        p.on_insert("b", 1, 0.0)
        assert p.eviction_order()[0] == "a"


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("fifo", FIFOPolicy),
        ("lfu", LFUPolicy),
        ("size", SizeAwarePolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("belady")  # needs its oracle, not creatable by name
