"""Unit tests for the experiment runner and report helpers."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import (
    ExperimentConfig,
    format_reduction,
    format_table,
    reduction_pct,
    run_experiment,
)
from repro.traces import AzureTraceConfig, SyntheticAzureTrace

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=300, mean_rate_per_minute=2000, seed=5)
)
SMALL = ExperimentConfig(
    working_set=6,
    minutes=2,
    requests_per_minute=60,
    cluster=ClusterSpec.homogeneous(1, 4),
)


class TestRunExperiment:
    def test_completes_all_requests(self):
        s = run_experiment(SMALL, trace=SMALL_TRACE)
        assert s.completed_requests == 120
        assert s.avg_latency_s > 0
        assert 0.0 <= s.cache_miss_ratio <= 1.0
        assert 0.0 <= s.sm_utilization <= 1.0

    def test_deterministic(self):
        a = run_experiment(SMALL, trace=SMALL_TRACE)
        b = run_experiment(SMALL, trace=SMALL_TRACE)
        assert a.avg_latency_s == b.avg_latency_s
        assert a.cache_miss_ratio == b.cache_miss_ratio

    def test_seed_changes_workload(self):
        from dataclasses import replace

        a = run_experiment(SMALL, trace=SMALL_TRACE)
        b = run_experiment(replace(SMALL, seed=1), trace=SMALL_TRACE)
        assert a.avg_latency_s != b.avg_latency_s

    def test_label(self):
        assert ExperimentConfig(policy="lb").label() == "lb"
        assert ExperimentConfig(policy="lalbo3", o3_limit=7).label() == "lalbo3(limit=7)"

    def test_false_miss_never_exceeds_miss(self):
        s = run_experiment(SMALL, trace=SMALL_TRACE)
        assert s.false_miss_ratio <= s.cache_miss_ratio


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_reduction_pct(self):
        assert reduction_pct(100.0, 3.0) == pytest.approx(97.0)
        assert reduction_pct(2.0, 2.0) == 0.0
        with pytest.raises(ValueError):
            reduction_pct(0.0, 1.0)

    def test_format_reduction(self):
        text = format_reduction("latency", 10.0, 1.0)
        assert "90.0% reduction" in text
