"""Sweep orchestrator: determinism, resume, crash isolation, store round-trip.

The contract under test (ISSUE 4 / ROADMAP "sharded replay driver"):

* sharded execution is invisible in the results — workers=1 and workers=4
  produce **byte-identical** merged payloads and figure data;
* the result store makes sweeps resumable — an interrupted sweep re-executes
  only the missing cells and completes with identical output;
* a crashing worker process is retried per-cell instead of killing the
  sweep;
* routing the §V consumers through the executor changed nothing: the
  workers=1 grid equals a direct ``run_experiment`` loop, summary for
  summary.
"""

import json
import multiprocessing
import os
import shutil
from dataclasses import replace

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import (
    ExperimentConfig,
    ResultStore,
    SweepCell,
    SweepSpec,
    execute_cell,
    run_cells,
    run_experiment,
    run_policy_grid,
)
from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import SweepError
from repro.traces import AzureTraceConfig, SyntheticAzureTrace

#: small but non-trivial: enough requests to produce hits, misses, and a
#: multi-row timeline in well under a second per cell
TRACE_CFG = AzureTraceConfig(num_functions=200, mean_rate_per_minute=1500, seed=17)
TRACE = SyntheticAzureTrace(TRACE_CFG)
BASE = ExperimentConfig(
    minutes=1, requests_per_minute=40, cluster=ClusterSpec.homogeneous(1, 3)
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _grid_cells(policies=("lb", "lalb", "lalbo3"), working_sets=(4, 6)):
    return [
        SweepCell(
            config=replace(BASE, policy=p, working_set=ws), trace=TRACE_CFG
        )
        for ws in working_sets
        for p in policies
    ]


class TestCellIdentity:
    def test_stable_and_content_addressed(self):
        a = SweepCell(config=replace(BASE, policy="lalb"), trace=TRACE_CFG)
        b = SweepCell(config=replace(BASE, policy="lalb"), trace=TRACE_CFG)
        assert a.cell_id == b.cell_id
        assert len(a.cell_id) == 16

    def test_any_config_drift_changes_the_id(self):
        base = SweepCell(config=BASE, trace=TRACE_CFG)
        assert SweepCell(config=replace(BASE, seed=1), trace=TRACE_CFG).cell_id != base.cell_id
        assert SweepCell(config=BASE, trace=AzureTraceConfig(seed=1)).cell_id != base.cell_id
        assert (
            SweepCell(config=BASE, trace=TRACE_CFG, timeline_period_s=1.0).cell_id
            != base.cell_id
        )

    def test_spec_expansion_folds_o3_duplicates(self):
        spec = SweepSpec(
            policies=("lb", "lalbo3"), working_sets=(15,), o3_limits=(5, 25)
        )
        cells = spec.cells()
        # lb ignores the O3 axis: 1 lb cell + 2 lalbo3 cells
        assert len(cells) == 3
        assert len({c.cell_id for c in cells}) == 3


class TestStore:
    def test_cell_result_roundtrip(self, tmp_path):
        cell = SweepCell(config=replace(BASE, working_set=4), trace=TRACE_CFG)
        result = execute_cell(cell, trace=TRACE)
        store = ResultStore(tmp_path / "store")
        store.put(result)
        loaded = store.get(cell.cell_id)
        assert loaded is not None
        assert loaded.summary == result.summary
        assert loaded.per_architecture == result.per_architecture
        assert loaded.timeline_fields == result.timeline_fields
        assert loaded.timeline == result.timeline
        assert loaded.config == cell.canonical_payload()

    def test_reserialization_is_byte_identical(self, tmp_path):
        cell = SweepCell(config=replace(BASE, working_set=4), trace=TRACE_CFG)
        result = execute_cell(cell, trace=TRACE)
        store = ResultStore(tmp_path / "store")
        path = store.put(result)
        first = path.read_bytes()
        store.put(store.get(cell.cell_id))
        assert path.read_bytes() == first

    def test_version_guard(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root)
        meta = root / "store.meta.json"
        meta.write_text(json.dumps({"store": "repro-sweep-results", "version": 99}))
        from repro.experiments.store import StoreVersionError

        with pytest.raises(StoreVersionError):
            ResultStore(root)

    def test_stale_code_fingerprint_is_detected(self, tmp_path):
        """Cell IDs hash config, not code: a store written by a different
        code version must be rejected instead of silently reused."""
        from repro.experiments.store import StoreVersionError, source_fingerprint

        root = tmp_path / "store"
        ResultStore(root)  # writes the current fingerprint
        ResultStore(root)  # same code: reopens fine
        meta = root / "store.meta.json"
        payload = json.loads(meta.read_text())
        assert payload["code_fingerprint"] == source_fingerprint()
        payload["code_fingerprint"] = "0123456789abcdef"  # an older checkout
        meta.write_text(json.dumps(payload))
        with pytest.raises(StoreVersionError, match="code version"):
            ResultStore(root)
        # a pre-fingerprint store (no field at all) is stale by definition
        del payload["code_fingerprint"]
        meta.write_text(json.dumps(payload))
        with pytest.raises(StoreVersionError, match="code version"):
            ResultStore(root)

    def test_source_fingerprint_is_stable_within_a_session(self):
        from repro.experiments.store import source_fingerprint

        a = source_fingerprint()
        assert a == source_fingerprint()
        assert len(a) == 16 and int(a, 16) >= 0

    def test_timeline_matrix_shape(self):
        cell = SweepCell(
            config=replace(BASE, working_set=4), trace=TRACE_CFG, timeline_period_s=10.0
        )
        result = execute_cell(cell, trace=TRACE)
        # boundaries are only recorded when an event crosses them, so the
        # count is (last event time // period), not a fixed number
        assert len(result.timeline) >= 4  # ~60 s of activity / 10 s period
        assert all(len(row) == len(result.timeline_fields) for row in result.timeline)
        times = [row[0] for row in result.timeline]
        assert times == sorted(times)
        completed = [row[result.timeline_fields.index("completed_requests")]
                     for row in result.timeline]
        assert completed == sorted(completed)
        assert completed[-1] <= result.summary.completed_requests


class TestExecutorParity:
    def test_execute_cell_matches_run_experiment(self):
        cfg = replace(BASE, policy="lalbo3", working_set=6)
        direct = run_experiment(cfg, trace=TRACE)
        via_cell = execute_cell(SweepCell(config=cfg, trace=TRACE_CFG), trace=TRACE)
        assert via_cell.summary == direct

    def test_policy_grid_matches_direct_loop(self):
        grid = run_policy_grid(
            (4, 6), ("lb", "lalb"), base=BASE, trace=TRACE, progress=False
        )
        for (policy, ws), summary in grid.items():
            direct = run_experiment(
                replace(BASE, policy=policy, working_set=ws), trace=TRACE
            )
            assert summary == direct


class TestShardingDeterminism:
    def test_workers_1_vs_4_byte_identical(self, tmp_path):
        cells = _grid_cells()
        seq = run_cells(cells, workers=1, store=tmp_path / "seq", progress=False)
        par = run_cells(cells, workers=4, store=tmp_path / "par", progress=False)
        assert seq.merged_json() == par.merged_json()
        assert list(seq.cells) == sorted(c.cell_id for c in cells)
        # figure data (the summaries the fig tables read) identical too
        for cell in cells:
            assert seq.summary_for(cell) == par.summary_for(cell)
        assert par.stats.executed == len(cells)

    def test_interrupted_sweep_resumes_with_identical_output(self, tmp_path):
        cells = _grid_cells()
        full_store = tmp_path / "full"
        reference = run_cells(cells, workers=1, store=full_store, progress=False)

        # an interrupted sweep == a store holding only the cells that
        # finished before the kill (writes are atomic, so nothing torn)
        partial_store = tmp_path / "partial"
        ResultStore(partial_store)
        survivors = sorted(c.cell_id for c in cells)[: len(cells) // 2]
        for cid in survivors:
            shutil.copy(
                ResultStore(full_store).path(cid), ResultStore(partial_store).path(cid)
            )
        resumed = run_cells(cells, workers=2, store=partial_store, progress=False)
        assert resumed.stats.cache_hits == len(survivors)
        assert resumed.stats.executed == len(cells) - len(survivors)
        assert resumed.merged_json() == reference.merged_json()

    def test_fig5_grid_workers_parity_paper_scale(self, tmp_path):
        """The satellite's literal contract: workers=1 vs workers=4 over
        the fig-5 grid yield byte-identical merged summaries and figure
        data (paper-scale cells, ~2 s per run)."""
        from repro.experiments import format_fig5
        from repro.experiments.fig5 import run_fig5

        g1 = run_fig5(workers=1, store=tmp_path / "seq", progress=False)
        g4 = run_fig5(workers=4, store=tmp_path / "par", progress=False)
        assert g1 == g4
        assert format_fig5(g1) == format_fig5(g4)
        # the stored cells agree byte-for-byte modulo execution provenance
        seq, par = ResultStore(tmp_path / "seq"), ResultStore(tmp_path / "par")
        assert seq.cell_ids() == par.cell_ids()
        for cid in seq.cell_ids():
            a, b = seq.get(cid).to_payload(), par.get(cid).to_payload()
            a.pop("wall_s"), b.pop("wall_s")
            assert a == b

    def test_completed_sweep_resumes_without_executing(self, tmp_path):
        cells = _grid_cells(working_sets=(4,))
        store = tmp_path / "store"
        run_cells(cells, workers=1, store=store, progress=False)
        again = run_cells(cells, workers=1, store=store, progress=False)
        assert again.stats.executed == 0
        assert again.stats.cache_hits == len(cells)

    def test_no_resume_reexecutes(self, tmp_path):
        cells = _grid_cells(working_sets=(4,), policies=("lb",))
        store = tmp_path / "store"
        run_cells(cells, workers=1, store=store, progress=False)
        again = run_cells(cells, workers=1, store=store, resume=False, progress=False)
        assert again.stats.executed == len(cells)


class TestCrashIsolation:
    def test_failing_cell_raises_sweep_error_with_detail(self, monkeypatch, tmp_path):
        cells = _grid_cells(working_sets=(4,))

        def explode(cell):
            if cell.config.policy == "lalb":
                raise RuntimeError("injected failure")

        monkeypatch.setattr(sweep_mod, "_FAULT_HOOK", explode)
        if not HAVE_FORK:
            pytest.skip("fault hook needs fork inheritance")
        with pytest.raises(SweepError, match="injected failure"):
            run_cells(
                cells, workers=2, store=tmp_path / "s", retries=0,
                progress=False, mp_context="fork",
            )
        # the healthy cells still landed in the store
        assert len(ResultStore(tmp_path / "s")) == len(cells) - 1

    def test_transient_failure_is_retried(self, monkeypatch, tmp_path):
        if not HAVE_FORK:
            pytest.skip("fault hook needs fork inheritance")
        cells = _grid_cells(working_sets=(4,))
        flag = tmp_path / "fail-once"
        flag.touch()

        def fail_once(cell):
            try:
                os.unlink(flag)  # atomic: only one worker wins the failure
            except FileNotFoundError:
                return
            raise RuntimeError("transient")

        monkeypatch.setattr(sweep_mod, "_FAULT_HOOK", fail_once)
        result = run_cells(
            cells, workers=2, store=tmp_path / "s", retries=1,
            progress=False, mp_context="fork",
        )
        assert len(result.cells) == len(cells)
        assert result.stats.retries == 1

    def test_worker_process_crash_is_survived(self, monkeypatch, tmp_path):
        if not HAVE_FORK:
            pytest.skip("fault hook needs fork inheritance")
        cells = _grid_cells(working_sets=(4,))
        flag = tmp_path / "crash-once"
        flag.touch()

        def crash_once(cell):
            try:
                os.unlink(flag)
            except FileNotFoundError:
                return
            os._exit(13)  # hard kill: exercises BrokenProcessPool recovery

        monkeypatch.setattr(sweep_mod, "_FAULT_HOOK", crash_once)
        result = run_cells(
            cells, workers=2, store=tmp_path / "s", retries=2,
            progress=False, mp_context="fork",
        )
        assert len(result.cells) == len(cells)
        assert result.stats.retries >= 1


    def test_poison_cell_fails_alone_without_charging_healthy_cells(
        self, monkeypatch, tmp_path
    ):
        """A cell that crashes its worker *every* time must eventually be
        failed in isolation (solo mode) — while every healthy cell that
        shared the pool with it completes, uncharged."""
        if not HAVE_FORK:
            pytest.skip("fault hook needs fork inheritance")
        cells = _grid_cells(working_sets=(4,))

        def always_crash(cell):
            if cell.config.policy == "lalb":
                os._exit(13)

        monkeypatch.setattr(sweep_mod, "_FAULT_HOOK", always_crash)
        result = run_cells(
            cells, workers=2, store=tmp_path / "s", retries=1,
            progress=False, mp_context="fork", strict=False,
        )
        poison = [c for c in cells if c.config.policy == "lalb"]
        assert len(poison) == 1
        assert list(result.failures) == [poison[0].cell_id]
        assert result.failures[poison[0].cell_id] == "worker process crashed"
        assert len(result.cells) == len(cells) - 1
        assert len(ResultStore(tmp_path / "s")) == len(cells) - 1


class TestWorkloadSharing:
    def test_cached_workload_views_are_independent(self):
        """Two runs off one cached column set must not share request
        objects (the simulator mutates them in place)."""
        cell = SweepCell(config=replace(BASE, working_set=4), trace=TRACE_CFG)
        first = execute_cell(cell, trace=TRACE)
        second = execute_cell(cell, trace=TRACE)
        assert first.summary == second.summary
        assert first.per_architecture == second.per_architecture
        assert first.timeline == second.timeline
