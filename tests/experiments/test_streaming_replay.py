"""End-to-end streaming replay: parity with batch, flat memory state.

The streaming pipeline (chunked columns → low-water refill →
histogram-fold metrics → KV autocompaction) must change *where requests
live*, never *what the run computes*: at exact-window sizes its summary
is byte-identical to the batch pipeline's, for any chunking.
"""

import pytest

from repro.experiments.replay import replay_streaming
from repro.metrics.summary import summarize
from repro.runtime import (
    DEFAULT_STREAMING_COMPACT_KEEP,
    FaaSCluster,
    SystemConfig,
    streaming_config,
)
from repro.traces import WorkloadSpec, build_workload, build_workload_streaming


SPEC = WorkloadSpec(working_set=15, minutes=6, sla_s=2.0, seed=0)


@pytest.fixture(scope="module")
def batch_summary():
    workload = build_workload(SPEC)
    system = FaaSCluster(SystemConfig())
    system.submit_workload(workload)
    system.run()
    return summarize(
        system.metrics,
        system.cluster,
        policy="lalbo3",
        working_set=SPEC.working_set,
        top_model=workload.top_model_id,
    )


class TestBatchParity:
    def test_summary_byte_exact_vs_batch(self, batch_summary):
        summary, _ = replay_streaming(SPEC)
        assert summary == batch_summary

    @pytest.mark.parametrize("low_water", [1, 8, 1024])
    def test_low_water_mark_is_invisible(self, batch_summary, low_water):
        summary, _ = replay_streaming(SPEC, low_water=low_water)
        assert summary == batch_summary

    @pytest.mark.parametrize("minutes_per_chunk", [1, 3, 100])
    def test_chunk_size_is_invisible(self, batch_summary, minutes_per_chunk):
        summary, _ = replay_streaming(SPEC, minutes_per_chunk=minutes_per_chunk)
        assert summary == batch_summary

    def test_rejects_bad_low_water(self):
        system = FaaSCluster(streaming_config())
        with pytest.raises(ValueError):
            system.submit_workload_streaming(
                build_workload_streaming(SPEC), low_water=0
            )


class TestFlatMemoryState:
    def test_no_linear_state_retained(self):
        _, system = replay_streaming(SPEC)
        m = system.metrics
        assert m.streaming
        assert m.completed == []
        assert m._rows == []
        assert m.lat_hist.count == m.completed_count > 0

    def test_streaming_config_defaults(self):
        cfg = streaming_config()
        assert cfg.metrics_streaming
        assert cfg.kv_autocompact_keep == DEFAULT_STREAMING_COMPACT_KEEP
        assert streaming_config(kv_autocompact_keep=7).kv_autocompact_keep == 7

    def test_autocompaction_engages(self):
        cfg = streaming_config(kv_autocompact_keep=200)
        _, system = replay_streaming(SPEC, config=cfg)
        kv = system.datastore.kv
        assert kv.compacted_revision > 0
        assert kv.revision - kv.compacted_revision <= 2 * 200 + 200

    def test_spill_path_requires_streaming(self):
        with pytest.raises(ValueError):
            SystemConfig(metrics_spill_path="/tmp/x.csv")


class TestIdleMinutes:
    def test_empty_chunks_are_skipped(self):
        # a 1-minute workload chunked at 1 minute exercises the
        # pull-next-chunk loop ending exactly at the stream's end
        spec = WorkloadSpec(working_set=15, minutes=1, seed=4)
        summary, _ = replay_streaming(spec, minutes_per_chunk=1)
        assert summary.completed_requests > 0
