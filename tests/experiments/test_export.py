"""Unit tests for CSV result export."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.export import read_csv_rows, write_summaries_csv, write_timeline_csv
from repro.metrics import TimelineSampler
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import AzureTraceConfig, SyntheticAzureTrace

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=200, mean_rate_per_minute=1500, seed=13)
)


@pytest.fixture(scope="module")
def summary():
    return run_experiment(
        ExperimentConfig(
            working_set=5, minutes=1, requests_per_minute=30,
            cluster=ClusterSpec.homogeneous(1, 2),
        ),
        trace=SMALL_TRACE,
    )


class TestSummariesCSV:
    def test_round_trip_single_key(self, tmp_path, summary):
        path = tmp_path / "out.csv"
        write_summaries_csv(path, {"lalbo3": summary}, key_names=("policy",))
        rows = read_csv_rows(path)
        assert len(rows) == 1
        assert rows[0]["policy"] == "lalbo3"
        assert float(rows[0]["avg_latency_s"]) > 0

    def test_tuple_keys(self, tmp_path, summary):
        path = tmp_path / "grid.csv"
        write_summaries_csv(
            path,
            {("lb", 15): summary, ("lalb", 35): summary},
            key_names=("policy", "ws"),
        )
        rows = read_csv_rows(path)
        assert {(r["policy"], r["ws"]) for r in rows} == {("lb", "15"), ("lalb", "35")}

    def test_key_arity_mismatch(self, tmp_path, summary):
        with pytest.raises(ValueError):
            write_summaries_csv(tmp_path / "x.csv", {("a", 1): summary}, key_names=("k",))

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_summaries_csv(tmp_path / "x.csv", {})

    def test_non_summary_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_summaries_csv(tmp_path / "x.csv", {"k": 42})


class TestTimelineCSV:
    def test_round_trip(self, tmp_path):
        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
        sampler = TimelineSampler(system, period_s=1.0)
        sampler.start()
        system.run(until=3.0)
        sampler.stop()
        path = tmp_path / "timeline.csv"
        write_timeline_csv(path, sampler)
        rows = read_csv_rows(path)
        assert len(rows) == 3
        assert rows[0]["gpus_idle"] == "1"

    def test_empty_sampler_rejected(self, tmp_path):
        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
        with pytest.raises(ValueError):
            write_timeline_csv(tmp_path / "x.csv", TimelineSampler(system))
