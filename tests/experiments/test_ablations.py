"""Unit tests for the ablation runners (small-scale for speed)."""

import pytest

from repro.experiments.ablations import (
    build_belady_oracle,
    run_belady_bound,
    run_cache_policy_ablation,
    run_gpu_scaling,
)
from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=300, mean_rate_per_minute=2000, seed=8)
)


class TestBeladyOracle:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(
            WorkloadSpec(working_set=5, minutes=2, requests_per_minute=40),
            trace=SMALL_TRACE,
        )

    def test_next_use_is_future_arrival(self, workload):
        oracle = build_belady_oracle(workload)
        req = workload.requests[0]
        t = oracle(req.model_id, 0.0)
        assert t == req.arrival_time or t <= req.arrival_time  # first arrival of that model

    def test_next_use_at_exact_time_is_inclusive(self, workload):
        oracle = build_belady_oracle(workload)
        req = workload.requests[-1]
        assert oracle(req.model_id, req.arrival_time) == req.arrival_time

    def test_never_used_again_is_inf(self, workload):
        oracle = build_belady_oracle(workload)
        last = max(r.arrival_time for r in workload.requests)
        assert oracle(workload.requests[0].model_id, last + 1.0) == float("inf")

    def test_unknown_model_is_inf(self, workload):
        oracle = build_belady_oracle(workload)
        assert oracle("ghost", 0.0) == float("inf")


class TestBeladyBound:
    def test_belady_no_worse_than_lru(self):
        out = run_belady_bound(working_set=20, trace=SMALL_TRACE)
        assert set(out) == {"lru", "belady"}
        assert out["belady"].cache_miss_ratio <= out["lru"].cache_miss_ratio + 0.02
        assert out["lru"].completed_requests == out["belady"].completed_requests


class TestPolicyAblation:
    def test_all_policies_run(self):
        out = run_cache_policy_ablation(
            ("lru", "fifo"), working_set=10, trace=SMALL_TRACE
        )
        assert set(out) == {"lru", "fifo"}
        assert all(s.completed_requests == 1950 for s in out.values())


class TestGPUScaling:
    def test_latency_improves_with_gpus(self):
        out = run_gpu_scaling(((1, 2), (1, 6)), working_set=10, trace=SMALL_TRACE)
        assert out[6].avg_latency_s < out[2].avg_latency_s
