"""Unit tests for the figure formatters (small-scale grids)."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import (
    ExperimentConfig,
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_table1,
    headline_reductions,
    run_experiment,
    table1_from_paper,
)
from repro.traces import AzureTraceConfig, SyntheticAzureTrace

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=200, mean_rate_per_minute=1500, seed=17)
)


@pytest.fixture(scope="module")
def tiny_grid():
    base = ExperimentConfig(
        minutes=1, requests_per_minute=40, cluster=ClusterSpec.homogeneous(1, 3)
    )
    from dataclasses import replace

    grid = {}
    for policy in ("lb", "lalb", "lalbo3"):
        for ws in (4, 6):
            grid[(policy, ws)] = run_experiment(
                replace(base, policy=policy, working_set=ws), trace=SMALL_TRACE
            )
    return grid


class TestFig4Formatter:
    def test_contains_three_subfigures(self, tiny_grid):
        text = format_fig4(tiny_grid)
        assert "Figure 4a" in text
        assert "Figure 4b" in text
        assert "Figure 4c" in text
        assert "WS=4" in text and "WS=6" in text
        assert "LALBO3" in text

    def test_headline_reductions_keys(self, tiny_grid):
        red = headline_reductions(tiny_grid)
        assert "lalb_latency_reduction_ws4" in red
        assert "lalbo3_miss_reduction_ws6" in red
        assert all(v <= 100.0 for v in red.values())


class TestFig5And6Formatters:
    def test_fig5_shows_per_miss_share(self, tiny_grid):
        text = format_fig5(tiny_grid)
        assert "false miss ratio" in text
        assert "/miss" in text

    def test_fig6_table(self, tiny_grid):
        text = format_fig6(tiny_grid)
        assert "duplicates" in text
        assert "LB" in text


class TestFig7Formatter:
    def test_sorted_by_limit(self):
        from repro.experiments import run_fig7
        from repro.experiments.runner import ExperimentConfig

        results = run_fig7(
            limits=(15, 0),
            working_set=4,
            base=ExperimentConfig(
                minutes=1, requests_per_minute=30, cluster=ClusterSpec.homogeneous(1, 2)
            ),
            trace=SMALL_TRACE,
        )
        text = format_fig7(results)
        lines = text.splitlines()
        assert lines[0].startswith("Figure 7")
        first_data = lines[3].split()[0]
        assert first_data == "0"  # rows sorted ascending by limit


class TestTable1Formatter:
    def test_all_rows_present(self):
        text = format_table1(table1_from_paper())
        assert text.count("\n") == 23  # header + separator + 22 rows
        assert "squeezenet1.1" in text and "vgg19" in text
