"""Gateway-level replay: the full FaaS path must agree with the scheduler-level runs."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.replay import replay_through_gateway
from repro.runtime import SystemConfig
from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=300, mean_rate_per_minute=2000, seed=12)
)
SMALL_SPEC = WorkloadSpec(working_set=6, minutes=2, requests_per_minute=60)
SMALL_CLUSTER = ClusterSpec.homogeneous(1, 4)


@pytest.fixture(scope="module")
def replay():
    return replay_through_gateway(
        SMALL_SPEC,
        config=SystemConfig(cluster=SMALL_CLUSTER, policy="lalbo3"),
        trace=SMALL_TRACE,
    )


class TestReplay:
    def test_every_invocation_completes(self, replay):
        assert len(replay.invocations) == 120
        assert len(replay.completed_invocations) == 120
        assert len(replay.system.completed) == 120

    def test_faas_overhead_is_positive_but_small(self, replay):
        """Container/Watchdog handling adds latency on top of the GPU path,
        but far less than a model load."""
        overhead = replay.faas_overhead()
        assert overhead >= 0.0
        assert overhead < 2.0

    def test_per_function_model_instances_are_cached(self, replay):
        """Repeated invocations of one function must hit its cached model."""
        hits = sum(1 for r in replay.system.completed if r.cache_hit)
        assert hits > len(replay.system.completed) * 0.5

    def test_cache_behaviour_matches_scheduler_level_run(self, replay):
        """Gateway-level and scheduler-level replays of the same workload
        agree on cache behaviour (the FaaS layer shifts timing slightly,
        so allow a small tolerance)."""
        direct = run_experiment(
            ExperimentConfig(
                policy="lalbo3",
                working_set=6,
                minutes=2,
                requests_per_minute=60,
                cluster=SMALL_CLUSTER,
            ),
            trace=SMALL_TRACE,
        )
        assert replay.cache_miss_ratio() == pytest.approx(
            direct.cache_miss_ratio, abs=0.08
        )

    def test_functions_registered_with_gpu_flag(self, replay):
        for name in replay.gateway.list_functions():
            assert replay.gateway.get(name).spec.gpu_enabled
