"""Tests for multi-seed spreads, per-architecture breakdown, and fn logs."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments import ExperimentConfig
from repro.experiments.seeds import MetricSpread, run_multi_seed
from repro.faas import FunctionSpec, Gateway
from repro.metrics.summary import per_architecture_breakdown
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload

SMALL_TRACE = SyntheticAzureTrace(
    AzureTraceConfig(num_functions=200, mean_rate_per_minute=1500, seed=21)
)
SMALL = ExperimentConfig(
    working_set=5, minutes=1, requests_per_minute=40, cluster=ClusterSpec.homogeneous(1, 3)
)


class TestMultiSeed:
    def test_spreads_for_all_metrics(self):
        out = run_multi_seed(SMALL, seeds=(0, 1, 2), trace=SMALL_TRACE)
        assert set(out) >= {"avg_latency_s", "cache_miss_ratio", "sm_utilization"}
        spread = out["avg_latency_s"]
        assert isinstance(spread, MetricSpread)
        assert len(spread.values) == 3
        assert spread.mean > 0
        assert spread.std >= 0
        assert 0 <= spread.cv < 1.0

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            run_multi_seed(SMALL, seeds=(0,), trace=SMALL_TRACE)

    def test_cv_zero_when_mean_zero(self):
        s = MetricSpread("m", mean=0.0, std=0.0, values=(0.0, 0.0))
        assert s.cv == 0.0


class TestPerArchitectureBreakdown:
    def test_breakdown_covers_workload(self):
        wl = build_workload(
            WorkloadSpec(working_set=5, minutes=1, requests_per_minute=40),
            trace=SMALL_TRACE,
        )
        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 3)))
        for r in wl.requests:
            system.submit_at(r)
        system.run()
        breakdown = per_architecture_breakdown(system.metrics)
        assert sum(b["count"] for b in breakdown.values()) == 40
        for arch, stats in breakdown.items():
            assert stats["avg_latency_s"] > 0
            assert 0.0 <= stats["miss_ratio"] <= 1.0
            assert stats["p99_latency_s"] >= stats["avg_latency_s"] * 0.5


class TestFunctionLogs:
    def test_logs_capture_invocation_lifecycle(self):
        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
        gateway = Gateway(system)
        gateway.register(FunctionSpec(name="classify", model_architecture="alexnet"))
        gateway.invoke("classify")
        system.run()
        lines = gateway.logs("classify")
        assert any("started" in line for line in lines)
        assert any("succeeded" in line for line in lines)

    def test_logs_capture_failures(self):
        from repro.faas import default_template

        def boom(_):
            raise RuntimeError("exploded")

        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
        gateway = Gateway(system)
        gateway.register(
            FunctionSpec(name="bad", dockerfile=default_template(gpu=False), handler=boom)
        )
        gateway.invoke("bad")
        system.run()
        assert any("FAILED: exploded" in line for line in gateway.logs("bad"))

    def test_tail(self):
        system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
        gateway = Gateway(system)
        gateway.register(FunctionSpec(name="classify", model_architecture="alexnet"))
        for _ in range(3):
            gateway.invoke("classify")
            system.run()
        assert len(gateway.logs("classify", tail=2)) == 2
