"""Ephemeral-key tier semantics: the fast lane must keep the live view,
watch delivery, and read-your-writes identical to the durable path while
retaining *no* per-key history, no event-log records, and no lineage —
and every API whose answer would depend on the missing history must fail
loudly with :class:`EphemeralKeyError`, never silently return a wrong
view."""

import pytest

from repro.datastore import (
    Datastore,
    EphemeralKeyError,
    KVStore,
    WatchBatch,
    WriteBatch,
)
from repro.sim import Simulator

EPH = ("gpu/status/", "fn/latency/")


def store() -> KVStore:
    return KVStore(ephemeral_prefixes=EPH)


class TestFastLaneSemantics:
    def test_live_reads_identical_to_durable(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("cache/locations/m", ["g0"])
        assert s.get_value("gpu/status/g0") == "busy"
        assert s.get_value("cache/locations/m") == ["g0"]
        assert s.get("gpu/status/g0").key == "gpu/status/g0"
        assert "gpu/status/g0" in s
        assert "gpu/status/g0" in s.keys()

    def test_ephemeral_writes_bump_revision(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("gpu/status/g0", "idle")
        assert s.revision == 2
        assert s.get("gpu/status/g0").mod_revision == 2

    def test_lineage_free_metadata(self):
        """No history to anchor lineage to: create_revision always equals
        mod_revision and version stays pinned at 1."""
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("gpu/status/g0", "idle")
        kv = s.get("gpu/status/g0")
        assert kv.create_revision == kv.mod_revision == 2
        assert kv.version == 1

    def test_no_history_no_event_log(self):
        s = store()
        for i in range(50):
            s.put("gpu/status/g0", i)
            s.put("fn/latency/%d" % i, i * 0.1)
        assert s.history_entry_count() == 0
        assert len(s._event_revs) == 0
        assert s.events_since(0) == []

    def test_ephemeral_writes_counter(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("fn/latency/1", 0.5)
        s.put("durable", 1)
        s.delete("fn/latency/1")
        assert s.ephemeral_writes == 3  # 2 puts + 1 delete
        assert s.history_entry_count() == 1  # the durable key only

    def test_is_ephemeral_and_prefixes(self):
        s = store()
        assert s.ephemeral_prefixes == EPH
        assert s.is_ephemeral("gpu/status/g7")
        assert not s.is_ephemeral("gpu/lru-of-something")
        assert not KVStore().is_ephemeral("gpu/status/g7")

    def test_delete_leaves_no_tombstone(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        assert s.delete("gpu/status/g0")
        assert "gpu/status/g0" not in s
        assert s.history_entry_count() == 0
        assert len(s._event_revs) == 0

    def test_mixed_batch_commits_one_revision(self):
        s = store()
        commit = s.apply_batch(
            [
                ("put", "gpu/status/g0", "busy"),
                ("put", "cache/locations/m", ["g0"]),
                ("put", "fn/latency/1", 0.25),
            ]
        )
        assert commit.revision == s.revision == 1
        assert commit.count == 3
        # only the durable key left residue
        assert s.history_entry_count() == 1
        assert len(s._event_revs) == 1
        # all three share the commit revision in the live view
        assert s.get("gpu/status/g0").mod_revision == 1
        assert s.get("cache/locations/m").mod_revision == 1

    def test_compaction_near_free_for_ephemeral_keys(self):
        """With only ephemeral churn there is nothing to compact: the
        retention window's cost no longer scales with status-key writes."""
        s = store()
        for i in range(500):
            s.put("gpu/status/g0", i)
        s.compact(s.revision - 10)
        assert s.history_entry_count() == 0
        assert s.get_value("gpu/status/g0") == 499

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            KVStore(ephemeral_prefixes=("",))
        with pytest.raises(ValueError):
            KVStore(ephemeral_prefixes=(b"gpu/",))


class TestHistoricalReadsRaise:
    def test_get_at_revision_raises(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        with pytest.raises(EphemeralKeyError):
            s.get("gpu/status/g0", revision=1)

    def test_get_latest_still_works(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        assert s.get("gpu/status/g0", revision=None).value == "busy"

    def test_events_since_with_overlapping_prefix_raises(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        with pytest.raises(EphemeralKeyError):
            s.events_since(0, key_prefix="gpu/status/")
        with pytest.raises(EphemeralKeyError):
            # a broader prefix *covering* the tier is just as unreplayable
            s.events_since(0, key_prefix="gpu/")

    def test_events_since_disjoint_prefix_allowed(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("cache/locations/m", ["g0"])
        events = s.events_since(0, key_prefix="cache/")
        assert [key for _, key, _ in events] == ["cache/locations/m"]

    def test_unfiltered_events_since_omits_ephemeral_by_design(self):
        s = store()
        s.put("gpu/status/g0", "busy")
        s.put("durable", 1)
        assert [key for _, key, _ in s.events_since(0)] == ["durable"]

    def test_check_replayable(self):
        s = store()
        s.check_replayable("durable")  # no raise
        with pytest.raises(EphemeralKeyError):
            s.check_replayable("gpu/status/g0")
        with pytest.raises(EphemeralKeyError):
            s.check_replayable("gpu/", prefix=True)


class TestWatchDelivery:
    def test_live_watch_sees_ephemeral_mutations(self):
        sim = Simulator()
        ds = Datastore(sim, batched=False, ephemeral_prefixes=EPH)
        got = []
        ds.client().watch("gpu/status/", got.append, prefix=True)
        ds.client().put("gpu/status/g0", "busy")
        ds.client().delete("gpu/status/g0")
        assert [(e.type.value, e.key) for e in got] == [
            ("put", "gpu/status/g0"),
            ("delete", "gpu/status/g0"),
        ]

    def test_batched_commit_delivers_one_coalesced_batch(self):
        sim = Simulator()
        ds = Datastore(sim, batched=True, ephemeral_prefixes=EPH)
        batches: list[WatchBatch] = []
        ds.client().watch("gpu/", batches.append, prefix=True, coalesced=True)
        c = ds.client()
        c.put("gpu/status/g0", "busy")
        c.put("gpu/finish_time/g0", 1.5)  # durable here: not in EPH
        ds.flush()
        assert len(batches) == 1
        assert {e.key for e in batches[0].events} == {
            "gpu/status/g0",
            "gpu/finish_time/g0",
        }

    def test_watch_from_revision_over_ephemeral_raises(self):
        sim = Simulator()
        ds = Datastore(sim, batched=False, ephemeral_prefixes=EPH)
        ds.client().put("gpu/status/g0", "busy")
        with pytest.raises(EphemeralKeyError):
            ds.client().watch("gpu/status/g0", lambda e: None, start_revision=0)
        with pytest.raises(EphemeralKeyError):
            ds.client().watch(
                "gpu/", lambda e: None, prefix=True, start_revision=0
            )

    def test_watch_from_revision_durable_prefix_still_replays(self):
        sim = Simulator()
        ds = Datastore(sim, batched=False, ephemeral_prefixes=EPH)
        ds.client().put("cache/locations/m", ["g0"])
        got = []
        ds.client().watch("cache/", got.append, prefix=True, start_revision=0)
        assert [e.key for e in got] == ["cache/locations/m"]


class TestDeletePrefix:
    def test_single_revision_for_all_victims(self):
        s = store()
        for i in range(10):
            s.put("fn/latency/%d" % i, i)
        s.put("keep", 1)
        before = s.revision
        assert s.delete_prefix("fn/latency/") == 10
        assert s.revision == before + 1  # exactly one revision consumed
        assert s.get_value("keep") == 1
        assert not [k for k in s.keys() if k.startswith("fn/latency/")]

    def test_single_coalesced_watch_batch(self):
        sim = Simulator()
        ds = Datastore(sim, batched=False, ephemeral_prefixes=EPH)
        for i in range(5):
            ds.client().put("fn/latency/%d" % i, i)
        batches: list[WatchBatch] = []
        ds.client().watch("fn/", batches.append, prefix=True, coalesced=True)
        ds.kv.delete_prefix("fn/latency/")
        assert len(batches) == 1
        assert len(batches[0].events) == 5
        assert all(e.type.value == "delete" for e in batches[0].events)

    def test_empty_prefix_consumes_no_revision(self):
        s = store()
        before = s.revision
        assert s.delete_prefix("nothing/here/") == 0
        assert s.revision == before


class TestWriteBatchOverlay:
    def test_read_your_writes_for_ephemeral_keys(self):
        sim = Simulator()
        ds = Datastore(sim, batched=True, ephemeral_prefixes=EPH)
        c = ds.client()
        c.put("gpu/status/g0", "busy")
        assert ds.kv.revision == 0  # not committed yet
        assert c.get("gpu/status/g0") == "busy"  # overlay answers
        ds.flush()
        assert ds.kv.revision == 1
        assert c.get("gpu/status/g0") == "busy"

    def test_flush_count_matches_committed_keys(self):
        sim = Simulator()
        ds = Datastore(sim, batched=True, ephemeral_prefixes=EPH)
        c = ds.client()
        c.put("gpu/status/g0", "busy")
        c.put("durable", 1)
        assert ds.flush() == 2
        assert ds.stats.committed_keys == 2

    def test_hookless_flush_skips_event_tuples(self):
        """The hookless fast path returns ``events=()`` with the true
        ``count`` — and flips back to materialized events the moment a
        watch subscribes."""
        s = store()
        wb = WriteBatch(s)
        wb.put("gpu/status/g0", "busy")
        commit = wb.flush()
        assert commit.events == ()
        assert commit.count == 1
        from repro.datastore.watch import WatchHub

        hub = WatchHub(s, sim=Simulator())
        seen = []
        hub.watch("gpu/status/g0", seen.append)
        wb.put("gpu/status/g0", "idle")
        commit = wb.flush()
        assert commit.count == 1
        assert len(commit.events) == 1  # watch fan-out needs real events
        assert len(seen) == 1
