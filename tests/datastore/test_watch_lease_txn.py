"""Unit tests for watches, leases, and transactions."""

import pytest

from repro.datastore import (
    Compare,
    CompareTarget,
    Datastore,
    EventType,
    KVStore,
    Op,
    Txn,
    WatchHub,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def ds(sim):
    return Datastore(sim)


class TestWatch:
    def test_exact_key_watch(self, ds):
        events = []
        ds.watches.watch("a", events.append)
        ds.kv.put("a", 1)
        ds.kv.put("b", 2)
        ds.kv.delete("a")
        assert [(e.type, e.key, e.value) for e in events] == [
            (EventType.PUT, "a", 1),
            (EventType.DELETE, "a", None),
        ]

    def test_prefix_watch(self, ds):
        events = []
        ds.watches.watch("gpu/", events.append, prefix=True)
        ds.kv.put("gpu/0", "idle")
        ds.kv.put("gpu/1", "busy")
        ds.kv.put("fn/x", 1)
        assert [e.key for e in events] == ["gpu/0", "gpu/1"]

    def test_cancel_stops_delivery(self, ds):
        events = []
        w = ds.watches.watch("a", events.append)
        ds.kv.put("a", 1)
        w.cancel()
        ds.kv.put("a", 2)
        assert len(events) == 1
        assert ds.watches.active_watches == 0

    def test_delayed_delivery_uses_sim_clock(self, sim):
        ds = Datastore(sim, watch_delay=0.5)
        events = []
        ds.watches.watch("a", lambda e: events.append(sim.now))
        ds.kv.put("a", 1)
        assert events == []  # not yet delivered
        sim.run()
        assert events == [0.5]

    def test_delay_requires_sim(self):
        with pytest.raises(ValueError):
            WatchHub(KVStore(), sim=None, delay=0.5)

    def test_watch_event_carries_revision(self, ds):
        events = []
        ds.watches.watch("a", events.append)
        ds.kv.put("x", 0)
        ds.kv.put("a", 1)
        assert events[0].revision == 2


class TestLease:
    def test_keys_vanish_on_expiry(self, sim, ds):
        lease = ds.leases.grant(ttl=10.0)
        client = ds.client()
        client.put("gpu/status/g0", "idle", lease=lease)
        sim.run(until=9.0)
        assert client.get("gpu/status/g0") == "idle"
        sim.run(until=10.0)
        assert client.get("gpu/status/g0") is None
        assert lease.expired

    def test_refresh_extends_lifetime(self, sim, ds):
        lease = ds.leases.grant(ttl=10.0)
        ds.client().put("k", "v", lease=lease)
        sim.schedule(8.0, lease.refresh)
        sim.run(until=17.0)
        assert ds.client().get("k") == "v"
        sim.run(until=18.0)
        assert ds.client().get("k") is None

    def test_revoke_deletes_immediately(self, sim, ds):
        lease = ds.leases.grant(ttl=100.0)
        ds.client().put("k", "v", lease=lease)
        lease.revoke()
        assert ds.client().get("k") is None
        assert not lease.alive

    def test_attach_to_dead_lease_rejected(self, sim, ds):
        lease = ds.leases.grant(ttl=1.0)
        sim.run()
        with pytest.raises(RuntimeError):
            lease.attach("k")

    def test_refresh_dead_lease_rejected(self, sim, ds):
        lease = ds.leases.grant(ttl=1.0)
        sim.run()
        with pytest.raises(RuntimeError):
            lease.refresh()

    def test_nonpositive_ttl_rejected(self, ds):
        with pytest.raises(ValueError):
            ds.leases.grant(0.0)


class TestTxn:
    def test_cas_success_branch(self):
        store = KVStore()
        store.put("x", 1)
        res = (
            Txn(store)
            .when(Compare("x", CompareTarget.VALUE, "==", 1))
            .then(Op.put("x", 2), Op.put("y", "side"))
            .otherwise(Op.get("x"))
            .commit()
        )
        assert res.succeeded
        assert store.get_value("x") == 2
        assert store.get_value("y") == "side"

    def test_cas_failure_branch(self):
        store = KVStore()
        store.put("x", 1)
        res = (
            Txn(store)
            .when(Compare("x", CompareTarget.VALUE, "==", 99))
            .then(Op.put("x", 2))
            .otherwise(Op.get("x"))
            .commit()
        )
        assert not res.succeeded
        assert store.get_value("x") == 1
        assert res.responses[0].value == 1

    def test_missing_key_comparisons(self):
        store = KVStore()
        assert Compare("nope", CompareTarget.EXISTS, "==", False).evaluate(store.get("nope"))
        assert Compare("nope", CompareTarget.VERSION, "==", 0).evaluate(store.get("nope"))

    def test_version_guard(self):
        store = KVStore()
        store.put("x", "a")
        store.put("x", "b")
        res = (
            Txn(store)
            .when(Compare("x", CompareTarget.VERSION, ">=", 2))
            .then(Op.delete("x"))
            .commit()
        )
        assert res.succeeded
        assert "x" not in store

    def test_multiple_guards_all_must_hold(self):
        store = KVStore()
        store.put("a", 1)
        store.put("b", 2)
        res = (
            Txn(store)
            .when(
                Compare("a", CompareTarget.VALUE, "==", 1),
                Compare("b", CompareTarget.VALUE, "==", 99),
            )
            .then(Op.put("winner", True))
            .commit()
        )
        assert not res.succeeded
        assert "winner" not in store

    def test_double_commit_rejected(self):
        store = KVStore()
        txn = Txn(store).then(Op.put("x", 1))
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.commit()

    def test_unknown_operator_rejected(self):
        store = KVStore()
        with pytest.raises(ValueError):
            Compare("x", CompareTarget.VALUE, "~=", 1).evaluate(store.get("x"))


class TestClient:
    def test_namespacing(self, ds):
        a = ds.client("tenantA")
        b = ds.client("tenantB")
        a.put("k", 1)
        b.put("k", 2)
        assert a.get("k") == 1
        assert b.get("k") == 2
        assert ds.kv.get_value("tenantA/k") == 1

    def test_range_strips_namespace(self, ds):
        c = ds.client("ns")
        c.put("gpu/0", "idle")
        c.put("gpu/1", "busy")
        assert c.range("gpu/") == {"gpu/0": "idle", "gpu/1": "busy"}

    def test_namespaced_txn_rejected(self, ds):
        with pytest.raises(RuntimeError):
            ds.client("ns").txn()

    def test_root_client_txn_allowed(self, ds):
        res = ds.client().txn().then(Op.put("k", 1)).commit()
        assert res.succeeded

    def test_watch_through_client(self, ds):
        c = ds.client("ns")
        seen = []
        c.watch("a", seen.append)
        c.put("a", 5)
        assert seen[0].key == "ns/a"
        assert seen[0].value == 5
