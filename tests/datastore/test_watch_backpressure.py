"""Watch-delivery backpressure: bounded per-watcher queues, drop-oldest.

A delayed watcher built with ``max_pending=N`` may fall arbitrarily far
behind the commit stream without growing the delivery backlog: commits
queue in a bounded buffer drained by a single in-flight simulator event,
and overflow drops the oldest undelivered batch (counted per watcher).
"""

import pytest

from repro.datastore.client import Datastore
from repro.sim import Simulator


def _store(delay=1.0):
    sim = Simulator()
    return sim, Datastore(sim, watch_delay=delay)


class TestBoundedDelivery:
    def test_drop_oldest_when_queue_overflows(self):
        sim, ds = _store()
        got = []
        w = ds.client().watch("k", got.append, prefix=True, coalesced=True, max_pending=2)
        for i in range(5):
            ds.kv.put("k/x", i)  # five commits before any delivery can run
        sim.run()
        # oldest three batches dropped; the last two delivered in order
        assert [ev.value for batch in got for ev in batch] == [3, 4]
        assert w.dropped_batches == 3
        assert w.pending_batches == 0

    def test_one_in_flight_drain_event_per_watcher(self):
        sim, ds = _store()
        got = []
        ds.client().watch("k", got.append, prefix=True, coalesced=True, max_pending=8)
        before = len(sim)
        for _ in range(5):
            ds.kv.put("k/x", "v")
        # five commits queued, but only ONE delivery event was scheduled
        assert len(sim) - before == 1
        sim.run()
        assert len(got) == 5

    def test_unbounded_watcher_schedules_per_commit(self):
        sim, ds = _store()
        got = []
        ds.client().watch("k", got.append, prefix=True, coalesced=True)
        before = len(sim)
        for _ in range(5):
            ds.kv.put("k/x", "v")
        assert len(sim) - before == 5  # the pre-backpressure behaviour
        sim.run()
        assert len(got) == 5

    def test_no_drops_within_bound(self):
        sim, ds = _store()
        got = []
        w = ds.client().watch("k", got.append, coalesced=True, max_pending=10)
        for i in range(3):
            ds.kv.put("k", i)
        sim.run()
        assert w.dropped_batches == 0
        assert [ev.value for batch in got for ev in batch] == [0, 1, 2]

    def test_commits_during_drain_schedule_fresh_drain(self):
        sim, ds = _store()
        got = []

        def on_batch(batch):
            got.append((sim.now, batch))
            if len(got) == 1:
                ds.kv.put("k", "from-watcher")  # commit issued mid-delivery

        w = ds.client().watch("k", on_batch, coalesced=True, max_pending=4)
        ds.kv.put("k", "first")
        sim.run()
        assert [ev.value for _, batch in got for ev in batch] == ["first", "from-watcher"]
        # the mid-delivery commit must NOT be consumed by the in-flight
        # drain at the same instant: it waits a full delivery delay
        assert [t for t, _ in got] == [1.0, 2.0]
        assert w.dropped_batches == 0

    def test_self_retriggering_watcher_advances_the_clock(self):
        """A bounded watcher whose callback always writes its own key must
        chain deliveries one delay apart — never spin at one instant."""
        sim, ds = _store()
        times = []

        def on_batch(batch):
            times.append(sim.now)
            if len(times) < 5:
                ds.kv.put("k", len(times))

        ds.client().watch("k", on_batch, coalesced=True, max_pending=2)
        ds.kv.put("k", 0)
        sim.run(max_events=100)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_clears_queue(self):
        sim, ds = _store()
        got = []
        w = ds.client().watch("k", got.append, coalesced=True, max_pending=4)
        ds.kv.put("k", 1)
        assert w.pending_batches == 1
        w.cancel()
        sim.run()
        assert got == []
        assert w.pending_batches == 0

    def test_synchronous_delivery_never_queues(self):
        sim, ds = _store(delay=0.0)
        got = []
        w = ds.client().watch("k", got.append, coalesced=True, max_pending=1)
        for i in range(3):
            ds.kv.put("k", i)
        assert [ev.value for batch in got for ev in batch] == [0, 1, 2]
        assert w.dropped_batches == 0

    def test_max_pending_validated(self):
        sim, ds = _store()
        with pytest.raises(ValueError):
            ds.client().watch("k", lambda e: None, max_pending=0)

    def test_individual_event_watchers_also_bounded(self):
        sim, ds = _store()
        got = []
        w = ds.client().watch("k", got.append, max_pending=1)  # not coalesced
        ds.kv.put("k", "old")
        ds.kv.put("k", "new")
        sim.run()
        assert [ev.value for ev in got] == ["new"]
        assert w.dropped_batches == 1
