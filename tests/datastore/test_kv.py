"""Unit tests for the MVCC key-value store."""

import pytest

from repro.datastore import CompactedError, KVStore


@pytest.fixture
def store():
    return KVStore()


class TestBasicOps:
    def test_empty_store(self, store):
        assert store.revision == 0
        assert len(store) == 0
        assert store.get("missing") is None
        assert store.get_value("missing", 42) == 42

    def test_put_and_get(self, store):
        kv = store.put("a", 1)
        assert kv.value == 1
        assert kv.create_revision == 1
        assert kv.mod_revision == 1
        assert kv.version == 1
        assert store.get("a").value == 1
        assert "a" in store

    def test_put_bumps_revision_and_version(self, store):
        store.put("a", 1)
        kv = store.put("a", 2)
        assert store.revision == 2
        assert kv.create_revision == 1
        assert kv.mod_revision == 2
        assert kv.version == 2

    def test_delete(self, store):
        store.put("a", 1)
        assert store.delete("a") is True
        assert store.get("a") is None
        assert store.delete("a") is False
        assert store.revision == 2  # failed delete does not bump revision

    def test_recreate_after_delete_resets_metadata(self, store):
        store.put("a", 1)
        store.delete("a")
        kv = store.put("a", 3)
        assert kv.version == 1
        assert kv.create_revision == 3

    def test_invalid_keys_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("", 1)
        with pytest.raises(ValueError):
            store.put(123, 1)  # type: ignore[arg-type]

    def test_keys_sorted(self, store):
        for k in ["b", "a", "c"]:
            store.put(k, 0)
        assert store.keys() == ["a", "b", "c"]


class TestRange:
    def test_prefix_range(self, store):
        store.put("gpu/status/g0", "idle")
        store.put("gpu/status/g1", "busy")
        store.put("gpu/lru/g0", [])
        got = store.range("gpu/status/")
        assert [kv.key for kv in got] == ["gpu/status/g0", "gpu/status/g1"]

    def test_delete_prefix(self, store):
        for i in range(4):
            store.put(f"x/{i}", i)
        store.put("y/0", 0)
        assert store.delete_prefix("x/") == 4
        assert len(store) == 1

    def test_items_iterates_sorted(self, store):
        store.put("b", 2)
        store.put("a", 1)
        assert [kv.key for kv in store.items()] == ["a", "b"]


class TestHistoricalReads:
    def test_read_at_old_revision(self, store):
        store.put("a", "v1")  # rev 1
        store.put("a", "v2")  # rev 2
        store.put("b", "x")  # rev 3
        assert store.get("a", revision=1).value == "v1"
        assert store.get("a", revision=2).value == "v2"
        assert store.get("a", revision=3).value == "v2"
        assert store.get("b", revision=2) is None

    def test_read_before_key_existed(self, store):
        store.put("other", 0)  # rev 1
        store.put("a", 1)  # rev 2
        assert store.get("a", revision=1) is None

    def test_deleted_key_reads_none_after_tombstone(self, store):
        store.put("a", 1)  # rev 1
        store.delete("a")  # rev 2
        store.put("z", 0)  # rev 3
        assert store.get("a", revision=1).value == 1
        assert store.get("a", revision=2) is None
        assert store.get("a", revision=3) is None

    def test_future_revision_rejected(self, store):
        store.put("a", 1)
        with pytest.raises(ValueError):
            store.get("a", revision=99)


class TestCompaction:
    def test_compaction_blocks_older_reads(self, store):
        store.put("a", "v1")  # rev 1
        store.put("a", "v2")  # rev 2
        store.put("a", "v3")  # rev 3
        store.compact(2)
        with pytest.raises(CompactedError):
            store.get("a", revision=1)
        assert store.get("a", revision=2).value == "v2"
        assert store.get("a", revision=3).value == "v3"

    def test_compaction_preserves_live_view(self, store):
        store.put("a", 1)
        store.put("b", 2)
        store.compact(store.revision)
        assert store.get("a").value == 1
        assert store.get("b").value == 2

    def test_compact_beyond_revision_rejected(self, store):
        with pytest.raises(ValueError):
            store.compact(5)

    def test_compact_is_monotonic(self, store):
        store.put("a", 1)
        store.put("a", 2)
        store.compact(2)
        store.compact(1)  # no-op, not an error
        assert store.compacted_revision == 2

    def test_compacted_tombstone_history_dropped(self, store):
        store.put("a", 1)
        store.delete("a")
        store.put("pad", 0)
        store.compact(store.revision)
        assert store.get("a") is None


class TestSubscription:
    def test_hooks_see_mutations(self, store):
        seen = []
        store.subscribe(lambda key, kv, rev: seen.append((key, kv.value if kv else None, rev)))
        store.put("a", 1)
        store.delete("a")
        assert seen == [("a", 1, 1), ("a", None, 2)]

    def test_unsubscribe(self, store):
        seen = []
        unsub = store.subscribe(lambda *args: seen.append(args))
        store.put("a", 1)
        unsub()
        store.put("a", 2)
        assert len(seen) == 1
