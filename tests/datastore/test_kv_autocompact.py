"""KV history windowing: ``SystemConfig(kv_autocompact_keep=N)``.

The etcd ``--auto-compaction`` analogue: a long replay normally retains
every historical KeyValue and every watch-replay event.  With the sliding
horizon enabled, history below ``revision - keep`` is compacted away after
each event (with 2×keep hysteresis), bounding datastore memory — and,
because compaction never touches live keys, the scheduling decisions must
be bit-for-bit unchanged.
"""

import random

from repro.cluster import ClusterSpec
from repro.core.request import InferenceRequest
from repro.models import ModelInstance, get_profile, model_names
from repro.runtime import FaaSCluster, SystemConfig

SEED = 20230731
N_REQUESTS = 600
N_FUNCTIONS = 12
KEEP = 150


def _workload(seed: int):
    rng = random.Random(seed)
    spec = []
    t = 0.0
    for _ in range(N_REQUESTS):
        t += rng.expovariate(2.0) if rng.random() < 0.05 else rng.expovariate(1 / 0.035)
        spec.append((min(int(rng.paretovariate(0.9)) - 1, N_FUNCTIONS - 1), t))
    return spec


def _run(keep: int | None, spec, track_peak: bool = False):
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(1, 3),
            policy="lalbo3",
            kv_autocompact_keep=keep,
        )
    )
    peak = {"events": 0}
    if track_peak:
        kv = system.datastore.kv

        def watch_len() -> None:
            peak["events"] = max(peak["events"], len(kv._event_revs))

        system.sim.subscribe_post_event(watch_len)
    names = model_names()
    instances = [
        ModelInstance(f"m{i}", get_profile(names[i % len(names)]))
        for i in range(N_FUNCTIONS)
    ]
    id_to_index = {}
    for index, (fn, t) in enumerate(spec):
        request = InferenceRequest(f"fn{fn}", instances[fn], arrival_time=t)
        id_to_index[request.request_id] = index
        system.submit_at(request)
    system.run()
    assert len(system.completed) == N_REQUESTS
    decisions = [
        (d.time_s, d.kind, id_to_index[d.request_id], d.model_id, d.gpu_id, d.visits)
        for d in system.scheduler.decisions
    ]
    return system, decisions, peak["events"]


def test_event_log_stays_bounded_and_decisions_unchanged():
    spec = _workload(SEED)
    baseline_system, baseline_decisions, _ = _run(None, spec)
    compacted_system, compacted_decisions, peak_events = _run(
        KEEP, spec, track_peak=True
    )

    kv = compacted_system.datastore.kv
    baseline_kv = baseline_system.datastore.kv

    # same revision stream — compaction discards history, never writes
    assert kv.revision == baseline_kv.revision
    assert kv.compacted_revision > 0

    # the sliding horizon held: never more than 2x keep revisions of
    # replayable history (+ the revisions one event handler can commit)
    assert kv.revision - kv.compacted_revision <= 2 * KEEP + 30

    # the event log was actually windowed, not just trimmed at the end
    baseline_events = len(baseline_kv._event_revs)
    assert baseline_events > 4 * KEEP  # workload long enough to matter
    assert peak_events < baseline_events
    assert len(kv._event_revs) < baseline_events / 2

    # ... and the control plane never noticed
    assert compacted_decisions == baseline_decisions


def test_live_state_survives_compaction():
    spec = _workload(SEED + 1)
    baseline_system, _, _ = _run(None, spec)
    compacted_system, _, _ = _run(KEEP, spec)
    b, c = baseline_system.datastore.kv, compacted_system.datastore.kv
    # fn/latency/<request_id> keys embed the process-global request
    # counter, which differs between the two runs — compare modulo it
    def normalized(kv_store):
        out = {}
        for kv in kv_store.items():
            key = kv.key
            if key.startswith("fn/latency/"):
                continue
            out[key] = kv.value
        return out

    assert normalized(c) == normalized(b)
    n_latency_b = sum(1 for k in b.keys() if k.startswith("fn/latency/"))
    n_latency_c = sum(1 for k in c.keys() if k.startswith("fn/latency/"))
    assert n_latency_b == n_latency_c


def test_autocompact_is_off_by_default():
    assert SystemConfig().kv_autocompact_keep is None


def test_keep_validation():
    import pytest

    with pytest.raises(ValueError):
        SystemConfig(kv_autocompact_keep=0)
