"""Txn/batch semantics: atomic multi-key commits, last-write-wins
coalescing, coalesced watch delivery and replay, WriteBatch accumulation,
and the batched Datastore client's read-your-writes overlay."""

import pytest

from repro.datastore import (
    DELETE,
    Datastore,
    EventType,
    KVStore,
    Op,
    Txn,
    WatchBatch,
    WriteBatch,
)
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestApplyBatch:
    def test_multi_key_commit_bumps_revision_once(self):
        s = KVStore()
        commit = s.apply_batch([("put", "a", 1), ("put", "b", 2), ("put", "c", 3)])
        assert s.revision == 1
        assert commit.revision == 1
        assert {kv.mod_revision for _, kv in commit.events} == {1}
        assert [s.get_value(k) for k in "abc"] == [1, 2, 3]

    def test_last_write_wins_within_batch(self):
        s = KVStore()
        commit = s.apply_batch([("put", "k", "first"), ("put", "k", "last")])
        assert s.get_value("k") == "last"
        # one event, one history entry: the intermediate value never existed
        assert len(commit.events) == 1
        assert s.get("k", revision=1).value == "last"
        assert s.get("k").version == 1

    def test_put_then_delete_same_key_coalesces_to_delete(self):
        s = KVStore()
        s.put("k", 0)
        commit = s.apply_batch([("put", "k", 1), ("delete", "k")])
        assert "k" not in s
        assert commit.events == (("k", None),)

    def test_delete_then_put_recreates_key(self):
        """A batch that deletes then re-puts a key must match the
        sequential outcome: a *recreated* key (version 1, fresh
        create_revision), not a versioned-over old one."""
        s = KVStore()
        s.put("k", "old")  # rev 1, version 1
        s.put("k", "old2")  # rev 2, version 2
        commit = s.apply_batch([("delete", "k"), ("put", "k", "new")])
        kv = s.get("k")
        assert kv.value == "new"
        assert kv.version == 1
        assert kv.create_revision == commit.revision == 3
        # one coalesced PUT event, the intermediate delete never observable
        assert commit.events == (("k", kv),)

    def test_mixed_puts_and_deletes_share_one_revision(self):
        s = KVStore()
        s.put("old", 1)  # rev 1
        s.apply_batch([("put", "new", 2), ("delete", "old")])  # rev 2
        assert s.revision == 2
        assert s.get("new").mod_revision == 2
        assert s.get("old") is None

    def test_ineffective_batch_consumes_no_revision(self):
        s = KVStore()
        commit = s.apply_batch([("delete", "missing")])
        assert commit.revision is None
        assert s.revision == 0
        assert s.apply_batch([]).revision is None

    def test_existed_reflects_pre_commit_state(self):
        s = KVStore()
        s.put("there", 1)
        commit = s.apply_batch([("delete", "there"), ("put", "fresh", 2)])
        assert commit.existed == {"there": True, "fresh": False}

    def test_events_since_replays_coalesced_batch(self):
        s = KVStore()
        s.put("a", 1)  # rev 1
        s.apply_batch([("put", "b", 2), ("put", "c", 3)])  # rev 2
        events = s.events_since(1)
        assert [(rev, key) for rev, key, _ in events] == [(2, "b"), (2, "c")]

    def test_compaction_drops_whole_batches(self):
        s = KVStore()
        s.apply_batch([("put", "a", 1), ("put", "b", 2)])  # rev 1
        s.apply_batch([("put", "a", 3), ("put", "c", 4)])  # rev 2
        s.compact(1)
        assert [(rev, key) for rev, key, _ in s.events_since(1)] == [(2, "a"), (2, "c")]

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError):
            KVStore().apply_batch([("swap", "a", 1)])


class TestTxnSingleRevision:
    def test_multi_op_txn_is_one_revision(self):
        s = KVStore()
        res = Txn(s).then(Op.put("x", 1), Op.put("y", 2), Op.delete("nope")).commit()
        assert res.succeeded
        assert s.revision == 1
        assert s.get("x").mod_revision == s.get("y").mod_revision == 1
        assert res.responses[2] is False  # delete of a missing key

    def test_txn_watchers_see_one_batch(self, sim):
        ds = Datastore(sim)
        batches = []
        ds.watches.watch("", batches.append, prefix=True, coalesced=True)
        ds.txn().then(Op.put("a", 1), Op.put("b", 2)).commit()
        assert len(batches) == 1
        assert [e.key for e in batches[0]] == ["a", "b"]
        assert batches[0].revision == 1

    def test_get_reads_post_commit_state(self):
        s = KVStore()
        res = Txn(s).then(Op.put("k", 41), Op.get("k")).commit()
        assert res.responses[1].value == 41

    def test_read_only_txn_consumes_no_revision(self):
        s = KVStore()
        s.put("k", 1)
        Txn(s).then(Op.get("k")).commit()
        assert s.revision == 1


class TestCoalescedWatch:
    def test_coalesced_watch_receives_watchbatch(self, sim):
        ds = Datastore(sim)
        seen = []
        w = ds.watches.watch("gpu/", seen.append, prefix=True, coalesced=True)
        ds.kv.apply_batch(
            [("put", "gpu/0", "busy"), ("put", "gpu/1", "idle"), ("put", "fn/x", 1)]
        )
        assert len(seen) == 1
        batch = seen[0]
        assert isinstance(batch, WatchBatch)
        assert [e.key for e in batch] == ["gpu/0", "gpu/1"]  # fn/x filtered out
        assert w.batches_delivered == 1
        assert w.delivered == 2

    def test_plain_watch_gets_individual_events_per_batch(self, sim):
        ds = Datastore(sim)
        seen = []
        w = ds.watches.watch("gpu/", seen.append, prefix=True)
        ds.kv.apply_batch([("put", "gpu/0", "busy"), ("put", "gpu/1", "idle")])
        assert [(e.type, e.key) for e in seen] == [
            (EventType.PUT, "gpu/0"),
            (EventType.PUT, "gpu/1"),
        ]
        assert w.batches_delivered == 1

    def test_replay_across_coalesced_batches_groups_by_revision(self, sim):
        ds = Datastore(sim)
        ds.kv.apply_batch([("put", "a", 1), ("put", "b", 2)])  # rev 1
        ds.kv.put("a", 3)  # rev 2
        ds.kv.apply_batch([("put", "b", 4), ("delete", "a")])  # rev 3
        seen = []
        ds.watches.watch("", seen.append, prefix=True, start_revision=0, coalesced=True)
        assert [b.revision for b in seen] == [1, 2, 3]
        assert [e.key for e in seen[0]] == ["a", "b"]
        assert [(e.key, e.type) for e in seen[2]] == [
            ("b", EventType.PUT),
            ("a", EventType.DELETE),
        ]

    def test_plain_replay_across_batches_stays_flat(self, sim):
        ds = Datastore(sim)
        ds.kv.apply_batch([("put", "a", 1), ("put", "b", 2)])
        seen = []
        ds.watches.watch("", seen.append, prefix=True, start_revision=0)
        assert [e.key for e in seen] == ["a", "b"]
        assert all(e.revision == 1 for e in seen)

    def test_delayed_delivery_schedules_one_event_per_batch(self, sim):
        ds = Datastore(sim, watch_delay=0.25)
        seen = []
        ds.watches.watch("", lambda b: seen.append((sim.now, len(b))), prefix=True, coalesced=True)
        pending_before = len(sim)
        ds.kv.apply_batch([("put", f"k/{i}", i) for i in range(10)])
        assert len(sim) == pending_before + 1  # one delivery event, not ten
        sim.run()
        assert seen == [(0.25, 10)]


class TestWriteBatch:
    def test_flush_commits_once_and_clears(self):
        s = KVStore()
        wb = WriteBatch(s)
        wb.put("a", 1)
        wb.put("b", 2)
        wb.delete("missing")
        assert len(wb) == 3
        commit = wb.flush()
        assert commit.revision == 1
        assert not wb
        assert wb.flush().revision is None  # nothing pending

    def test_lazy_value_evaluated_once_at_flush(self):
        s = KVStore()
        wb = WriteBatch(s)
        calls = []
        state = {"order": ["m1"]}

        def serialize():
            calls.append(1)
            return list(state["order"])

        for _ in range(10):  # ten touches, one serialization
            wb.put_lazy("gpu/lru/g0", serialize)
        state["order"] = ["m1", "m2"]
        wb.flush()
        assert calls == [1]
        assert s.get_value("gpu/lru/g0") == ["m1", "m2"]  # flush-time state

    def test_lazy_delete_sentinel(self):
        s = KVStore()
        s.put("cache/locations/m", ["g0"])
        wb = WriteBatch(s)
        wb.put_lazy("cache/locations/m", lambda: DELETE)
        wb.flush()
        assert "cache/locations/m" not in s

    def test_delete_then_put_through_writebatch_recreates(self):
        """The gateway-update pattern: client deletes fn/meta then re-puts
        it within one batch — the flush must recreate the key."""
        s = KVStore()
        s.put("fn/meta/f", {"v": 1})
        s.put("fn/meta/f", {"v": 2})
        wb = WriteBatch(s)
        wb.delete("fn/meta/f")
        wb.put("fn/meta/f", {"v": 3})
        wb.flush()
        kv = s.get("fn/meta/f")
        assert kv.value == {"v": 3}
        assert kv.version == 1  # recreated, like sequential delete+put

    def test_overwritten_counts_lww_absorption(self):
        wb = WriteBatch(KVStore())
        wb.put("k", 1)
        wb.put("k", 2)
        wb.delete("k")
        assert wb.overwritten == 2

    def test_peek_resolves_pending_state(self):
        s = KVStore()
        s.put("committed", "old")
        wb = WriteBatch(s)
        wb.put("committed", "new")
        wb.put_lazy("lazy", lambda: 7)
        wb.delete("committed2")
        assert wb.peek("committed") == ("put", "new")
        assert wb.peek("lazy") == ("put", 7)
        assert wb.peek("committed2") == ("delete", None)
        assert wb.peek("untouched") is None


class TestBatchedClient:
    def test_read_your_writes_before_flush(self, sim):
        ds = Datastore(sim, batched=True)
        c = ds.client()
        c.put("k", 1)
        assert ds.kv.revision == 0  # nothing committed yet
        assert c.get("k") == 1  # but the client sees its own write
        c.delete("k")
        assert c.get("k", "gone") == "gone"

    def test_range_overlays_pending_batch(self, sim):
        ds = Datastore(sim, batched=True)
        c = ds.client("ns")
        c.put("gpu/0", "idle")
        ds.flush()
        c.put("gpu/1", "busy")  # pending
        c.delete("gpu/0")  # pending
        assert c.range("gpu/") == {"gpu/1": "busy"}

    def test_flush_commits_one_revision_per_action(self, sim):
        ds = Datastore(sim, batched=True)
        c = ds.client()
        c.put("gpu/status/g0", "busy")
        c.put("gpu/finish_time/g0", 3.5)
        c.put("gpu/lru/g0", ["m1"])
        assert ds.flush() == 3
        assert ds.kv.revision == 1
        assert ds.stats.flushes == 1
        assert ds.stats.logical_writes == 3

    def test_post_event_hook_flushes_at_action_boundary(self, sim):
        ds = Datastore(sim, batched=True)
        c = ds.client()
        seen = []
        ds.watches.watch("", seen.append, prefix=True, coalesced=True)
        sim.schedule(1.0, lambda: (c.put("a", 1), c.put("b", 2)))
        sim.schedule(2.0, lambda: c.put("a", 3))
        sim.run()
        assert ds.kv.revision == 2  # one revision per event, not per put
        assert [b.revision for b in seen] == [1, 2]
        assert [e.key for e in seen[0]] == ["a", "b"]

    def test_lease_attaches_at_flush(self, sim):
        ds = Datastore(sim, batched=True)
        c = ds.client()
        lease = c.lease(ttl=5.0)
        c.put("gpu/status/g0", "idle", lease=lease)
        ds.flush()
        assert c.get("gpu/status/g0") == "idle"
        sim.run(until=5.0)
        assert c.get("gpu/status/g0") is None  # lease expiry deleted it

    def test_unbatched_put_lazy_writes_through(self, sim):
        ds = Datastore(sim)  # batched=False
        c = ds.client()
        c.put_lazy("k", lambda: 42)
        assert ds.kv.revision == 1
        c.put_lazy("k", lambda: DELETE)
        assert "k" not in ds.kv
