"""Property-based tests (hypothesis) for MVCC store invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore import KVStore

# A mutation is ("put", key, value) or ("delete", key).
_keys = st.sampled_from(["a", "b", "c", "gpu/0", "gpu/1"])
_mutations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _keys, st.integers(-5, 5)),
        st.tuples(st.just("delete"), _keys),
    ),
    max_size=40,
)


def _apply(store: KVStore, ops):
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2])
        else:
            store.delete(op[1])


@given(_mutations)
def test_revision_counts_effective_mutations(ops):
    store = KVStore()
    effective = 0
    live = set()
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2])
            live.add(op[1])
            effective += 1
        else:
            existed = op[1] in live
            assert store.delete(op[1]) is existed
            live.discard(op[1])
            effective += 1 if existed else 0
    assert store.revision == effective
    assert set(store.keys()) == live


@given(_mutations)
def test_historical_reads_replay_the_live_view(ops):
    """Reading every key at revision r must match the live view as of r."""
    store = KVStore()
    snapshots = {0: {}}
    view = {}
    for op in ops:
        if op[0] == "put":
            store.put(op[1], op[2])
            view[op[1]] = op[2]
            snapshots[store.revision] = dict(view)
        else:
            if store.delete(op[1]):
                view.pop(op[1], None)
                snapshots[store.revision] = dict(view)
    all_keys = {op[1] for op in ops}
    for rev, snap in snapshots.items():
        if rev == 0:
            continue
        for key in all_keys:
            kv = store.get(key, revision=rev)
            if key in snap:
                assert kv is not None and kv.value == snap[key]
            else:
                assert kv is None


@given(_mutations, st.integers(0, 40))
@settings(max_examples=60)
def test_compaction_never_affects_live_or_newer_reads(ops, compact_at):
    store = KVStore()
    _apply(store, ops)
    final = {kv.key: kv.value for kv in store.items()}
    rev = min(compact_at, store.revision)
    store.compact(rev)
    assert {kv.key: kv.value for kv in store.items()} == final
    # reads at the compaction revision and at head still work
    for key in final:
        assert store.get(key, revision=store.revision).value == final[key]


@given(_mutations)
def test_version_counts_writes_since_creation(ops):
    store = KVStore()
    versions: dict[str, int] = {}
    for op in ops:
        if op[0] == "put":
            versions[op[1]] = versions.get(op[1], 0) + 1
            kv = store.put(op[1], op[2])
            assert kv.version == versions[op[1]]
        else:
            if store.delete(op[1]):
                versions.pop(op[1], None)
