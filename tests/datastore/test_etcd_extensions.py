"""Unit tests for etcd extensions: bounded ranges, interval ranges, and
watch-from-revision replay."""

import pytest

from repro.datastore import CompactedError, Datastore, EventType, KVStore
from repro.sim import Simulator


@pytest.fixture
def store():
    s = KVStore()
    for k in ("a", "b", "c", "x/1", "x/2", "x/3"):
        s.put(k, k.upper())
    return s


class TestBoundedRange:
    def test_limit_truncates(self, store):
        got = store.range("x/", limit=2)
        assert [kv.key for kv in got] == ["x/1", "x/2"]

    def test_limit_none_returns_all(self, store):
        assert len(store.range("x/")) == 3

    def test_limit_zero(self, store):
        assert store.range("x/", limit=0) == []

    def test_negative_limit_rejected(self, store):
        with pytest.raises(ValueError):
            store.range("x/", limit=-1)


class TestIntervalRange:
    def test_half_open_interval(self, store):
        got = store.range_interval("a", "c")
        assert [kv.key for kv in got] == ["a", "b"]

    def test_empty_when_end_not_after_start(self, store):
        assert store.range_interval("c", "a") == []
        assert store.range_interval("a", "a") == []

    def test_interval_with_limit(self, store):
        got = store.range_interval("a", "z", limit=3)
        assert len(got) == 3

    def test_interval_spanning_prefixes(self, store):
        got = store.range_interval("b", "x/2")
        assert [kv.key for kv in got] == ["b", "c", "x/1"]


class TestEventsSince:
    def test_replays_all_after_revision(self):
        s = KVStore()
        s.put("a", 1)  # rev 1
        s.put("b", 2)  # rev 2
        s.delete("a")  # rev 3
        events = s.events_since(1)
        assert [(rev, key, kv.value if kv else None) for rev, key, kv in events] == [
            (2, "b", 2),
            (3, "a", None),
        ]

    def test_since_head_is_empty(self, store):
        assert store.events_since(store.revision) == []

    def test_compaction_blocks_old_replay(self):
        s = KVStore()
        s.put("a", 1)
        s.put("a", 2)
        s.put("a", 3)
        s.compact(2)
        with pytest.raises(CompactedError):
            s.events_since(1)
        assert len(s.events_since(2)) == 1  # the rev-3 event survives


class TestWatchFromRevision:
    def test_catch_up_then_live(self):
        ds = Datastore(Simulator())
        ds.kv.put("gpu/0", "idle")   # rev 1
        ds.kv.put("gpu/1", "busy")   # rev 2
        seen = []
        ds.watches.watch("gpu/", seen.append, prefix=True, start_revision=0)
        # both historical events replayed immediately
        assert [(e.key, e.value) for e in seen] == [("gpu/0", "idle"), ("gpu/1", "busy")]
        ds.kv.put("gpu/0", "busy")  # live event
        assert seen[-1].value == "busy"
        assert len(seen) == 3

    def test_partial_catch_up(self):
        ds = Datastore(Simulator())
        ds.kv.put("k", 1)  # rev 1
        ds.kv.put("k", 2)  # rev 2
        seen = []
        ds.watches.watch("k", seen.append, start_revision=1)
        assert [(e.type, e.value) for e in seen] == [(EventType.PUT, 2)]

    def test_catch_up_includes_deletes(self):
        ds = Datastore(Simulator())
        ds.kv.put("k", 1)
        ds.kv.delete("k")
        seen = []
        ds.watches.watch("k", seen.append, start_revision=0)
        assert [e.type for e in seen] == [EventType.PUT, EventType.DELETE]

    def test_catch_up_filters_by_key(self):
        ds = Datastore(Simulator())
        ds.kv.put("a", 1)
        ds.kv.put("b", 2)
        seen = []
        ds.watches.watch("a", seen.append, start_revision=0)
        assert [e.key for e in seen] == ["a"]

    def test_watch_without_revision_gets_no_history(self):
        ds = Datastore(Simulator())
        ds.kv.put("k", 1)
        seen = []
        ds.watches.watch("k", seen.append)
        assert seen == []
