"""Unit tests for the metrics collector (duplicates integral, completions)."""

import pytest

from repro.metrics import MetricsCollector
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def collector(sim):
    return MetricsCollector(sim)


class TestDuplicatesTracking:
    def test_time_weighted_average(self, sim, collector):
        # model on 1 GPU for [0,4), 2 GPUs for [4,8), horizon 8 → (4*1+4*2)/8
        collector.on_cache_event("load", "g0", "m", 0.0)
        sim.schedule(4.0, collector.on_cache_event, "load", "g1", "m", 4.0)
        sim.schedule(8.0, lambda: None)
        sim.run()
        assert collector.average_duplicates("m") == pytest.approx(1.5)
        assert collector.current_duplicates("m") == 2
        assert collector.peak_duplicates("m") == 2

    def test_eviction_reduces_count(self, sim, collector):
        collector.on_cache_event("load", "g0", "m", 0.0)
        sim.schedule(2.0, collector.on_cache_event, "evict", "g0", "m", 2.0)
        sim.schedule(4.0, lambda: None)
        sim.run()
        # 2s at 1 copy, 2s at 0 → 0.5 average
        assert collector.average_duplicates("m") == pytest.approx(0.5)
        assert collector.current_duplicates("m") == 0

    def test_use_events_do_not_change_residency(self, sim, collector):
        collector.on_cache_event("load", "g0", "m", 0.0)
        collector.on_cache_event("use", "g0", "m", 0.0)
        assert collector.current_duplicates("m") == 1
        assert collector.cache_events == 2

    def test_negative_residency_detected(self, collector):
        with pytest.raises(RuntimeError):
            collector.on_cache_event("evict", "g0", "ghost", 0.0)

    def test_unknown_model_zero(self, sim, collector):
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert collector.average_duplicates("ghost") == 0.0
        assert collector.peak_duplicates("ghost") == 0

    def test_explicit_horizon_extends_open_interval(self, sim, collector):
        """A resident model stays counted through the explicit horizon."""
        collector.on_cache_event("load", "g0", "m", 0.0)
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert collector.average_duplicates("m", horizon=10.0) == pytest.approx(1.0)
        # evicted at 5 → only half the horizon is covered
        collector.on_cache_event("evict", "g0", "m", 5.0)
        assert collector.average_duplicates("m", horizon=10.0) == pytest.approx(0.5)

    def test_zero_duration(self, collector):
        assert collector.average_duplicates("m") == 0.0


class TestCompletions:
    def test_on_complete_requires_completion(self, collector, make_request):
        with pytest.raises(ValueError):
            collector.on_complete(make_request())

    def test_most_invoked_model(self, collector, make_request):
        for i, arch in enumerate(["alexnet", "alexnet", "vgg19"]):
            r = make_request(f"fn-{arch}", arch, arrival=0.0)
            r.dispatched_at = 0.0
            r.completed_at = 1.0
            collector.on_complete(r)
        assert collector.most_invoked_model() == "fn-alexnet"

    def test_most_invoked_empty(self, collector):
        assert collector.most_invoked_model() is None
