"""Unit tests for run summaries (the paper's metric definitions)."""

import pytest

from repro.cluster import ClusterSpec, build_cluster
from repro.metrics import MetricsCollector, summarize
from repro.sim import Simulator


@pytest.fixture
def env():
    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec.homogeneous(1, 2))
    return sim, cluster, MetricsCollector(sim)


def completed(make_request, *, arrival, dispatched, done, hit, false_miss=False, fn="f", arch="alexnet"):
    r = make_request(fn, arch, arrival=arrival)
    r.dispatched_at = dispatched
    r.exec_start_at = dispatched
    r.completed_at = done
    r.cache_hit = hit
    r.false_miss = false_miss
    return r


class TestSummarize:
    def test_basic_metrics(self, env, make_request):
        sim, cluster, col = env
        col.on_complete(completed(make_request, arrival=0, dispatched=0, done=2, hit=True))
        col.on_complete(
            completed(make_request, arrival=0, dispatched=2, done=6, hit=False, false_miss=True)
        )
        sim.schedule(10.0, lambda: None)
        sim.run()
        s = summarize(col, cluster, policy="t", working_set=2)
        assert s.completed_requests == 2
        assert s.avg_latency_s == pytest.approx(4.0)  # (2 + 6) / 2
        assert s.cache_miss_ratio == pytest.approx(0.5)
        assert s.false_miss_ratio == pytest.approx(0.5)
        assert s.latency_variance == pytest.approx(4.0)  # var([2, 6])
        assert s.avg_queueing_s == pytest.approx(1.0)
        assert s.policy == "t"

    def test_empty_run_rejected(self, env):
        sim, cluster, col = env
        with pytest.raises(ValueError):
            summarize(col, cluster)

    def test_sm_utilization_mean_over_gpus(self, env, make_request):
        sim, cluster, col = env
        g0, g1 = cluster.gpus
        sim.schedule(0.0, g0.begin_inference)
        sim.schedule(5.0, g0.become_idle)
        sim.schedule(10.0, lambda: None)
        sim.run()
        col.on_complete(completed(make_request, arrival=0, dispatched=0, done=5, hit=True))
        s = summarize(col, cluster)
        # g0: 50%, g1: 0% → mean 25%
        assert s.sm_utilization == pytest.approx(0.25)

    def test_percentiles_ordered(self, env, make_request):
        sim, cluster, col = env
        for i in range(100):
            col.on_complete(
                completed(make_request, arrival=0, dispatched=0, done=float(i + 1), hit=True)
            )
        sim.schedule(100.0, lambda: None)
        sim.run()
        s = summarize(col, cluster)
        assert s.p50_latency_s <= s.p99_latency_s
        assert s.p50_latency_s == pytest.approx(50.5)

    def test_top_model_defaults_to_most_invoked(self, env, make_request):
        sim, cluster, col = env
        for fn in ("a", "a", "b"):
            col.on_complete(
                completed(make_request, arrival=0, dispatched=0, done=1, hit=True, fn=fn)
            )
        sim.schedule(1.0, lambda: None)
        sim.run()
        s = summarize(col, cluster)
        assert s.top_model == "a"

    def test_row_is_flat_and_rounded(self, env, make_request):
        sim, cluster, col = env
        col.on_complete(completed(make_request, arrival=0, dispatched=0, done=1.23456, hit=True))
        sim.schedule(2.0, lambda: None)
        sim.run()
        row = summarize(col, cluster, policy="x", working_set=7).row()
        assert row["policy"] == "x"
        assert row["working_set"] == 7
        assert row["avg_latency_s"] == 1.235
