"""Streaming collector vs the columnar path: exact-parity contract.

Two collectors observe the *same* run (the streaming one rides the
completion/cache subscription hooks), so every comparison below is
same-stream: inside the exact window the streaming summary must be
byte-identical to the columnar one; past the window counts/rates stay
exact and quantiles hold the histogram's documented relative bound.
"""

import csv

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.summary import per_architecture_breakdown, summarize
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import WorkloadSpec, build_workload


def _run_with_shadow(spec, **collector_kwargs):
    """One §V-A run observed by the columnar collector and a streaming
    shadow subscribed to the same completion/cache streams."""
    workload = build_workload(spec)
    system = FaaSCluster(SystemConfig())
    shadow = MetricsCollector(system.sim, streaming=True, **collector_kwargs)
    system.subscribe_completion(shadow.on_complete)
    system.cache.subscribe(shadow.on_cache_event)
    system.submit_workload(workload)
    system.run()
    return system, shadow, workload


@pytest.fixture(scope="module")
def run_2k():
    spec = WorkloadSpec(working_set=15, minutes=6, sla_s=2.0, seed=0)
    return _run_with_shadow(spec)


@pytest.fixture(scope="module")
def run_20k():
    # 61 minutes × 325 req/min ≈ 19.8k requests: the top of the exact window
    spec = WorkloadSpec(working_set=15, minutes=61, seed=0)
    return _run_with_shadow(spec)


class TestExactWindowParity:
    def test_summary_byte_exact_at_2k(self, run_2k):
        system, shadow, workload = run_2k
        kwargs = dict(policy="lalbo3", working_set=15, top_model=workload.top_model_id)
        assert summarize(shadow, system.cluster, **kwargs) == summarize(
            system.metrics, system.cluster, **kwargs
        )

    def test_summary_byte_exact_at_20k(self, run_20k):
        system, shadow, workload = run_20k
        assert shadow.completed_count > 19_000
        kwargs = dict(policy="lalbo3", working_set=15, top_model=workload.top_model_id)
        assert summarize(shadow, system.cluster, **kwargs) == summarize(
            system.metrics, system.cluster, **kwargs
        )

    def test_breakdown_byte_exact(self, run_2k):
        system, shadow, _ = run_2k
        assert per_architecture_breakdown(shadow) == per_architecture_breakdown(
            system.metrics
        )

    def test_window_holds_identical_float64_values(self, run_2k):
        system, shadow, _ = run_2k
        window = shadow.exact_window()
        cols = system.metrics.columns()
        assert np.array_equal(window.latency, cols.latency)
        assert np.array_equal(window.queueing, cols.queueing)
        assert np.array_equal(window.cache_hit, cols.cache_hit)

    def test_streaming_retains_no_request_objects(self, run_2k):
        _, shadow, _ = run_2k
        assert shadow.completed == []
        assert shadow._rows == []
        with pytest.raises(RuntimeError):
            shadow.columns()


class TestAboveCapRegime:
    @pytest.fixture(scope="class")
    def capped(self):
        spec = WorkloadSpec(working_set=15, minutes=6, sla_s=2.0, seed=0)
        return _run_with_shadow(spec, exact_cap=500)

    def test_window_dropped_past_cap(self, capped):
        _, shadow, _ = capped
        assert shadow.completed_count > 500
        assert shadow.exact_window() is None

    def test_counts_and_rates_stay_exact(self, capped):
        system, shadow, workload = capped
        kwargs = dict(policy="lalbo3", working_set=15, top_model=workload.top_model_id)
        ref = summarize(system.metrics, system.cluster, **kwargs)
        got = summarize(shadow, system.cluster, **kwargs)
        assert got.completed_requests == ref.completed_requests
        assert got.cache_miss_ratio == ref.cache_miss_ratio
        assert got.false_miss_ratio == ref.false_miss_ratio
        assert got.sla_violation_ratio == ref.sla_violation_ratio
        assert got.goodput_rps == ref.goodput_rps
        assert got.sm_utilization == ref.sm_utilization
        assert got.avg_duplicates_top_model == ref.avg_duplicates_top_model

    def test_means_compensated_to_float64_truth(self, capped):
        system, shadow, workload = capped
        kwargs = dict(policy="lalbo3", working_set=15, top_model=workload.top_model_id)
        ref = summarize(system.metrics, system.cluster, **kwargs)
        got = summarize(shadow, system.cluster, **kwargs)
        assert got.avg_latency_s == pytest.approx(ref.avg_latency_s, rel=1e-12)
        assert got.avg_queueing_s == pytest.approx(ref.avg_queueing_s, rel=1e-12)
        assert got.latency_variance == pytest.approx(ref.latency_variance, rel=1e-9)

    def test_quantiles_within_documented_bound(self, capped):
        system, shadow, workload = capped
        kwargs = dict(policy="lalbo3", working_set=15, top_model=workload.top_model_id)
        ref = summarize(system.metrics, system.cluster, **kwargs)
        got = summarize(shadow, system.cluster, **kwargs)
        bound = shadow.lat_hist.relative_error + 1e-12
        assert abs(got.p50_latency_s - ref.p50_latency_s) / ref.p50_latency_s <= bound
        assert abs(got.p99_latency_s - ref.p99_latency_s) / ref.p99_latency_s <= bound

    def test_breakdown_counts_exact_means_bounded(self, capped):
        system, shadow, _ = capped
        ref = per_architecture_breakdown(system.metrics)
        got = per_architecture_breakdown(shadow)
        assert set(got) == set(ref)
        for arch, cell in got.items():
            assert cell["count"] == ref[arch]["count"]
            assert cell["miss_ratio"] == ref[arch]["miss_ratio"]
            assert cell["avg_latency_s"] == pytest.approx(
                ref[arch]["avg_latency_s"], rel=1e-12
            )


class TestSpill:
    def test_rows_teed_to_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        spec = WorkloadSpec(working_set=15, minutes=1, sla_s=2.0, seed=0)
        system, shadow, _ = _run_with_shadow(
            spec, exact_cap=10, spill_to=str(path)
        )
        shadow.close_spill()
        assert shadow.spill_path == str(path)
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == shadow.completed_count
        # the spill holds full-fidelity rows, cap notwithstanding
        ref = system.metrics.columns()
        assert float(rows[0]["arrival"]) == ref.arrival[0]
        assert float(rows[0]["completed"]) == ref.completed[0]
        assert rows[0]["architecture"] in system.metrics.architectures


class TestModeGuards:
    def test_exact_window_requires_streaming(self):
        system = FaaSCluster(SystemConfig())
        with pytest.raises(RuntimeError):
            system.metrics.exact_window()

    def test_lost_requests_counted_not_retained(self):
        system = FaaSCluster(SystemConfig())
        shadow = MetricsCollector(system.sim, streaming=True)
        from repro.models import ModelInstance, get_profile

        inst = ModelInstance("m0", get_profile("resnet50"))
        from repro.core.request import InferenceRequest

        req = InferenceRequest("f", inst, arrival_time=0.0)
        shadow.on_lost(req, "deadline")
        assert shadow.lost_count == 1
        assert shadow.lost == []
