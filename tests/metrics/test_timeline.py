"""Unit tests for the timeline sampler."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.metrics.timeline import TimelineSampler
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces import AzureTraceConfig, SyntheticAzureTrace, WorkloadSpec, build_workload


@pytest.fixture
def system():
    return FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 2), policy="lalbo3"))


def run_small_workload(system, sampler_period=5.0):
    trace = SyntheticAzureTrace(
        AzureTraceConfig(num_functions=100, mean_rate_per_minute=500, seed=4)
    )
    wl = build_workload(
        WorkloadSpec(working_set=4, minutes=2, requests_per_minute=30), trace=trace
    )
    sampler = TimelineSampler(system, period_s=sampler_period)
    sampler.start()
    for r in wl.requests:
        system.submit_at(r)
    system.run(until=wl.duration_s)
    sampler.stop()
    system.run()
    return sampler, wl


class TestSampling:
    def test_samples_on_schedule(self, system):
        sampler, wl = run_small_workload(system, sampler_period=10.0)
        times = sampler.series("time_s")
        assert len(times) == 12  # 120 s / 10 s
        np.testing.assert_allclose(np.diff(times), 10.0)

    def test_gpu_state_partition(self, system):
        sampler, _ = run_small_workload(system)
        total = len(system.cluster.gpus)
        idle = sampler.series("gpus_idle")
        load = sampler.series("gpus_loading")
        infer = sampler.series("gpus_inferring")
        np.testing.assert_array_equal(idle + load + infer, total)

    def test_completed_monotone(self, system):
        sampler, _ = run_small_workload(system)
        done = sampler.series("completed_requests")
        assert np.all(np.diff(done) >= 0)
        assert done[-1] > 0

    def test_instantaneous_utilization_bounded(self, system):
        sampler, _ = run_small_workload(system)
        util = sampler.instantaneous_sm_utilization()
        assert np.all(util >= 0) and np.all(util <= 1)
        assert util.max() > 0  # the workload actually used the GPUs

    def test_interval_miss_ratio(self, system):
        sampler, _ = run_small_workload(system)
        ratios = sampler.interval_miss_ratio()
        finite = ratios[~np.isnan(ratios)]
        assert np.all((finite >= 0) & (finite <= 1))
        # the first active interval contains compulsory (cold) misses
        assert finite[0] > 0

    def test_stop_halts_sampling(self, system):
        sampler = TimelineSampler(system, period_s=1.0)
        sampler.start()
        system.run(until=3.0)
        sampler.stop()
        system.sim.schedule(5.0, lambda: None)
        system.run()
        assert len(sampler.samples) == 3


class TestDecimation:
    """max_samples: drop every other row, double the period, stay on
    boundaries — the run holds between max/2 and max rows at any length."""

    def test_sampler_decimates_onto_doubled_boundaries(self, system):
        trace = SyntheticAzureTrace(
            AzureTraceConfig(num_functions=100, mean_rate_per_minute=500, seed=4)
        )
        wl = build_workload(
            WorkloadSpec(working_set=4, minutes=2, requests_per_minute=30), trace=trace
        )
        sampler = TimelineSampler(system, period_s=10.0, max_samples=8)
        sampler.start()
        for r in wl.requests:
            system.submit_at(r)
        system.run(until=wl.duration_s)
        sampler.stop()
        system.run()
        # 120 s at period 10 is 12 raw rows; the budget of 8 forces one
        # decimation at t=80, after which sampling continues at period 20
        assert sampler.period_s == 20.0
        times = sampler.series("time_s")
        np.testing.assert_allclose(times, [20, 40, 60, 80, 100, 120])
        assert len(sampler.samples) == 6 <= sampler.max_samples

    def test_probe_decimates_onto_doubled_boundaries(self, system):
        from repro.metrics.timeline import TimelineProbe

        trace = SyntheticAzureTrace(
            AzureTraceConfig(num_functions=100, mean_rate_per_minute=500, seed=4)
        )
        wl = build_workload(
            WorkloadSpec(working_set=4, minutes=2, requests_per_minute=30), trace=trace
        )
        probe = TimelineProbe(system, period_s=5.0, max_samples=8)
        for r in wl.requests:
            system.submit_at(r)
        system.run(until=wl.duration_s)
        probe.stop()
        system.run()
        # the raw period-5 boundaries cross the budget twice: 5→10→20 s.
        # (being passive, the probe records a boundary only once a later
        # event crosses it, so the final 120 s boundary never lands)
        assert probe.period_s == 20.0
        times = probe.to_numpy()[:, 0]
        np.testing.assert_allclose(times, [20, 40, 60, 80, 100])
        assert len(probe) == 5 <= probe.max_samples

    def test_decimated_counters_still_monotone(self, system):
        sampler, _ = run_small_workload(system, sampler_period=5.0)
        done = sampler.series("completed_requests")
        assert np.all(np.diff(done) >= 0)

    @pytest.mark.parametrize("bad", [0, 1, 3, 7])
    def test_rejects_odd_or_tiny_budget(self, system, bad):
        with pytest.raises(ValueError):
            TimelineSampler(system, max_samples=bad)
        from repro.metrics.timeline import TimelineProbe

        with pytest.raises(ValueError):
            TimelineProbe(system, max_samples=bad)


class TestAccessors:
    def test_unknown_field_rejected(self, system):
        sampler, _ = run_small_workload(system)
        with pytest.raises(KeyError):
            sampler.series("bogus")

    def test_empty_series(self, system):
        sampler = TimelineSampler(system)
        assert sampler.series("time_s").size == 0
        assert sampler.peak_queue_depth() == 0

    def test_peak_queue_depth(self, system):
        sampler, _ = run_small_workload(system)
        assert sampler.peak_queue_depth() >= 0

    def test_to_rows(self, system):
        sampler, _ = run_small_workload(system)
        rows = sampler.to_rows()
        assert len(rows) == len(sampler.samples)
        assert "global_queue_depth" in rows[0]

    def test_invalid_period(self, system):
        with pytest.raises(ValueError):
            TimelineSampler(system, period_s=0)
