"""Unit tests for the fixed-size log-bucketed histogram."""

import math

import numpy as np
import pytest

from repro.metrics.histogram import DEFAULT_GROWTH, LogHistogram, quantile_error_bound


class TestGeometry:
    def test_fixed_bucket_count_and_footprint(self):
        h = LogHistogram()
        assert h.nbytes() == h.counts.nbytes
        before = h.nbytes()
        for v in np.random.default_rng(0).uniform(1e-5, 50.0, size=10_000):
            h.record(float(v))
        assert h.nbytes() == before  # memory never grows with samples

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            LogHistogram(lo=0.0, hi=1.0)
        with pytest.raises(ValueError):
            LogHistogram(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            LogHistogram(growth=1.0)

    def test_error_bound_matches_growth(self):
        assert quantile_error_bound(DEFAULT_GROWTH) == pytest.approx(
            math.sqrt(DEFAULT_GROWTH) - 1.0
        )
        assert LogHistogram().relative_error <= 0.0101


class TestExactMoments:
    def test_count_min_max_sum_exact(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=5_000)
        h = LogHistogram()
        h.record_many(float(v) for v in values)
        assert h.count == len(h) == len(values)
        assert h.min == values.min()
        assert h.max == values.max()
        # compensated sum tracks the float64 truth to ~1 ulp
        assert h.sum == pytest.approx(float(values.sum()), rel=1e-14)
        assert h.mean() == pytest.approx(float(values.mean()), rel=1e-14)
        assert h.variance() == pytest.approx(float(values.var(ddof=0)), rel=1e-9)

    def test_empty_histogram_raises(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.quantile(0.5)


class TestQuantiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.01, 0.25, 0.5, 0.9, 0.99])
    def test_within_documented_relative_bound(self, seed, q):
        rng = np.random.default_rng(seed)
        values = rng.lognormal(mean=0.5, sigma=1.0, size=20_000)
        h = LogHistogram()
        h.record_many(float(v) for v in values)
        exact = float(np.quantile(values, q))
        assert abs(h.quantile(q) - exact) / exact <= h.relative_error + 1e-12

    def test_extremes_are_exact(self):
        h = LogHistogram()
        h.record_many([0.5, 1.0, 2.0, 8.0])
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 8.0

    def test_result_clamped_to_observed_range(self):
        h = LogHistogram()
        h.record(3.0)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == 3.0

    def test_below_lo_clamps_into_first_bucket(self):
        h = LogHistogram(lo=1e-3)
        h.record(1e-9)  # far below range
        h.record(1e-9)
        assert h.count == 2
        assert h.min == 1e-9  # min/max still exact
        assert h.quantile(0.5) == 1e-9  # clamped to observed range

    def test_percentile_alias(self):
        h = LogHistogram()
        h.record_many([1.0, 2.0, 3.0])
        assert h.percentile(50.0) == h.quantile(0.5)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestMerge:
    def test_merge_equals_single_fold(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0.01, 100.0, size=4_000)
        whole = LogHistogram()
        whole.record_many(float(v) for v in values)
        a, b = LogHistogram(), LogHistogram()
        a.record_many(float(v) for v in values[:1_500])
        b.record_many(float(v) for v in values[1_500:])
        a.merge(b)
        assert a.count == whole.count
        assert np.array_equal(a.counts, whole.counts)
        assert a.min == whole.min and a.max == whole.max
        assert a.mean() == pytest.approx(whole.mean(), rel=1e-12)
        for q in (0.1, 0.5, 0.99):
            assert a.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_geometry(self):
        with pytest.raises(ValueError):
            LogHistogram().merge(LogHistogram(growth=1.05))


class TestEdgeCases:
    def test_empty_histogram_rejects_every_summary(self):
        h = LogHistogram()
        with pytest.raises(ValueError):
            h.mean()
        with pytest.raises(ValueError):
            h.variance()
        for q in (0.0, 0.5, 1.0):
            with pytest.raises(ValueError):
                h.quantile(q)

    def test_single_sample_answers_every_quantile_exactly(self):
        h = LogHistogram()
        h.record(0.0123)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.quantile(q) == 0.0123
        assert h.mean() == 0.0123
        assert h.variance() == 0.0
        assert (h.count, h.min, h.max) == (1, 0.0123, 0.0123)

    def test_beyond_top_bucket_clamps_but_keeps_scalars_exact(self):
        h = LogHistogram(lo=1e-6, hi=10.0)
        h.record(25.0)   # past hi: clamps into the last bucket
        h.record(1e9)    # far past hi: same bucket
        assert h.counts[-1] == 2 and int(h.counts.sum()) == 2
        # the clamp only coarsens quantiles; scalars stay exact
        assert h.max == 1e9
        assert h.sum == 25.0 + 1e9
        assert h.quantile(1.0) == 1e9
        # midpoint of the top bucket is clamped into the observed range
        assert h.min <= h.quantile(0.5) <= h.max
