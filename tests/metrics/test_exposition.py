"""Prometheus text exposition: format shape and counter fidelity."""

import re

from repro.metrics import prometheus_exposition
from repro.runtime import FaaSCluster, SystemConfig
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload


def _replay(cfg):
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=1, seed=0),
        trace=SyntheticAzureTrace(),
    )
    system = FaaSCluster(cfg)
    system.submit_workload(workload)
    system.run()
    return system


_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.+einf]+$'
)


def test_every_line_is_help_type_or_sample():
    text = prometheus_exposition(_replay(SystemConfig()))
    for line in text.strip().splitlines():
        assert (
            line.startswith("# HELP ")
            or line.startswith("# TYPE ")
            or _SAMPLE.match(line)
        ), line


def test_counters_match_the_run():
    system = _replay(SystemConfig())
    text = prometheus_exposition(system)
    assert (
        f"repro_requests_completed_total {system.metrics.completed_count}"
        in text
    )
    assert (
        f'repro_scheduler_passes_total{{outcome="executed"}} '
        f"{system.scheduler.passes_executed}" in text
    )
    assert f"repro_kv_revision {system.datastore.kv.revision}" in text


def test_tracer_rings_exposed_when_tracing():
    system = _replay(SystemConfig(tracer="flight"))
    text = prometheus_exposition(system)
    totals = system.tracer.totals
    assert f'repro_trace_records_total{{ring="requests"}} {totals["requests"]}' in text
    assert f'repro_trace_records_total{{ring="passes"}} {totals["passes"]}' in text
    assert 'repro_trace_records_dropped_total{ring="requests"} 0' in text


def test_no_tracer_metrics_without_tracer():
    text = prometheus_exposition(_replay(SystemConfig()))
    assert "repro_trace_records_total" not in text


def test_streaming_mode_renders_latency_histogram():
    system = _replay(SystemConfig(metrics_streaming=True, metrics_exact_cap=0))
    text = prometheus_exposition(system)
    assert "# TYPE repro_request_latency_seconds histogram" in text
    assert 'repro_request_latency_seconds_bucket{le="+Inf"}' in text
    count = re.search(r"repro_request_latency_seconds_count (\d+)", text)
    assert count and int(count.group(1)) == system.metrics.completed_count
