"""Unit tests for the discrete-event simulation kernel."""

import math

import pytest

from repro.sim import SimError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_breaks_same_time_ties():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "late", priority=1)
    sim.schedule(1.0, fired.append, "early", priority=-1)
    sim.run()
    assert fired == ["early", "late"]


def test_negative_delay_rejected():
    with pytest.raises(SimError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimError):
        sim.schedule_at(9.9, lambda: None)


def test_nan_time_rejected():
    with pytest.raises(SimError):
        Simulator().schedule_at(float("nan"), lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.now == 0.0  # cancelled events do not advance the clock


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_call_soon_runs_after_pending_same_time_events():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, "first")
    sim.call_soon(fired.append, "second")
    sim.run()
    assert fired == ["first", "second"]


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.5)
    assert fired == ["a"]
    assert sim.now == 2.5
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_includes_events_exactly_at_until():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.now == 1.0


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() == math.inf
    sim.schedule(4.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek() == 2.0


def test_peek_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek() == 2.0


def test_len_counts_pending_non_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert len(sim) == 2
    ev.cancel()
    assert len(sim) == 1


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimError):
        sim.run(max_events=100)


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        sim.run()

    sim.schedule(1.0, reenter)
    with pytest.raises(SimError):
        sim.run()


def test_processed_events_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_drain_yields_pending_events_without_firing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    ev = sim.schedule(2.0, fired.append, "b")
    ev.cancel()
    drained = list(sim.drain())
    assert len(drained) == 1
    assert fired == []
    assert sim.step() is False


class TestScheduleMany:
    """Bulk injection must be bit-identical to a loop of schedule_at."""

    def _fire_all(self, sim):
        fired = []
        probe = fired.append
        return sim, fired, probe

    def test_equivalent_to_loop_of_schedule_at(self):
        times = [0.5, 1.0, 1.0, 2.5, 2.5, 7.0]
        loop_sim, bulk_sim = Simulator(), Simulator()
        loop_fired, bulk_fired = [], []
        for i, t in enumerate(times):
            loop_sim.schedule_at(t, loop_fired.append, (t, i))
        bulk_sim.schedule_many(times, bulk_fired.append, (((t, i),) for i, t in enumerate(times)))
        loop_sim.run()
        bulk_sim.run()
        assert bulk_fired == loop_fired
        assert bulk_sim.now == loop_sim.now
        assert bulk_sim.processed_events == loop_sim.processed_events

    def test_same_instant_ties_keep_submission_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many([1.0] * 10, fired.append, ((i,) for i in range(10)))
        sim.run()
        assert fired == list(range(10))

    def test_unsorted_times_still_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many([3.0, 1.0, 2.0], fired.append, ((t,) for t in (3.0, 1.0, 2.0)))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_interleaves_with_previously_scheduled_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "old")
        sim.schedule_many([1.0, 2.0], fired.append, (("a",), ("b",)))
        sim.run()
        assert fired == ["a", "old", "b"]

    def test_without_args_seq(self):
        sim = Simulator()
        fired = []
        sim.schedule_many([1.0, 2.0], lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.0]

    def test_returned_events_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many([1.0, 2.0, 3.0], fired.append, ((i,) for i in range(3)))
        events[1].cancel()
        assert len(sim) == 2
        sim.run()
        assert fired == [0, 2]

    def test_validation_rolls_back_whole_batch(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimError):
            sim.schedule_many([6.0, 4.0], lambda: None)  # 4.0 is in the past
        assert len(sim) == 0
        assert sim.step() is False

    def test_length_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_many([1.0, 2.0], lambda x: None, [(1,)])

    def test_large_presorted_column(self):
        sim = Simulator()
        fired = []
        times = [i * 0.001 for i in range(5000)]
        sim.schedule_many(times, fired.append, ((i,) for i in range(5000)))
        sim.run()
        assert fired == list(range(5000))


class TestSlabRecycling:
    def test_cancelled_slot_recycles_without_misfire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(5.0, fired.append, "stale")
        ev.cancel()
        # the recycled slot is taken by a fresh event; the stale heap tuple
        # must not resurrect it
        sim.schedule(1.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]
        assert sim.processed_events == 1

    def test_cancel_releases_payload_slot_immediately(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        slot = ev._slot
        ev.cancel()
        assert sim._slab[slot] is None
        assert slot in sim._free
