"""Unit tests for simulation-time primitives."""

import pytest

from repro.sim import IntervalAccumulator, PeriodicTimer, Simulator


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 10.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_start_is_idempotent(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        timer.start()
        sim.run(until=1.0)
        assert ticks == [1.0]

    def test_restart_after_stop(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(1.5, timer.stop)
        sim.schedule(5.0, timer.start)
        sim.run(until=7.0)
        assert ticks == [1.0, 6.0, 7.0]

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)


class TestIntervalAccumulator:
    def test_accumulates_state_durations(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("idle")
        sim.schedule(3.0, acc.switch, "infer")
        sim.schedule(5.0, acc.switch, "idle")
        sim.run()
        totals = acc.close()
        assert totals["idle"] == pytest.approx(3.0)
        assert totals["infer"] == pytest.approx(2.0)

    def test_open_interval_counted_in_total(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("load")
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert acc.total("load") == pytest.approx(4.0)
        assert acc.total("load", include_open=False) == 0.0

    def test_fraction_over_elapsed_time(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("infer")
        sim.schedule(2.0, acc.switch, "idle")
        sim.schedule(8.0, lambda: None)
        sim.run()
        assert acc.fraction("infer") == pytest.approx(0.25)

    def test_fraction_with_explicit_horizon(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("infer")
        sim.schedule(5.0, acc.switch, "idle")
        sim.run()
        assert acc.fraction("infer", horizon=10.0) == pytest.approx(0.5)

    def test_fraction_zero_elapsed(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("idle")
        assert acc.fraction("idle") == 0.0

    def test_switch_before_start_opens_interval(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.switch("infer")
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert acc.total("infer") == pytest.approx(2.0)

    def test_repeated_same_state_switches_merge(self):
        sim = Simulator()
        acc = IntervalAccumulator(sim)
        acc.start("idle")
        sim.schedule(1.0, acc.switch, "idle")
        sim.schedule(3.0, acc.switch, "idle")
        sim.run()
        assert acc.total("idle") == pytest.approx(3.0)
