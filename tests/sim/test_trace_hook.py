"""Unit tests for the simulator's debug trace hook."""

from repro.sim import Simulator


def named_callback():
    pass


def test_hook_sees_every_fired_event():
    sim = Simulator()
    traced = []
    sim.set_trace(lambda t, name: traced.append((t, name)))
    sim.schedule(1.0, named_callback)
    sim.schedule(2.0, named_callback)
    sim.run()
    assert [t for t, _ in traced] == [1.0, 2.0]
    assert all("named_callback" in name for _, name in traced)


def test_hook_sees_step_events():
    sim = Simulator()
    traced = []
    sim.set_trace(lambda t, name: traced.append(t))
    sim.schedule(1.0, named_callback)
    sim.step()
    assert traced == [1.0]


def test_cancelled_events_not_traced():
    sim = Simulator()
    traced = []
    sim.set_trace(lambda t, name: traced.append(t))
    ev = sim.schedule(1.0, named_callback)
    ev.cancel()
    sim.run()
    assert traced == []


def test_disable_hook():
    sim = Simulator()
    traced = []
    sim.set_trace(lambda t, name: traced.append(t))
    sim.set_trace(None)
    sim.schedule(1.0, named_callback)
    sim.run()
    assert traced == []


def test_full_system_runs_with_tracing():
    """The whole runtime works under tracing (hook sees GPU manager events)."""
    from repro.cluster import ClusterSpec
    from repro.models import ModelInstance, get_profile
    from repro.core.request import InferenceRequest
    from repro.runtime import FaaSCluster, SystemConfig

    system = FaaSCluster(SystemConfig(cluster=ClusterSpec.homogeneous(1, 1)))
    names = []
    system.sim.set_trace(lambda t, name: names.append(name))
    r = InferenceRequest(
        "fn", ModelInstance("fn", get_profile("alexnet")), arrival_time=0.0
    )
    system.submit(r)
    system.run()
    assert any("GPUManager" in n for n in names)
