"""The flight recorder: fixed-size ring buffers of control-plane spans.

The tracing layer is **zero-cost when off**: components hold a tracer
attribute that defaults to ``None`` and guard every hook with a single
``is not None`` test — the same conditional-binding idiom the runtime
already uses for ``on_dispatch`` and ``pass_work_remaining``.  With
``SystemConfig(tracer="flight")`` the runtime installs one
:class:`FlightRecorder` and the hooks start appending records.

Recording is **allocation-free** by construction.  An earlier draft
stored one row tuple per record (the metrics collector's trade), but
rows retained in a ring *survive*: ~8k surviving tuples per 2k-request
replay promoted through the cyclic GC's generations and cost more in
extra collections than the hooks themselves.  So instead:

* the request ring stores one **borrowed reference** per completion —
  the :class:`~repro.core.request.InferenceRequest` the runtime just
  finished with, whose lifecycle stamps are final and never mutate
  again.  One list store instead of ten field extractions: the fields
  are read lazily at snapshot time (:meth:`request_records`).  Nothing
  is allocated and nothing *new* is kept alive beyond ``capacity``
  already-existing objects (the ring slot is overwritten oldest-first,
  so a streaming replay pins at most ``capacity`` requests);
* the span rings are **preallocated strided buffers** — one
  :class:`array.array` of doubles with record *i*'s numeric fields
  contiguous at ``i * stride`` (their scalars live nowhere else, so
  they must be copied out; array stores copy the value and no object
  survives);
* interning strings to dense codes happens at snapshot time
  (:meth:`request_records`), never on the hot path;
* wall-clock probes (``perf_counter_ns``) run only around the two spans
  whose duration is wall time (scheduler passes, KV commits), and only
  when a tracer is installed;
* the two wall-span rings are **stride-sampled** (``span_stride``, from
  ``SystemConfig.trace_span_stride``): every Nth span pays the clock
  probes and the ring write, the rest only bump the exact ``totals``
  counters.  Passes and commits outnumber request completions ~3:1 on
  the §V-A replay and their per-span bodies are the µs-scale cost that
  would otherwise dominate tracer-on overhead — the same trade every
  sampling profiler makes.  The request-lifecycle and instant rings are
  never sampled: every completion and every chaos/cache event records.

Four rings cover the control plane:

========== =========================================================
requests   one record per *completed* request, written at completion
           from the lifecycle stamps the runtime already maintains
           (arrival → dispatch → exec start → complete)
passes     one record per executed scheduling pass: sim time, wall
           nanoseconds inside ``schedule_pass``, decisions produced
commits    one record per batched Datastore flush: sim time, wall
           nanoseconds inside the commit, keys mutated
instants   point events: chaos faults/repairs, skipped (overlapping)
           faults, lost requests, cache loads/evictions
========== =========================================================

Rings overwrite oldest-first past ``capacity`` (``dropped`` counts per
ring), so tracing any replay size holds a fixed memory ceiling.  An
optional JSONL spill tees request records to disk with stride-doubling
decimation — total spilled lines are bounded by
``keep × (1 + log2(n / keep))``, the same budget shape as the streaming
metrics tier's compaction windows.
"""

from __future__ import annotations

import json
from array import array

__all__ = ["Tracer", "NullTracer", "FlightRecorder"]


class Tracer:
    """The tracing protocol: every hook a component may call.

    The base class is a usable no-op (see :class:`NullTracer`); the
    runtime never installs one — "off" is represented by the attribute
    being ``None`` so components pay one identity test, not a method
    call, per would-be record.
    """

    def request_complete(self, request) -> None: ...
    def pass_span(self, wall_ns: int, decisions: int) -> None: ...
    def commit_span(self, wall_ns: int, keys: int) -> None: ...
    def instant(self, name: str, detail: str = "") -> None: ...

    # -- instant conveniences (shared spellings, so exporters can route) --
    def fault(self, kind: str, target: str = "") -> None:
        self.instant(f"fault:{kind}", target)

    def fault_cleared(self, kind: str, target: str = "") -> None:
        self.instant(f"fault_cleared:{kind}", target)

    def fault_skipped(self, kind: str, target: str = "") -> None:
        self.instant(f"fault_skipped:{kind}", target)

    def cache_event(self, kind: str, gpu_id: str, model_id: str) -> None:
        self.instant(f"cache:{kind}", f"{model_id}@{gpu_id}")

    def lost(self, reason: str, request_id: int) -> None:
        self.instant(f"lost:{reason}", str(request_id))


class NullTracer(Tracer):
    """Explicit no-op tracer (every hook inherited, every hook a pass)."""


class _Interner:
    """String → dense int code, with the reverse table public."""

    __slots__ = ("codes", "names")

    def __init__(self) -> None:
        self.codes: dict[str, int] = {}
        self.names: list[str] = []

    def code(self, name: str) -> int:
        c = self.codes.get(name)
        if c is None:
            c = len(self.names)
            self.codes[name] = c
            self.names.append(name)
        return c


class _Spill:
    """Lazily-opened JSONL tee with stride-doubling decimation.

    Writes every record while under ``keep`` lines, then keeps every
    2nd, then every 4th, ... — each doubling admits at most ``keep``
    more lines, so a spill over n records holds at most
    ``keep × (1 + log2(n / keep))`` lines.
    """

    __slots__ = ("path", "keep", "stride", "_at_level", "written", "seen", "_fh")

    def __init__(self, path: str, keep: int) -> None:
        self.path = path
        self.keep = max(1, int(keep))
        self.stride = 1
        self._at_level = 0
        self.written = 0
        self.seen = 0
        self._fh = None

    def offer(self, obj: dict) -> None:
        seen = self.seen
        self.seen = seen + 1
        if seen % self.stride:
            return
        fh = self._fh
        if fh is None:
            fh = self._fh = open(self.path, "w", buffering=1 << 16)
        fh.write(json.dumps(obj, separators=(",", ":")))
        fh.write("\n")
        self.written += 1
        self._at_level += 1
        if self._at_level >= self.keep:
            self.stride *= 2
            self._at_level = 0

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class FlightRecorder(Tracer):
    """Slot-indexed flight recorder over fixed-capacity ring buffers."""

    def __init__(
        self,
        sim,
        *,
        capacity: int = 65536,
        span_stride: int = 1,
        spill_path: str | None = None,
        spill_keep: int = 20_000,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if span_stride < 1:
            raise ValueError("span_stride must be >= 1")
        self._sim = sim
        self.capacity = capacity
        #: pass/commit wall-span sampling stride (1 = record every span).
        #: Hot call sites read this *before* taking their clock probes so
        #: an unsampled span costs a counter bump and a modulo, nothing
        #: more; ``totals`` counts every span either way.
        self.span_stride = span_stride
        self._models = _Interner()
        self._gpus = _Interner()
        # requests ring: one borrowed InferenceRequest reference per
        # completion (stamps are final once complete; fields are read
        # at snapshot time, so the hook is a single list store)
        self._r_objs: list = [None] * capacity
        # passes ring, stride 3: sim time, wall ns, decisions produced
        self._p_buf = array("d", bytes(capacity * 3 * 8))
        # commits ring, stride 3: sim time, wall ns, keys mutated
        self._c_buf = array("d", bytes(capacity * 3 * 8))
        # instants ring: sim time (stride 1), name/detail (stride 2)
        self._i_time = array("d", bytes(capacity * 8))
        self._i_str: list[str | None] = [None] * (capacity * 2)
        self._spill = _Spill(spill_path, spill_keep) if spill_path else None
        # per-ring [cursor, stored] (+ [2] = spans *seen* for the two
        # sampled rings), shared between the recording closures, the
        # runtime's inline ring-write sites, and the snapshot readers
        self._r_state = [0, 0]
        self._p_state = [0, 0, 0]
        self._c_state = [0, 0, 0]
        self._i_state = [0, 0]
        self._bind_hooks()

    # ------------------------------------------------------------------
    # Recording hooks (hot paths: primitive column stores and shared
    # string references only — nothing recorded here survives as a new
    # object, so tracing adds no cyclic-GC pressure)
    # ------------------------------------------------------------------
    def _bind_hooks(self) -> None:
        """Compile the four hooks as closures over the ring buffers.

        Shadowing the :class:`Tracer` methods with instance-attribute
        closures turns the half-dozen ``self.`` attribute loads each
        hook would pay into cell loads — measurable at the call rates
        of a 2k-request replay (one hook per pass, per commit, and per
        completion).
        """
        capacity = self.capacity
        sim = self._sim
        spill = self._spill

        r_objs = self._r_objs
        r_state = self._r_state

        def request_complete(request) -> None:
            i = r_state[0]
            r_objs[i] = request
            r_state[1] += 1
            i += 1
            r_state[0] = 0 if i == capacity else i
            if spill is not None:
                spill.offer({
                    "id": request.request_id,
                    "arrival": request.arrival_time,
                    "dispatched": request.dispatched_at,
                    "exec_start": request.exec_start_at,
                    "completed": request.completed_at,
                    "model": request.model.instance_id,
                    "gpu": request.gpu_id,
                    "hit": request.cache_hit,
                    "retries": request.retries,
                })

        # The protocol-path span hooks apply the sampling stride
        # themselves so totals/records behave identically however a span
        # arrives; the runtime's inline sites (scheduler pass loop, batch
        # flush) check the stride *before* their clock probes instead,
        # which is where the real saving lives.
        stride = self.span_stride
        p_buf = self._p_buf
        p_state = self._p_state

        def pass_span(wall_ns: int, decisions: int) -> None:
            n = p_state[2] + 1
            p_state[2] = n
            if n % stride:
                return
            i = p_state[0]
            b = i * 3
            p_buf[b] = sim._now
            p_buf[b + 1] = wall_ns
            p_buf[b + 2] = decisions
            p_state[1] += 1
            i += 1
            p_state[0] = 0 if i == capacity else i

        c_buf = self._c_buf
        c_state = self._c_state

        def commit_span(wall_ns: int, keys: int) -> None:
            n = c_state[2] + 1
            c_state[2] = n
            if n % stride:
                return
            i = c_state[0]
            b = i * 3
            c_buf[b] = sim._now
            c_buf[b + 1] = wall_ns
            c_buf[b + 2] = keys
            c_state[1] += 1
            i += 1
            c_state[0] = 0 if i == capacity else i

        i_time, i_str = self._i_time, self._i_str
        i_state = self._i_state

        def instant(name: str, detail: str = "") -> None:
            i = i_state[0]
            i_time[i] = sim._now
            b = i * 2
            i_str[b] = name
            i_str[b + 1] = detail
            i_state[1] += 1
            i += 1
            i_state[0] = 0 if i == capacity else i

        self.request_complete = request_complete
        self.pass_span = pass_span
        self.commit_span = commit_span
        self.instant = instant

    # ------------------------------------------------------------------
    # Snapshots (export-time only: allocation and interning are fine here)
    # ------------------------------------------------------------------
    def _order(self, total: int, cursor: int) -> range | list[int]:
        """Retained slot indices, oldest record first."""
        if total <= self.capacity:
            return range(total)
        return list(range(cursor, self.capacity)) + list(range(cursor))

    @property
    def model_names(self) -> list[str]:
        """Model-code → name table (valid after :meth:`request_records`)."""
        self.request_records()
        return self._models.names

    @property
    def gpu_names(self) -> list[str]:
        """GPU-code → name table (valid after :meth:`request_records`)."""
        self.request_records()
        return self._gpus.names

    @property
    def instant_names(self) -> list[str]:
        """Distinct instant names among the retained records."""
        seen: dict[str, None] = {}
        state = self._i_state
        for i in self._order(state[1], state[0]):
            seen.setdefault(self._i_str[i * 2])
        return list(seen)

    def request_records(self) -> list[tuple]:
        """``(request_id, arrival, dispatched, exec_start, completed,
        model_code, gpu_code, hit, retries)``, oldest retained first.
        Negative stamps mean "never" (e.g. a request that never
        dispatched); ``hit`` is -1 unknown / 0 miss / 1 hit.  Extracts
        lazily from the retained request references and interns their
        model/GPU strings into :attr:`model_names` / :attr:`gpu_names`
        as it goes."""
        objs = self._r_objs
        model_code = self._models.code
        gpu_code = self._gpus.code
        state = self._r_state
        rows = []
        for i in self._order(state[1], state[0]):
            r = objs[i]
            dispatched = r.dispatched_at
            exec_start = r.exec_start_at
            hit = r.cache_hit
            rows.append((
                r.request_id,
                r.arrival_time,
                -1.0 if dispatched is None else dispatched,
                -1.0 if exec_start is None else exec_start,
                r.completed_at,
                model_code(r.model.instance_id),
                gpu_code(r.gpu_id or "?"),
                -1 if hit is None else (1 if hit else 0),
                r.retries,
            ))
        return rows

    def pass_records(self) -> list[tuple]:
        """``(sim_time_s, wall_ns, decisions)`` per *sampled* executed
        pass (every ``span_stride``-th; ``totals`` counts them all)."""
        buf = self._p_buf
        state = self._p_state
        return [
            (buf[b], int(buf[b + 1]), int(buf[b + 2]))
            for i in self._order(state[1], state[0])
            for b in (i * 3,)
        ]

    def commit_records(self) -> list[tuple]:
        """``(sim_time_s, wall_ns, keys_mutated)`` per *sampled*
        Datastore commit (every ``span_stride``-th)."""
        buf = self._c_buf
        state = self._c_state
        return [
            (buf[b], int(buf[b + 1]), int(buf[b + 2]))
            for i in self._order(state[1], state[0])
            for b in (i * 3,)
        ]

    def instant_records(self) -> list[tuple]:
        """``(sim_time_s, name, detail)`` per point event."""
        strs = self._i_str
        state = self._i_state
        return [
            (self._i_time[i], strs[i * 2], strs[i * 2 + 1])
            for i in self._order(state[1], state[0])
        ]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def totals(self) -> dict[str, int]:
        """Events ever *seen* per ring — exact regardless of sampling
        or overwrites (passes/commits count unsampled spans too)."""
        return {
            "requests": self._r_state[1],
            "passes": self._p_state[2],
            "commits": self._c_state[2],
            "instants": self._i_state[1],
        }

    @property
    def dropped(self) -> dict[str, int]:
        """Recorded entries overwritten past each ring's capacity
        (spans skipped by sampling are not recorded, hence not counted)."""
        cap = self.capacity
        return {
            "requests": max(0, self._r_state[1] - cap),
            "passes": max(0, self._p_state[1] - cap),
            "commits": max(0, self._c_state[1] - cap),
            "instants": max(0, self._i_state[1] - cap),
        }

    @property
    def spill_path(self) -> str | None:
        return self._spill.path if self._spill is not None else None

    @property
    def spill_written(self) -> int:
        return self._spill.written if self._spill is not None else 0

    def close(self) -> None:
        """Flush and close the JSONL spill, if one was configured."""
        if self._spill is not None:
            self._spill.close()
