"""Scheduler explain mode: structured cause records per decision.

With ``SystemConfig(trace_decisions=True)`` the runtime installs an
:class:`ExplainLog` on the Scheduler.  The policies then narrate their
Algorithm 1/2 walks — candidates considered, why each was rejected,
which branch won — as cheap ``note()`` tuples, and the Scheduler
attaches the accumulated trail to every :class:`~repro.core.decisions.
Decision` it records, together with the pass context (which pass the
decision fell in, and the dirty-signal state that armed that pass).

Explain mode is a *debugging* lens: its memory is linear in decisions
(one :class:`Cause` each) and its notes build small tuples and strings,
so it is kept off the default replay path — the parity suite asserts
the :class:`~repro.core.decisions.DecisionLog` is byte-identical with
it on or off.

``python -m repro.experiments explain <request_id>`` re-runs the
deterministic 2k §V-A replay with explain on and prints the decision
chain for one request (:func:`run_explain`).
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["Cause", "ExplainLog", "run_explain", "format_request_causes"]

#: ``pass_seq`` of decisions recorded outside any scheduling pass
#: (resubmits, deadline timeouts, retry-budget drops)
OUTSIDE_PASS = -1


class Cause(NamedTuple):
    """Why one decision happened: pass context plus the policy's trail."""

    #: global decision order (index into the explain log)
    seq: int
    time_s: float
    #: DecisionKind name (``"DISPATCH_HIT"``, ``"MOVE_TO_LOCAL"``, ...)
    kind: str
    request_id: int
    gpu_id: str | None
    visits: int
    #: which executed pass produced it (:data:`OUTSIDE_PASS` for
    #: entry-point decisions like resubmits and timeouts)
    pass_seq: int
    #: dirty-signal state that armed the pass ("idle=2 queued=14 local=0")
    armed: str
    #: ordered policy notes since the previous decision:
    #: ``(tag, *detail)`` tuples, e.g. ``("alg2:load_beats_wait", "n0-g1")``
    trail: tuple


class ExplainLog:
    """Accumulates :class:`Cause` records; indexed by request id."""

    __slots__ = (
        "causes", "_by_request", "_trail", "_pass_seq", "_armed",
        "elided_count", "last_elided",
    )

    def __init__(self) -> None:
        self.causes: list[Cause] = []
        self._by_request: dict[int, list[Cause]] = {}
        self._trail: list[tuple] = []
        self._pass_seq = OUTSIDE_PASS
        self._armed = ""
        #: passes the guard proved no-ops while explain was on
        self.elided_count = 0
        #: most recent elisions as ``(time_s, signal_state)`` pairs
        self.last_elided: list[tuple[float, str]] = []

    # -- scheduler hooks ------------------------------------------------
    def pass_begin(self, pass_seq: int, armed: str) -> None:
        self._pass_seq = pass_seq
        self._armed = armed
        self._trail.clear()

    def pass_end(self) -> None:
        self._pass_seq = OUTSIDE_PASS
        self._armed = ""
        self._trail.clear()

    def pass_elided(self, time_s: float, signals: str) -> None:
        self.elided_count += 1
        recent = self.last_elided
        recent.append((time_s, signals))
        if len(recent) > 100:
            del recent[:-100]

    # -- policy hook ----------------------------------------------------
    def note(self, tag: str, *detail) -> None:
        """Record one step of the policy's walk (consumed by the next
        decision's :class:`Cause`)."""
        self._trail.append((tag, *detail))

    # -- decision hook --------------------------------------------------
    def attach(self, decision) -> None:
        """Mint a :class:`Cause` for a just-recorded decision."""
        cause = Cause(
            len(self.causes), decision.time_s, decision.kind.name,
            decision.request_id, decision.gpu_id, decision.visits,
            self._pass_seq, self._armed, tuple(self._trail),
        )
        self._trail.clear()
        self.causes.append(cause)
        per_request = self._by_request.get(decision.request_id)
        if per_request is None:
            self._by_request[decision.request_id] = [cause]
        else:
            per_request.append(cause)

    # -- queries --------------------------------------------------------
    def for_request(self, request_id: int) -> list[Cause]:
        return list(self._by_request.get(request_id, ()))

    def __len__(self) -> int:
        return len(self.causes)


def format_request_causes(explain: ExplainLog, request_id: int) -> str:
    """Human-readable decision chain for one request."""
    causes = explain.for_request(request_id)
    if not causes:
        return f"request {request_id}: no decisions recorded"
    lines = [f"request {request_id}: {len(causes)} decision(s)"]
    for cause in causes:
        where = (
            "outside any pass" if cause.pass_seq == OUTSIDE_PASS
            else f"pass {cause.pass_seq} (armed: {cause.armed})"
        )
        gpu = f" gpu={cause.gpu_id}" if cause.gpu_id else ""
        lines.append(
            f"  [{cause.seq}] t={cause.time_s:.6f}s {cause.kind}{gpu} "
            f"visits={cause.visits} — {where}"
        )
        for step in cause.trail:
            tag, *detail = step
            suffix = f" {' '.join(str(d) for d in detail)}" if detail else ""
            lines.append(f"      {tag}{suffix}")
    return "\n".join(lines)


def run_explain(
    request_id: int,
    *,
    n_requests: int = 2000,
    seed: int = 0,
    config=None,
) -> str:
    """Re-run the deterministic §V-A replay and explain one request.

    ``request_id`` is the 1-based ordinal within the replay's request
    stream.  Request ids are minted by a process-global counter, so the
    ordinal is rebased onto the ids this run actually drew — in a fresh
    CLI process the two coincide (ids run 1..n).
    """
    # local imports: repro.runtime imports this module for ExplainLog,
    # so the heavy runtime imports must not run at module import time
    from ..runtime.config import SystemConfig
    from ..runtime.system import FaaSCluster
    from ..traces.azure import SyntheticAzureTrace
    from ..traces.workload import WorkloadSpec, build_workload

    spec = WorkloadSpec(
        working_set=15, minutes=max(1, round(n_requests / 325)), seed=seed
    )
    workload = build_workload(spec, trace=SyntheticAzureTrace())
    requests = workload.requests
    if not 1 <= request_id <= len(requests):
        return (
            f"request {request_id} out of range: this replay has "
            f"{len(requests)} requests (1..{len(requests)})"
        )
    system = FaaSCluster(config or SystemConfig(trace_decisions=True))
    system.submit_workload(workload)
    system.run()
    explain = system.scheduler.explain
    target = requests[request_id - 1]
    header = (
        f"replay: {len(requests)} requests, policy={system.config.policy}, "
        f"seed={seed} — explaining ordinal {request_id} "
        f"(request_id {target.request_id})\n"
        f"function={target.function_name} model={target.model_id} "
        f"arrival={target.arrival_time:.6f}s state={target.state.value}"
    )
    body = format_request_causes(explain, target.request_id)
    footer = ""
    if target.completed_at is not None:
        footer = (
            f"\noutcome: completed at t={target.completed_at:.6f}s on "
            f"{target.gpu_id} — latency={target.latency:.6f}s "
            f"hit={target.cache_hit} retries={target.retries}"
        )
    return f"{header}\n{body}{footer}"
