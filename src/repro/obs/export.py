"""Chrome trace-event export of a :class:`FlightRecorder`.

Produces the JSON object format Perfetto and ``chrome://tracing``
consume (``{"traceEvents": [...]}``), mapping sim seconds to the trace
format's microsecond ``ts``.  Tracks:

* **pid 1 — requests**: one thread per GPU carrying ``X`` (complete)
  slices for each request's on-GPU service — a ``load …`` slice from
  dispatch to exec-start when the model had to upload, then an
  ``infer …`` slice to completion.  Queue waits ride alongside as
  async ``b``/``e`` pairs (cat ``queue``, id = request id), so the
  arrival → dispatch gap is visible per request without overlapping
  the GPU slices.
* **pid 2 — scheduler**: one ``X`` slice per executed scheduling pass.
  Pass wall time is real time, not sim time, so the slice anchors at
  the pass's sim ``ts`` and its duration is the measured wall
  microseconds clamped to the gap before the next pass — long enough
  to eyeball relative cost, never overlapping.
* **pid 3 — datastore**: one ``X`` slice per batched KV commit (same
  wall-clamping rule), args carrying the keys mutated.
* **pid 4 — faults**: chaos fault / repair / skipped-overlap and lost-
  request ``i`` instants.
* **pid 5 — cache**: model load / evict ``i`` instants.

:func:`validate_chrome_trace` checks the structural rules the format
imposes (phase-specific required fields) so CI can gate emitted traces
without a browser.
"""

from __future__ import annotations

import json
from typing import Any

from .tracer import FlightRecorder

__all__ = ["chrome_trace_events", "write_chrome_trace", "validate_chrome_trace"]

_PID_REQUESTS = 1
_PID_SCHEDULER = 2
_PID_DATASTORE = 3
_PID_FAULTS = 4
_PID_CACHE = 5

_PROCESS_NAMES = {
    _PID_REQUESTS: "requests (per-GPU service)",
    _PID_SCHEDULER: "scheduler passes",
    _PID_DATASTORE: "datastore commits",
    _PID_FAULTS: "faults",
    _PID_CACHE: "cache events",
}


def _us(t: float) -> float:
    """Sim seconds → trace microseconds (µs precision is plenty)."""
    return round(t * 1e6, 3)


def _meta(pid: int, name: str, tid: int | None = None) -> dict:
    ev: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "tid": 0 if tid is None else tid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    return ev


def _wall_slices(records: list[tuple], pid: int, name: str, arg_key: str) -> list[dict]:
    """Zero-sim-duration span records → non-overlapping ``X`` slices.

    ``records`` rows are ``(sim_time_s, wall_ns, count)``.  The slice
    duration is the measured wall time in µs, clamped to the sim gap
    before the next record on the track (0 when two records share a sim
    instant) so slices never overlap.
    """
    events = []
    n = len(records)
    for idx, (t, wall_ns, count) in enumerate(records):
        ts = _us(t)
        dur = wall_ns / 1000.0
        if idx + 1 < n:
            gap = _us(records[idx + 1][0]) - ts
            if gap < dur:
                dur = max(gap, 0.0)
        events.append({
            "ph": "X", "pid": pid, "tid": 1, "ts": ts, "dur": round(dur, 3),
            "name": name, "cat": name.split(" ")[0],
            "args": {arg_key: count, "wall_ns": wall_ns},
        })
    return events


def chrome_trace_events(recorder: FlightRecorder) -> list[dict]:
    """Flatten the recorder's rings into Chrome trace events."""
    events: list[dict] = [
        _meta(pid, name) for pid, name in _PROCESS_NAMES.items()
    ]
    model_names = recorder.model_names
    gpu_names = recorder.gpu_names
    for code, gpu in enumerate(gpu_names):
        events.append(_meta(_PID_REQUESTS, gpu, tid=code + 1))

    for (rid, arrival, dispatched, exec_start, completed,
         model, gpu, hit, retries) in recorder.request_records():
        model_name = model_names[model]
        if dispatched >= 0.0:
            # queue wait: async span so it stacks per-request, not per-GPU
            events.append({
                "ph": "b", "pid": _PID_REQUESTS, "tid": 0, "ts": _us(arrival),
                "cat": "queue", "id": rid, "name": f"queue {model_name}",
            })
            events.append({
                "ph": "e", "pid": _PID_REQUESTS, "tid": 0, "ts": _us(dispatched),
                "cat": "queue", "id": rid, "name": f"queue {model_name}",
            })
            tid = gpu + 1
            args = {"request_id": rid, "hit": hit, "retries": retries}
            if exec_start > dispatched:
                events.append({
                    "ph": "X", "pid": _PID_REQUESTS, "tid": tid,
                    "ts": _us(dispatched),
                    "dur": round(_us(exec_start) - _us(dispatched), 3),
                    "cat": "load", "name": f"load {model_name}", "args": args,
                })
                infer_start = exec_start
            else:
                infer_start = dispatched
            events.append({
                "ph": "X", "pid": _PID_REQUESTS, "tid": tid,
                "ts": _us(infer_start),
                "dur": round(_us(completed) - _us(infer_start), 3),
                "cat": "infer", "name": f"infer {model_name}", "args": args,
            })

    events.extend(
        _wall_slices(recorder.pass_records(), _PID_SCHEDULER,
                     "scheduling pass", "decisions")
    )
    events.extend(
        _wall_slices(recorder.commit_records(), _PID_DATASTORE,
                     "kv commit", "keys")
    )

    for t, name, detail in recorder.instant_records():
        pid = _PID_CACHE if name.startswith("cache:") else _PID_FAULTS
        events.append({
            "ph": "i", "pid": pid, "tid": 1, "ts": _us(t), "s": "p",
            "name": name, "cat": name.split(":")[0],
            "args": {"detail": detail},
        })
    return events


def write_chrome_trace(recorder: FlightRecorder, path: str) -> str:
    """Write ``trace.json`` (Perfetto / chrome://tracing loadable)."""
    payload = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs flight recorder",
            "records": recorder.totals,
            "dropped": recorder.dropped,
        },
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, separators=(",", ":"))
    return path


_INSTANT_SCOPES = frozenset("gpt")
_KNOWN_PHASES = frozenset("BEXibensM")


def validate_chrome_trace(payload: Any) -> list[str]:
    """Structural validation against the Chrome trace-event format.

    Returns a list of problems (empty = valid).  Checks the JSON object
    format's container shape and the per-phase required fields:
    ``X`` needs a non-negative ``dur``, async ``b``/``e`` need
    ``cat`` + ``id``, instants need a valid scope, and every non-meta
    event needs a numeric non-negative ``ts``.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    for n, ev in enumerate(events):
        where = f"event[{n}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: phase {ph} needs a non-negative ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs a non-negative dur")
        elif ph in ("b", "e", "n"):
            if "cat" not in ev or "id" not in ev:
                problems.append(f"{where}: async {ph} event needs cat and id")
        elif ph == "i":
            if ev.get("s", "t") not in _INSTANT_SCOPES:
                problems.append(f"{where}: instant scope must be one of g/p/t")
    return problems
