"""Observability: flight-recorder tracing, trace export, explain mode.

The zero-cost-when-off tracing layer threaded through the control
plane.  Components hold a tracer attribute defaulting to ``None`` and
guard each hook with one ``is not None`` test; ``SystemConfig(
tracer="flight")`` installs a :class:`FlightRecorder` whose fixed-size
ring buffers capture request lifecycles, scheduler passes, KV commits,
and chaos/cache instants.  :func:`write_chrome_trace` exports the rings
as Perfetto-loadable ``trace.json``; ``SystemConfig(
trace_decisions=True)`` adds the scheduler explain mode
(:class:`ExplainLog`).  See ``docs/observability.md``.
"""

from .explain import Cause, ExplainLog, format_request_causes, run_explain
from .export import chrome_trace_events, validate_chrome_trace, write_chrome_trace
from .tracer import FlightRecorder, NullTracer, Tracer

__all__ = [
    "Cause",
    "ExplainLog",
    "FlightRecorder",
    "NullTracer",
    "Tracer",
    "chrome_trace_events",
    "format_request_causes",
    "run_explain",
    "validate_chrome_trace",
    "write_chrome_trace",
]
