"""Declarative, seeded fault plans.

A :class:`FaultPlan` is pure data: a tuple of frozen fault records, each
naming a *kind*, an injection time, a target (a GPU index into the
cluster's device list, portable across topologies), and the fault's
parameters.  Plans never touch the system themselves — the
:class:`~repro.chaos.injector.ChaosInjector` compiles a plan into ordinary
simulator events at system-construction time, so a fault replay is exactly
as deterministic as any other replay: same plan + same seed ⇒ the same
event sequence, byte for byte.

Fault kinds (the failure modes a production GPU-FaaS control plane must
survive, ROADMAP "north star"):

* :class:`GPUCrash` — the device dies (memory lost, in-flight work
  re-queued); optionally recovers after a delay.
* :class:`Straggler` — the device keeps working but slows down by a
  multiplicative factor for a window (thermal throttling, a noisy
  neighbour on the PCIe switch).
* :class:`LeaseExpiry` — the node's GPU-Manager daemon stops
  heartbeating for a window; the lease-backed health watchdog escalates
  the missed heartbeats to ``go_offline`` and self-heals when the
  heartbeats return.
* :class:`WatchDrop` — the Datastore's watch delivery drops every
  notification in a window (mirrors lag; decisions, driven by
  authoritative in-memory state, are unaffected).
* :class:`KVLatencySpike` — watch delivery slows by an extra delay for a
  window (an etcd commit-latency spike as observed by watchers).

Named profiles (:data:`FAULT_PROFILES`) are seeded generators:
``build_fault_plan("recoverable", seed=7)`` always yields the identical
plan.  The ``"recoverable"`` profile is the default chaos diet — every
fault heals, so a replay under it must complete with **zero lost
requests** (gated by ``make bench-check``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "GPUCrash",
    "Straggler",
    "LeaseExpiry",
    "WatchDrop",
    "KVLatencySpike",
    "FaultPlan",
    "FAULT_PROFILES",
    "build_fault_plan",
]


@dataclass(frozen=True)
class GPUCrash:
    """Hard device failure at ``at_s``; recovers ``recover_after_s`` later
    (``None`` = permanent)."""

    at_s: float
    gpu_index: int
    recover_after_s: float | None = None

    kind = "crash"


@dataclass(frozen=True)
class Straggler:
    """Multiply the device's real load/inference durations by ``factor``
    for ``duration_s`` seconds."""

    at_s: float
    gpu_index: int
    factor: float
    duration_s: float

    kind = "straggler"


@dataclass(frozen=True)
class LeaseExpiry:
    """Suppress the GPU's health heartbeats for ``duration_s`` seconds:
    its lease expires, the watchdog escalates to ``go_offline``, and the
    device self-heals once heartbeats resume."""

    at_s: float
    gpu_index: int
    duration_s: float

    kind = "lease_expiry"


@dataclass(frozen=True)
class WatchDrop:
    """Drop every watch delivery for ``duration_s`` seconds."""

    at_s: float
    duration_s: float

    kind = "watch_drop"


@dataclass(frozen=True)
class KVLatencySpike:
    """Add ``extra_delay_s`` to watch delivery for ``duration_s`` seconds
    (commit latency as observed by watchers)."""

    at_s: float
    duration_s: float
    extra_delay_s: float

    kind = "kv_latency_spike"


Fault = GPUCrash | Straggler | LeaseExpiry | WatchDrop | KVLatencySpike


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, fully-specified fault schedule."""

    name: str
    faults: tuple[Fault, ...] = ()
    #: master seed the plan was generated from (provenance only)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def end_s(self) -> float:
        """When the last fault has fully played out (injection + recovery);
        the health watchdog retires its heartbeat loop past this point so
        a chaos replay still drains to a fixed event horizon."""
        end = 0.0
        for fault in self.faults:
            t = fault.at_s
            if isinstance(fault, GPUCrash):
                t += fault.recover_after_s or 0.0
            else:
                t += getattr(fault, "duration_s", 0.0)
            end = max(end, t)
        return end

    def validate(self) -> None:
        for fault in self.faults:
            if fault.at_s < 0:
                raise ValueError(f"{fault!r}: at_s cannot be negative")
            if isinstance(fault, Straggler) and fault.factor < 1.0:
                raise ValueError(f"{fault!r}: straggler factor must be >= 1")
            duration = getattr(fault, "duration_s", None)
            if duration is not None and duration <= 0:
                raise ValueError(f"{fault!r}: duration_s must be positive")


# ----------------------------------------------------------------------
# Named, seeded profiles
# ----------------------------------------------------------------------
def _rng(profile: str, seed: int) -> random.Random:
    # string seeding is deterministic across processes (no PYTHONHASHSEED
    # dependence): Random() hashes str seeds with SHA-512 internally
    return random.Random(f"chaos:{profile}:{seed}")


def _none(seed: int, horizon_s: float, gpus: int) -> FaultPlan:
    return FaultPlan(name="none", faults=(), seed=seed)


def _recoverable(seed: int, horizon_s: float, gpus: int) -> FaultPlan:
    """Every fault heals; a replay under this plan must lose nothing."""
    rng = _rng("recoverable", seed)
    window = lambda lo, hi: horizon_s * rng.uniform(lo, hi)  # noqa: E731
    faults: list[Fault] = [
        GPUCrash(
            at_s=window(0.15, 0.35),
            gpu_index=rng.randrange(gpus),
            recover_after_s=rng.uniform(0.05, 0.10) * horizon_s,
        ),
        GPUCrash(
            at_s=window(0.45, 0.60),
            gpu_index=rng.randrange(gpus),
            recover_after_s=rng.uniform(0.05, 0.10) * horizon_s,
        ),
        Straggler(
            at_s=window(0.20, 0.50),
            gpu_index=rng.randrange(gpus),
            factor=rng.uniform(2.0, 4.0),
            duration_s=rng.uniform(0.10, 0.20) * horizon_s,
        ),
        LeaseExpiry(
            at_s=window(0.30, 0.55),
            gpu_index=rng.randrange(gpus),
            duration_s=rng.uniform(0.04, 0.08) * horizon_s,
        ),
        WatchDrop(
            at_s=window(0.25, 0.55),
            duration_s=rng.uniform(0.03, 0.06) * horizon_s,
        ),
        KVLatencySpike(
            at_s=window(0.40, 0.65),
            duration_s=rng.uniform(0.03, 0.06) * horizon_s,
            extra_delay_s=rng.uniform(0.2, 1.0),
        ),
    ]
    return FaultPlan(name="recoverable", faults=tuple(faults), seed=seed)


def _severe(seed: int, horizon_s: float, gpus: int) -> FaultPlan:
    """Overlapping crashes including one permanent loss, long stragglers,
    repeated lease expiries.  Requests *may* be lost under a bounded retry
    budget — that is the point: it measures degradation, not survival."""
    rng = _rng("severe", seed)
    window = lambda lo, hi: horizon_s * rng.uniform(lo, hi)  # noqa: E731
    faults: list[Fault] = [
        GPUCrash(at_s=window(0.10, 0.20), gpu_index=rng.randrange(gpus),
                 recover_after_s=None),  # permanent
    ]
    for _ in range(3):
        faults.append(
            GPUCrash(
                at_s=window(0.15, 0.60),
                gpu_index=rng.randrange(gpus),
                recover_after_s=rng.uniform(0.08, 0.15) * horizon_s,
            )
        )
    for _ in range(2):
        faults.append(
            Straggler(
                at_s=window(0.10, 0.55),
                gpu_index=rng.randrange(gpus),
                factor=rng.uniform(3.0, 6.0),
                duration_s=rng.uniform(0.15, 0.30) * horizon_s,
            )
        )
    for _ in range(2):
        faults.append(
            LeaseExpiry(
                at_s=window(0.20, 0.60),
                gpu_index=rng.randrange(gpus),
                duration_s=rng.uniform(0.06, 0.12) * horizon_s,
            )
        )
    faults.append(WatchDrop(at_s=window(0.20, 0.50),
                            duration_s=rng.uniform(0.05, 0.10) * horizon_s))
    faults.append(KVLatencySpike(at_s=window(0.30, 0.60),
                                 duration_s=rng.uniform(0.05, 0.10) * horizon_s,
                                 extra_delay_s=rng.uniform(0.5, 2.0)))
    return FaultPlan(name="severe", faults=tuple(faults), seed=seed)


#: profile name → seeded generator ``fn(seed, horizon_s, gpus) -> FaultPlan``
FAULT_PROFILES = {
    "none": _none,
    "recoverable": _recoverable,
    "severe": _severe,
}

#: default plan horizon: the §V-A workload's 6 simulated minutes
DEFAULT_HORIZON_S = 360.0


def build_fault_plan(
    profile: str,
    *,
    seed: int = 0,
    horizon_s: float = DEFAULT_HORIZON_S,
    gpus: int = 12,
) -> FaultPlan:
    """Materialize a named profile into a concrete, validated plan.

    Deterministic: identical arguments always produce an identical plan.
    ``gpus`` bounds the target indices (the injector additionally reduces
    indices modulo the actual cluster size, so a plan built for 12 GPUs
    replays meaningfully on 8).
    """
    try:
        generator = FAULT_PROFILES[profile]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {profile!r} (known: {known})")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    plan = generator(seed, horizon_s, gpus)
    plan.validate()
    return plan
