"""Deterministic fault injection (chaos replay) for the FaaS runtime.

``repro.chaos`` turns "does LALB/LALBO3 still win under failures?" into a
runnable, reproducible experiment: a seeded, declarative
:class:`FaultPlan` (:mod:`repro.chaos.plan`) is compiled into ordinary
simulator events by the :class:`ChaosInjector`
(:mod:`repro.chaos.injector`), and the lease-backed
:class:`HealthWatchdog` (:mod:`repro.chaos.health`) escalates missed
heartbeats to ``go_offline`` and self-heals when they resume.

Entry points: ``SystemConfig(fault_profile="recoverable")`` for the named
profiles, ``SystemConfig(fault_plan=...)`` for hand-built schedules, the
``fault_profiles`` sweep axis, and ``make sweep FAULTS=...``.  See
``docs/robustness.md``.
"""

from .health import HealthWatchdog
from .injector import ChaosInjector
from .plan import (
    FAULT_PROFILES,
    FaultPlan,
    GPUCrash,
    KVLatencySpike,
    LeaseExpiry,
    Straggler,
    WatchDrop,
    build_fault_plan,
)

__all__ = [
    "FaultPlan",
    "GPUCrash",
    "Straggler",
    "LeaseExpiry",
    "WatchDrop",
    "KVLatencySpike",
    "FAULT_PROFILES",
    "build_fault_plan",
    "ChaosInjector",
    "HealthWatchdog",
]
