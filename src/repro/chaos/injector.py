"""Compiles a :class:`~repro.chaos.plan.FaultPlan` into simulator events.

The injector is armed during :class:`~repro.runtime.system.FaaSCluster`
construction — before any workload is submitted — so the fault events
occupy a fixed, plan-determined position in the simulator's tie-break
order.  Every handler drives the system through its public failure API
(``fail_gpu`` / ``recover_gpu``, the manager's slowdown knob, the health
watchdog's heartbeat suppression, the watch hub's delivery windows), so a
fault replay exercises exactly the code paths a real outage would.

Handlers are defensive about overlap: a crash against an already-offline
GPU is skipped (another fault owns it), a recovery against an
already-online GPU likewise, so plans with colliding targets still replay
deterministically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .plan import FaultPlan, GPUCrash, KVLatencySpike, LeaseExpiry, Straggler, WatchDrop

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faas → runtime)
    from ..runtime.system import FaaSCluster

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Schedules a plan's faults against a built system."""

    def __init__(self, system: "FaaSCluster", plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        #: faults that actually took effect (skipped overlaps excluded)
        self.injected = 0
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault in the plan (call once, before running)."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        sim = self.system.sim
        for fault in self.plan:
            if isinstance(fault, GPUCrash):
                sim.schedule_at(fault.at_s, self._crash, fault)
            elif isinstance(fault, Straggler):
                sim.schedule_at(fault.at_s, self._straggle, fault)
            elif isinstance(fault, LeaseExpiry):
                sim.schedule_at(fault.at_s, self._lease_expiry, fault)
            elif isinstance(fault, WatchDrop):
                sim.schedule_at(fault.at_s, self._watch_drop, fault)
            elif isinstance(fault, KVLatencySpike):
                sim.schedule_at(fault.at_s, self._kv_spike, fault)
            else:  # pragma: no cover - plan.validate() rejects unknown kinds
                raise TypeError(f"unknown fault {fault!r}")

    # ------------------------------------------------------------------
    def _gpu(self, index: int):
        gpus = self.system.cluster.gpus
        return gpus[index % len(gpus)]

    def _crash(self, fault: GPUCrash) -> None:
        gpu = self._gpu(fault.gpu_index)
        if not gpu.is_online:
            tracer = self.system.tracer
            if tracer is not None:
                tracer.fault_skipped("crash", gpu.gpu_id)
            return  # another fault already owns this GPU
        self.injected += 1
        self.system.metrics.on_fault("crash", gpu.gpu_id)
        self.system.fail_gpu(gpu.gpu_id)
        if fault.recover_after_s is not None:
            self.system.sim.schedule(fault.recover_after_s, self._recover, gpu.gpu_id)

    def _recover(self, gpu_id: str) -> None:
        gpu = self.system.cluster.gpu(gpu_id)
        if gpu.is_online:
            tracer = self.system.tracer
            if tracer is not None:
                tracer.fault_skipped("crash_recover", gpu_id)
            return  # already healed (e.g. by the watchdog)
        self.system.recover_gpu(gpu_id)
        self.system.metrics.on_fault_cleared("crash", gpu_id)

    def _straggle(self, fault: Straggler) -> None:
        gpu = self._gpu(fault.gpu_index)
        manager = self.system._managers[gpu.node_id]
        self.injected += 1
        self.system.metrics.on_fault("straggler", gpu.gpu_id)
        manager.set_slowdown(gpu.gpu_id, fault.factor)
        self.system.sim.schedule(
            fault.duration_s, self._unstraggle, manager, gpu.gpu_id
        )

    def _unstraggle(self, manager, gpu_id: str) -> None:
        manager.set_slowdown(gpu_id, 1.0)
        self.system.metrics.on_fault_cleared("straggler", gpu_id)

    def _lease_expiry(self, fault: LeaseExpiry) -> None:
        health = self.system.health
        if health is None or health.retired:
            return
        gpu = self._gpu(fault.gpu_index)
        self.injected += 1
        # the watchdog records the fault/repair metrics itself: the fault's
        # observable effect (GPU offline) starts at escalation, not here
        health.suppress(gpu.gpu_id, fault.duration_s)

    def _watch_drop(self, fault: WatchDrop) -> None:
        hub = self.system.datastore.watches
        self.injected += 1
        self.system.metrics.on_fault("watch_drop", "hub")
        hub.set_drop_window(self.system.sim.now + fault.duration_s)
        self.system.sim.schedule(
            fault.duration_s, self.system.metrics.on_fault_cleared, "watch_drop", "hub"
        )

    def _kv_spike(self, fault: KVLatencySpike) -> None:
        hub = self.system.datastore.watches
        self.injected += 1
        self.system.metrics.on_fault("kv_latency_spike", "hub")
        hub.set_latency_spike(
            self.system.sim.now + fault.duration_s, fault.extra_delay_s
        )
        self.system.sim.schedule(
            fault.duration_s,
            self.system.metrics.on_fault_cleared,
            "kv_latency_spike",
            "hub",
        )
