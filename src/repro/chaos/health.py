"""Lease-backed health watchdog: missed heartbeats become ``go_offline``.

Each GPU's manager daemon holds a TTL lease in the Datastore with its
``gpu/health/<gpu_id>`` key attached — the standard etcd liveness pattern.
A steady heartbeat loop refreshes every lease; when heartbeats stop (in
the simulator, when a :class:`~repro.chaos.plan.LeaseExpiry` fault
suppresses them) the lease expires, its key is reaped, and — this is the
escalation the seed repo lacked — the watchdog reacts by failing the GPU
through the normal :meth:`FaaSCluster.fail_gpu` path: in-flight and
locally-queued work is re-queued, cache locations are withdrawn, and the
scheduler stops dispatching there.  When heartbeats resume, the watchdog
re-grants the lease and self-heals the GPU (``recover_gpu``), closing the
fault for MTTR accounting.

The heartbeat loop is bounded by ``horizon_s`` so a chaos replay still
drains to a fixed event horizon: past it the watchdog recovers anything it
escalated, revokes its leases (revocation is a clean shutdown and does not
fire expiry callbacks), and goes dormant.

Everything here runs on the simulated clock through ordinary events, so a
replay with a health watchdog is exactly as deterministic as one without.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faas → runtime)
    from ..runtime.system import FaaSCluster

__all__ = ["HealthWatchdog"]

#: Datastore key prefix for per-GPU liveness keys
HEALTH_PREFIX = "gpu/health/"


class HealthWatchdog:
    """Per-GPU lease liveness with automatic offline escalation."""

    def __init__(
        self,
        system: "FaaSCluster",
        *,
        heartbeat_s: float = 1.0,
        ttl_s: float = 3.0,
        horizon_s: float = 0.0,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if ttl_s <= heartbeat_s:
            raise ValueError("ttl_s must exceed heartbeat_s (or every beat expires)")
        self.system = system
        self.sim = system.sim
        self.heartbeat_s = heartbeat_s
        self.ttl_s = ttl_s
        self.horizon_s = horizon_s
        self._client = system.datastore.client()
        self._leases: dict[str, object] = {}
        #: heartbeat suppression windows (simulated daemon death), gpu_id → until
        self._suppressed_until: dict[str, float] = {}
        #: GPUs this watchdog itself took offline (and therefore owns healing)
        self._escalated: set[str] = set()
        self.escalations = 0
        self.recoveries = 0
        self.retired = False
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Grant the initial leases and begin the heartbeat loop."""
        if self._started:
            raise RuntimeError("watchdog already started")
        self._started = True
        for gpu in self.system.cluster.gpus:
            self._grant(gpu.gpu_id)
        self.sim.schedule(self.heartbeat_s, self._beat)

    def suppress(self, gpu_id: str, duration_s: float) -> None:
        """Stop refreshing ``gpu_id``'s lease for ``duration_s`` (the
        injector's LeaseExpiry fault: the manager daemon goes silent)."""
        until = self.sim.now + duration_s
        self._suppressed_until[gpu_id] = max(
            self._suppressed_until.get(gpu_id, 0.0), until
        )

    # ------------------------------------------------------------------
    def _grant(self, gpu_id: str) -> None:
        lease = self._client.lease(self.ttl_s)
        self._client.put(f"{HEALTH_PREFIX}{gpu_id}", "ok", lease=lease)
        lease.on_expire(lambda _lease, gpu_id=gpu_id: self._expired(gpu_id))
        self._leases[gpu_id] = lease

    def _expired(self, gpu_id: str) -> None:
        """Lease expiry escalation: mark the GPU unschedulable."""
        gpu = self.system.cluster.gpu(gpu_id)
        self.escalations += 1
        if gpu.is_online:
            self._escalated.add(gpu_id)
            self.system.metrics.on_fault("lease_expiry", gpu_id)
            self.system.fail_gpu(gpu_id)
        # already offline: another fault owns the GPU; the expired lease is
        # simply re-granted when heartbeats resume

    def _beat(self) -> None:
        # reschedule first: handlers below may run nested simulator logic,
        # and a fixed cadence keeps the replay's event sequence stable
        if self.sim.now + self.heartbeat_s <= self.horizon_s:
            self.sim.schedule(self.heartbeat_s, self._beat)
        else:
            self._retire()
            return
        now = self.sim.now
        for gpu in self.system.cluster.gpus:
            gpu_id = gpu.gpu_id
            if now < self._suppressed_until.get(gpu_id, 0.0):
                continue  # daemon silent: let the lease run out
            lease = self._leases[gpu_id]
            if lease.alive:
                lease.refresh()
                continue
            # heartbeats are back after an expiry: re-establish liveness
            self._grant(gpu_id)
            if gpu_id in self._escalated:
                self._escalated.discard(gpu_id)
                if not gpu.is_online:
                    self.system.recover_gpu(gpu_id)
                    self.recoveries += 1
                self.system.metrics.on_fault_cleared("lease_expiry", gpu_id)

    def _retire(self) -> None:
        """Past the fault horizon: heal anything still escalated, revoke
        the leases (clean shutdown, no expiry callbacks), go dormant."""
        self.retired = True
        for gpu_id in sorted(self._escalated):
            gpu = self.system.cluster.gpu(gpu_id)
            if not gpu.is_online:
                self.system.recover_gpu(gpu_id)
                self.recoveries += 1
            self.system.metrics.on_fault_cleared("lease_expiry", gpu_id)
        self._escalated.clear()
        for lease in self._leases.values():
            if lease.alive:
                lease.revoke()
