"""Figure 7: O3 dispatch limit sensitivity (working set 35).

Sweeps the out-of-order skip limit from 0 (= LALB) to 45 and reports the
average function latency, cache miss ratio, and latency variance — §V-E
also highlights that the larger limit *reduces* the latency variance,
because the extra cache hits outweigh the unfairness of skipping.
"""

from __future__ import annotations

from dataclasses import replace

from ..metrics.summary import RunSummary
from ..traces.azure import SyntheticAzureTrace
from .report import format_table
from .runner import ExperimentConfig, shared_trace

__all__ = ["PAPER_O3_LIMITS", "run_fig7", "format_fig7"]

PAPER_O3_LIMITS = (0, 5, 15, 25, 35, 45)


def run_fig7(
    limits: tuple[int, ...] = PAPER_O3_LIMITS,
    *,
    working_set: int = 35,
    base: ExperimentConfig | None = None,
    trace: SyntheticAzureTrace | None = None,
    workers: int = 1,
    store=None,
    resume: bool = True,
    progress=None,
) -> dict[int, RunSummary]:
    """The O3-limit axis through the sweep orchestrator (workers/store as
    in :func:`~repro.experiments.runner.run_policy_grid`)."""
    from .sweep import SweepCell, run_keyed_cells

    base = base or ExperimentConfig(policy="lalbo3", working_set=working_set)
    trace = trace or shared_trace()
    cells = {
        limit: SweepCell(
            config=replace(
                base, policy="lalbo3", working_set=working_set, o3_limit=limit
            ),
            trace=trace.config,
        )
        for limit in limits
    }
    return run_keyed_cells(
        cells, trace=trace, workers=workers, store=store, resume=resume,
        progress=progress,
    )


def format_fig7(results: dict[int, RunSummary]) -> str:
    rows = [
        [
            limit,
            round(s.avg_latency_s, 3),
            round(s.cache_miss_ratio, 4),
            round(s.latency_variance, 3),
        ]
        for limit, s in sorted(results.items())
    ]
    table = format_table(
        ["O3 limit", "avg latency (s)", "miss ratio", "latency variance"], rows
    )
    return f"Figure 7: O3 limit sensitivity (working set 35)\n{table}"
