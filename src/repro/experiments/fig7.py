"""Figure 7: O3 dispatch limit sensitivity (working set 35).

Sweeps the out-of-order skip limit from 0 (= LALB) to 45 and reports the
average function latency, cache miss ratio, and latency variance — §V-E
also highlights that the larger limit *reduces* the latency variance,
because the extra cache hits outweigh the unfairness of skipping.
"""

from __future__ import annotations

from dataclasses import replace

from ..metrics.summary import RunSummary
from ..traces.azure import SyntheticAzureTrace
from .report import format_table
from .runner import ExperimentConfig, run_experiment

__all__ = ["PAPER_O3_LIMITS", "run_fig7", "format_fig7"]

PAPER_O3_LIMITS = (0, 5, 15, 25, 35, 45)


def run_fig7(
    limits: tuple[int, ...] = PAPER_O3_LIMITS,
    *,
    working_set: int = 35,
    base: ExperimentConfig | None = None,
    trace: SyntheticAzureTrace | None = None,
) -> dict[int, RunSummary]:
    base = base or ExperimentConfig(policy="lalbo3", working_set=working_set)
    trace = trace or SyntheticAzureTrace()
    results: dict[int, RunSummary] = {}
    for limit in limits:
        cfg = replace(base, policy="lalbo3", working_set=working_set, o3_limit=limit)
        results[limit] = run_experiment(cfg, trace=trace)
    return results


def format_fig7(results: dict[int, RunSummary]) -> str:
    rows = [
        [
            limit,
            round(s.avg_latency_s, 3),
            round(s.cache_miss_ratio, 4),
            round(s.latency_variance, 3),
        ]
        for limit, s in sorted(results.items())
    ]
    table = format_table(
        ["O3 limit", "avg latency (s)", "miss ratio", "latency variance"], rows
    )
    return f"Figure 7: O3 limit sensitivity (working set 35)\n{table}"
