"""Table I: model occupation sizes, loading times, inference latencies.

Two modes:

* :func:`table1_from_paper` — the transcription used by the simulator.
* :func:`table1_wallclock` — runs the §IV-A profiling procedure for real on
  the miniature NumPy networks: measures forward passes across batch sizes,
  fits the regression, and derives load times from the PCIe model.  The
  absolute numbers differ from the paper (CPU NumPy vs. RTX 2080), but the
  per-model *ordering* of compute cost tracks the same family ordering.
"""

from __future__ import annotations

from ..models.nn.factory import build_model
from ..models.profiler import profile_network
from ..models.profiles import ModelProfile
from ..models.zoo import model_names, paper_profiles
from .report import format_table

__all__ = ["table1_from_paper", "table1_wallclock", "format_table1"]


def table1_from_paper() -> dict[str, ModelProfile]:
    """The 22 Table I profiles driving the simulation."""
    return paper_profiles()


def table1_wallclock(
    *, architectures: list[str] | None = None, batch_sizes: tuple[int, ...] = (1, 2, 4, 8)
) -> dict[str, ModelProfile]:
    """Re-run the profiling procedure on the NumPy networks (slow-ish)."""
    out: dict[str, ModelProfile] = {}
    for name in architectures or model_names():
        network = build_model(name)
        out[name] = profile_network(network, batch_sizes=batch_sizes, repeats=2).profile
    return out


def format_table1(profiles: dict[str, ModelProfile]) -> str:
    rows = [
        [p.name, round(p.occupied_mb, 1), round(p.load_time_s, 3), round(p.infer_time_s, 3)]
        for p in sorted(profiles.values(), key=lambda p: p.occupied_mb)
    ]
    return format_table(
        ["Model", "Size (MB)", "Loading time (s)", "Inference time (s)"], rows
    )
