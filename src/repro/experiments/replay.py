"""Gateway-level workload replay: the full Fig. 2 path at trace scale.

The main experiment runner submits :class:`InferenceRequest` objects
straight to the Scheduler — that is what the paper measures (function
latency excludes container management, which both schedulers share).  This
module replays the same workload through the *entire* FaaS front-end
instead: every workload function is registered via the Gateway (Dockerfile
flag parsing, ML-API interception, container pools, Watchdog), and every
trace invocation becomes a Gateway call.

Useful for end-to-end validation (the scheduler-level and gateway-level
runs must agree on cache behaviour) and for studying FaaS-layer overheads
(cold starts, container contention) that the paper factors out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faas.gateway import Gateway
from ..faas.spec import FunctionSpec
from ..faas.watchdog import Invocation
from ..metrics.summary import RunSummary, summarize
from ..runtime.config import SystemConfig, streaming_config
from ..runtime.system import FaaSCluster
from ..traces.azure import SyntheticAzureTrace
from ..traces.workload import (
    Workload,
    WorkloadSpec,
    assign_architectures,
    build_workload,
    build_workload_streaming,
)

__all__ = [
    "GatewayReplay",
    "replay_through_gateway",
    "replay_streaming",
    "replay_traced",
]


@dataclass
class GatewayReplay:
    """Results of a gateway-level replay."""

    system: FaaSCluster
    gateway: Gateway
    workload: Workload
    invocations: list[Invocation] = field(default_factory=list)

    @property
    def completed_invocations(self) -> list[Invocation]:
        return [inv for inv in self.invocations if inv.completed_at is not None]

    def avg_invocation_latency(self) -> float:
        done = self.completed_invocations
        if not done:
            raise ValueError("no completed invocations")
        return float(np.mean([inv.latency for inv in done]))

    def avg_gpu_latency(self) -> float:
        """Scheduler-visible latency (excludes container/Watchdog overhead)."""
        reqs = self.system.completed
        if not reqs:
            raise ValueError("no completed GPU requests")
        return float(np.mean([r.latency for r in reqs]))

    def faas_overhead(self) -> float:
        """Mean per-invocation overhead added by the FaaS layer."""
        return self.avg_invocation_latency() - self.avg_gpu_latency()

    def cache_miss_ratio(self) -> float:
        reqs = self.system.completed
        return sum(1 for r in reqs if r.cache_hit is False) / len(reqs)


def replay_through_gateway(
    spec: WorkloadSpec | None = None,
    *,
    config: SystemConfig | None = None,
    trace: SyntheticAzureTrace | None = None,
    max_replicas: int = 32,
    warmup_s: float = 5.0,
) -> GatewayReplay:
    """Register the workload's functions and replay its invocations.

    Containers are pre-built during ``warmup_s`` (registration pays the
    image build once, as in a real deployment); invocation arrival times
    are shifted by the warm-up so the GPU-side workload matches the paper's
    timing.
    """
    spec = spec or WorkloadSpec()
    trace = trace or SyntheticAzureTrace()
    workload = build_workload(spec, trace=trace)
    system = FaaSCluster(config or SystemConfig())
    gateway = Gateway(system)

    arch_of = assign_architectures(workload.function_ids)
    for fid in workload.function_ids:
        fn = gateway.register(
            FunctionSpec(
                name=fid,
                model_architecture=arch_of[fid],
                max_replicas=max_replicas,
            )
        )
        # the gateway minted its own model instance; align the workload's
        # cache-item identity with it so per-function caching matches
        workload.instances[fid] = fn.model_handle.instance
    system.run(until=warmup_s)  # image builds + first replicas

    replay = GatewayReplay(system=system, gateway=gateway, workload=workload)

    def fire(fid: str) -> None:
        replay.invocations.append(gateway.invoke(fid))

    # gateway invocations need only (time, function name): feed the
    # workload's columns straight into the bulk scheduler — no
    # InferenceRequest objects are materialized on this path at all
    fids = workload.function_ids
    system.sim.schedule_many(
        (warmup_s + workload.arrival_times).tolist(),
        fire,
        ((fids[i],) for i in workload.function_index.tolist()),
    )
    system.run()
    return replay


def replay_streaming(
    spec: WorkloadSpec | None = None,
    *,
    config: SystemConfig | None = None,
    trace: SyntheticAzureTrace | None = None,
    minutes_per_chunk: int = 8,
    low_water: int = 64,
) -> tuple[RunSummary, FaaSCluster]:
    """Scheduler-level §V-A replay at flat RSS: the streaming pipeline.

    Chunked workload columns (:func:`build_workload_streaming`) feed the
    simulator through :meth:`FaaSCluster.submit_workload_streaming`, the
    metrics collector folds completions into fixed-size histograms, and
    MVCC autocompaction bounds the Datastore's history — so peak memory is
    set by the chunk size and cluster state, not the request count.  The
    default ``config`` is :func:`~repro.runtime.config.streaming_config`.

    Returns the run summary plus the drained system for drill-down.
    """
    spec = spec or WorkloadSpec()
    trace = trace or SyntheticAzureTrace()
    workload = build_workload_streaming(spec, trace=trace)
    system = FaaSCluster(config if config is not None else streaming_config())
    system.submit_workload_streaming(
        workload, minutes_per_chunk=minutes_per_chunk, low_water=low_water
    )
    system.run()
    summary = summarize(
        system.metrics,
        system.cluster,
        policy=system.config.policy,
        working_set=spec.working_set,
        top_model=workload.top_model_id,
    )
    system.metrics.close_spill()
    return summary, system


def replay_traced(
    n_requests: int = 2000,
    *,
    seed: int = 0,
    config: SystemConfig | None = None,
    out: str = "trace.json",
    spill: str | None = None,
) -> tuple[RunSummary, FaaSCluster, str]:
    """Scheduler-level §V-A replay with the flight recorder on, exported
    as a Chrome trace-event file (open ``out`` in Perfetto / chrome://tracing).

    ``config`` overrides are honoured but the tracer is forced on (that is
    the point of this entry); pass ``spill`` to tee decimated request
    records to a JSONL file alongside the ring snapshot.

    Returns ``(summary, system, trace_path)``; the drained ``system`` keeps
    its :class:`~repro.obs.FlightRecorder` on ``system.tracer`` for
    programmatic drill-down.
    """
    from dataclasses import replace

    from ..obs.export import write_chrome_trace

    base = config or SystemConfig()
    cfg = replace(
        base, tracer="flight", trace_spill_path=spill, seed=base.seed or seed
    )
    spec = WorkloadSpec(
        working_set=15, minutes=max(1, round(n_requests / 325)), seed=seed
    )
    workload = build_workload(spec, trace=SyntheticAzureTrace())
    system = FaaSCluster(cfg)
    system.submit_workload(workload)
    system.run()
    assert system.tracer is not None
    system.tracer.close()
    path = write_chrome_trace(system.tracer, out)
    summary = summarize(
        system.metrics,
        system.cluster,
        policy=cfg.policy,
        working_set=spec.working_set,
        top_model=workload.top_model_id,
    )
    return summary, system, path
