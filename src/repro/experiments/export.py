"""Result export: write experiment summaries and timelines to CSV.

Every figure's data can be saved for external plotting/analysis; columns
match :meth:`~repro.metrics.summary.RunSummary.row` plus any sweep keys.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping

from ..metrics.summary import RunSummary
from ..metrics.timeline import TimelineSampler

__all__ = ["write_summaries_csv", "write_timeline_csv", "read_csv_rows"]


def write_summaries_csv(
    path: str | Path,
    results: Mapping,
    *,
    key_names: tuple[str, ...] = ("key",),
) -> None:
    """Write a dict of sweep-key → :class:`RunSummary` as CSV.

    Tuple keys map onto ``key_names`` column-wise, e.g. the Fig. 4 grid's
    ``(policy, working_set)`` keys with ``key_names=("policy", "ws")``.
    """
    if not results:
        raise ValueError("nothing to export")
    path = Path(path)
    rows = []
    for key, summary in results.items():
        if not isinstance(summary, RunSummary):
            raise TypeError(f"value for {key!r} is not a RunSummary")
        key_tuple = key if isinstance(key, tuple) else (key,)
        if len(key_tuple) != len(key_names):
            raise ValueError(
                f"key {key!r} has {len(key_tuple)} parts but key_names has {len(key_names)}"
            )
        # sweep-key columns win on collision (e.g. a "policy" key overrides
        # the summary's decorated policy label)
        rows.append(summary.row() | dict(zip(key_names, key_tuple)))
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def write_timeline_csv(path: str | Path, sampler: TimelineSampler) -> None:
    """Write a :class:`TimelineSampler`'s samples as CSV."""
    rows = sampler.to_rows()
    if not rows:
        raise ValueError("sampler has no samples")
    with Path(path).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def read_csv_rows(path: str | Path) -> list[dict[str, str]]:
    """Read back an exported CSV (stringly-typed, for verification)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
