"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig4 [--workers N] [--store DIR]
    python -m repro.experiments fig5
    python -m repro.experiments fig6
    python -m repro.experiments fig7
    python -m repro.experiments all --workers 4 --store .sweep-results
    python -m repro.experiments sweep --workers 4 --store .sweep-results
    python -m repro.experiments bench        # scheduler perf → BENCH_scheduler.json
    python -m repro.experiments bench-check  # gate the committed trajectory
    python -m repro.experiments profile      # cProfile the 2k §V-A replay
    python -m repro.experiments trace        # traced 2k replay → trace.json (Perfetto)
    python -m repro.experiments explain 42   # why request #42 was scheduled the way it was

Grid targets route through the sharded sweep orchestrator
(:mod:`repro.experiments.sweep`): ``--workers N`` fans the §V cells out
across a process pool, ``--store DIR`` persists each finished cell to an
on-disk result store keyed by content-hash cell ID, and ``--resume``
(default with a store) re-executes only the cells the store is missing —
an interrupted sweep picks up where it left off, and unchanged cells are
served from cache.  ``--workers 1`` with no store is exactly the
sequential path; figure data is byte-identical either way.

The ``sweep`` target runs the declarative §V grid itself (axes:
``--policies --working-sets --o3-limits --replacements --seeds
--fault-profiles``) and prints one summary row per cell, in deterministic
cell-ID merge order.  ``--fault-profiles recoverable`` replays the grid
under the seeded chaos plan (see :mod:`repro.chaos` and
``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import sys

from .fig4 import format_fig4, headline_reductions, run_fig4
from .fig5 import format_fig5
from .fig6 import format_fig6
from .fig7 import format_fig7, run_fig7
from .table1 import format_table1, table1_from_paper


def _sweep_kwargs(args) -> dict:
    """The orchestrator knobs shared by every grid target."""
    return {
        "workers": args.workers,
        "store": args.store,
        "resume": args.resume,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments", description="Regenerate the paper's tables and figures"
    )
    parser.add_argument(
        "target",
        choices=[
            "table1", "fig4", "fig5", "fig6", "fig7", "ablations", "sweep",
            "bench", "bench-check", "profile", "trace", "explain", "all",
        ],
    )
    parser.add_argument(
        "request_id", nargs="?", type=int, default=None,
        help="1-based request ordinal for the explain target",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests", type=int, default=2000,
        help="replay size for the trace/explain targets (default 2000)",
    )
    parser.add_argument(
        "--trace-out", default="trace.json",
        help="output path for the trace target's Chrome trace-event file",
    )
    parser.add_argument(
        "--trace-spill", default=None, metavar="PATH",
        help="optional JSONL spill of decimated request records (trace target)",
    )
    parser.add_argument(
        "--bench-output", default=None, help="path for the bench JSON report"
    )
    parser.add_argument(
        "--profile-requests", type=int, default=2000,
        help="replay size for the profile target (default: the 2k §V-A replay)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="sweep worker processes (1 = sequential, in-process)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory: finished cells persist here and are "
        "reused on the next run",
    )
    parser.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="serve cells already in the store from cache (default)",
    )
    parser.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="re-execute every cell even when the store already has it",
    )
    # sweep-target axes (ignored by other targets)
    parser.add_argument("--policies", nargs="+", default=None, metavar="P")
    parser.add_argument("--working-sets", nargs="+", type=int, default=None, metavar="WS")
    parser.add_argument("--o3-limits", nargs="+", type=int, default=None, metavar="L")
    parser.add_argument("--replacements", nargs="+", default=None, metavar="R")
    parser.add_argument("--seeds", nargs="+", type=int, default=None, metavar="S")
    parser.add_argument(
        "--fault-profiles", nargs="+", default=None, metavar="F",
        help="chaos axis: named fault profiles (none, recoverable, severe)",
    )
    parser.add_argument("--minutes", type=int, default=None)
    parser.add_argument("--requests-per-minute", type=int, default=None)
    args = parser.parse_args(argv)

    if args.target == "trace":
        from .replay import replay_traced

        summary, system, path = replay_traced(
            args.requests,
            seed=args.seed,
            out=args.trace_out,
            spill=args.trace_spill,
        )
        totals = system.tracer.totals
        print(
            f"traced replay: {len(system.completed)} requests, "
            f"{totals['passes']} passes, {totals['commits']} commits, "
            f"{totals['instants']} instants -> {path}"
        )
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0

    if args.target == "explain":
        from ..obs.explain import run_explain

        if args.request_id is None:
            print(
                "explain needs a request ordinal: "
                "python -m repro.experiments explain 42",
                file=sys.stderr,
            )
            return 2
        print(
            run_explain(
                args.request_id, n_requests=args.requests, seed=args.seed
            )
        )
        return 0

    if args.target == "bench":
        from .bench import run_bench

        run_bench(args.bench_output)
        return 0

    if args.target == "profile":
        from .bench import run_profile

        run_profile(n_requests=args.profile_requests)
        return 0

    if args.target == "bench-check":
        from .bench import check_bench

        problems = check_bench(args.bench_output)
        if problems:
            for problem in problems:
                print(f"BENCH CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print(
            "bench check ok: depth scaling, revisions-per-action, and sweep "
            "scaling/resume within gates"
        )
        return 0

    if args.target == "table1":
        print(format_table1(table1_from_paper()))
        return 0

    if args.target == "sweep":
        from .report import format_table
        from .sweep import SweepSpec, run_sweep

        overrides = {}
        if args.policies is not None:
            overrides["policies"] = tuple(args.policies)
        if args.working_sets is not None:
            overrides["working_sets"] = tuple(args.working_sets)
        if args.o3_limits is not None:
            overrides["o3_limits"] = tuple(args.o3_limits)
        if args.replacements is not None:
            overrides["replacements"] = tuple(args.replacements)
        if args.seeds is not None:
            overrides["seeds"] = tuple(args.seeds)
        elif args.seed:
            overrides["seeds"] = (args.seed,)
        if args.fault_profiles is not None:
            overrides["fault_profiles"] = tuple(args.fault_profiles)
        if args.minutes is not None:
            overrides["minutes"] = args.minutes
        if args.requests_per_minute is not None:
            overrides["requests_per_minute"] = args.requests_per_minute
        spec = SweepSpec(**overrides)
        result = run_sweep(spec, **_sweep_kwargs(args))
        rows = []
        for cell_id, cell in result.cells.items():
            row = cell.summary.row()
            rows.append(
                [cell_id, row["policy"], row["working_set"], cell.config["experiment"]["seed"],
                 row["avg_latency_s"], row["miss_ratio"], row["sm_util"]]
            )
        print(
            format_table(
                ["cell", "policy", "ws", "seed", "avg_lat_s", "miss", "sm_util"], rows
            )
        )
        s = result.stats
        print(
            f"\n{s.total} cells: {s.executed} executed, {s.cache_hits} cached, "
            f"{s.retries} retried, {s.failed} failed "
            f"({s.wall_s:.2f} s, {s.as_dict()['cells_per_s']} cells/s, "
            f"workers={s.workers})"
        )
        return 0

    sweep_kwargs = _sweep_kwargs(args)
    if args.target in ("fig4", "fig5", "fig6", "all"):
        from dataclasses import replace

        from .runner import ExperimentConfig

        base = replace(ExperimentConfig(), seed=args.seed)
        grid = run_fig4(base=base, **sweep_kwargs)
        if args.target in ("fig4", "all"):
            print(format_fig4(grid))
            print()
            for key, value in headline_reductions(grid).items():
                print(f"  {key}: {value:.2f}%")
            print()
        if args.target in ("fig5", "all"):
            print(format_fig5(grid))
            print()
        if args.target in ("fig6", "all"):
            print(format_fig6(grid))
            print()
    if args.target in ("fig7", "all"):
        print(format_fig7(run_fig7(**sweep_kwargs)))
    if args.target == "ablations":
        from .ablations import run_belady_bound, run_cache_policy_ablation, run_gpu_scaling

        print("Cache replacement policies under LALBO3 (WS 35):")
        for rp, s in run_cache_policy_ablation(**sweep_kwargs).items():
            print(f"  {rp:5s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")
        print("\nLRU vs offline-optimal (Belady) bound (WS 35):")
        for name, s in run_belady_bound().items():
            print(f"  {name:6s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")
        print("\nCluster-size scaling (WS 25, 325 req/min):")
        for gpus, s in sorted(run_gpu_scaling(**sweep_kwargs).items()):
            print(f"  {gpus:2d} GPUs latency={s.avg_latency_s:8.3f}s miss={s.cache_miss_ratio:.4f}")
    if args.target == "all":
        print()
        print(format_table1(table1_from_paper()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
