"""CLI: regenerate any paper table/figure.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig4
    python -m repro.experiments fig5
    python -m repro.experiments fig6
    python -m repro.experiments fig7
    python -m repro.experiments all
    python -m repro.experiments bench        # scheduler perf → BENCH_scheduler.json
    python -m repro.experiments bench-check  # gate the committed trajectory
"""

from __future__ import annotations

import argparse
import sys

from .fig4 import format_fig4, headline_reductions, run_fig4
from .fig5 import format_fig5
from .fig6 import format_fig6
from .fig7 import format_fig7, run_fig7
from .table1 import format_table1, table1_from_paper


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments", description="Regenerate the paper's tables and figures"
    )
    parser.add_argument(
        "target",
        choices=[
            "table1", "fig4", "fig5", "fig6", "fig7", "ablations",
            "bench", "bench-check", "all",
        ],
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--bench-output", default=None, help="path for the bench JSON report"
    )
    args = parser.parse_args(argv)

    if args.target == "bench":
        from .bench import run_bench

        run_bench(args.bench_output)
        return 0

    if args.target == "bench-check":
        from .bench import check_bench

        problems = check_bench(args.bench_output)
        if problems:
            for problem in problems:
                print(f"BENCH CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("bench check ok: depth scaling and revisions-per-action within gates")
        return 0

    if args.target == "table1":
        print(format_table1(table1_from_paper()))
        return 0

    if args.target in ("fig4", "fig5", "fig6", "all"):
        from dataclasses import replace

        from .runner import ExperimentConfig

        base = replace(ExperimentConfig(), seed=args.seed)
        grid = run_fig4(base=base)
        if args.target in ("fig4", "all"):
            print(format_fig4(grid))
            print()
            for key, value in headline_reductions(grid).items():
                print(f"  {key}: {value:.2f}%")
            print()
        if args.target in ("fig5", "all"):
            print(format_fig5(grid))
            print()
        if args.target in ("fig6", "all"):
            print(format_fig6(grid))
            print()
    if args.target in ("fig7", "all"):
        print(format_fig7(run_fig7()))
    if args.target == "ablations":
        from .ablations import run_belady_bound, run_cache_policy_ablation, run_gpu_scaling

        print("Cache replacement policies under LALBO3 (WS 35):")
        for rp, s in run_cache_policy_ablation().items():
            print(f"  {rp:5s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")
        print("\nLRU vs offline-optimal (Belady) bound (WS 35):")
        for name, s in run_belady_bound().items():
            print(f"  {name:6s} latency={s.avg_latency_s:.3f}s miss={s.cache_miss_ratio:.4f}")
        print("\nCluster-size scaling (WS 25, 325 req/min):")
        for gpus, s in sorted(run_gpu_scaling().items()):
            print(f"  {gpus:2d} GPUs latency={s.avg_latency_s:8.3f}s miss={s.cache_miss_ratio:.4f}")
    if args.target == "all":
        print()
        print(format_table1(table1_from_paper()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
