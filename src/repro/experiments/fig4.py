"""Figure 4: average latency (a), cache miss ratio (b), SM utilization (c).

Comparative analysis of LB / LALB / LALBO3 across working sets 15/25/35 on
the paper testbed (12 GPUs, 325 requests/minute, 6 minutes of the Azure
trace).
"""

from __future__ import annotations

from ..metrics.summary import RunSummary
from .report import format_table, reduction_pct
from .runner import PAPER_POLICIES, run_policy_grid

__all__ = ["run_fig4", "format_fig4", "headline_reductions"]


def run_fig4(
    working_sets: tuple[int, ...] = (15, 25, 35), **kwargs
) -> dict[tuple[str, int], RunSummary]:
    """The shared sweep (also feeds Figs. 5 and 6)."""
    return run_policy_grid(working_sets, PAPER_POLICIES, **kwargs)


def format_fig4(results: dict[tuple[str, int], RunSummary]) -> str:
    """Three sub-figures as one table per metric."""
    working_sets = sorted({ws for _, ws in results})
    blocks = []
    for title, attr in (
        ("Figure 4a: average function latency (s)", "avg_latency_s"),
        ("Figure 4b: cache miss ratio", "cache_miss_ratio"),
        ("Figure 4c: GPU (SM) utilization", "sm_utilization"),
    ):
        rows = []
        for policy in PAPER_POLICIES:
            row: list = [policy.upper()]
            for ws in working_sets:
                row.append(round(getattr(results[(policy, ws)], attr), 4))
            rows.append(row)
        table = format_table(["scheduler"] + [f"WS={ws}" for ws in working_sets], rows)
        blocks.append(f"{title}\n{table}")
    return "\n\n".join(blocks)


def headline_reductions(results: dict[tuple[str, int], RunSummary]) -> dict[str, float]:
    """The §V-B headline numbers: reductions of LALB/LALBO3 vs. LB."""
    out: dict[str, float] = {}
    for ws in sorted({w for _, w in results}):
        lb = results[("lb", ws)]
        for policy in ("lalb", "lalbo3"):
            s = results[(policy, ws)]
            out[f"{policy}_latency_reduction_ws{ws}"] = reduction_pct(
                lb.avg_latency_s, s.avg_latency_s
            )
            out[f"{policy}_miss_reduction_ws{ws}"] = reduction_pct(
                lb.cache_miss_ratio, s.cache_miss_ratio
            )
    return out
