"""Scheduler-overhead benchmark runner → ``BENCH_scheduler.json``.

``python -m repro.experiments bench`` (or ``make bench``) runs the
``benchmarks/test_scheduler_overhead.py`` suite under pytest-benchmark and
distills the results into a small committed JSON file: the median cost of
one scheduling pass at queue depths 100 / 2 000 / 20 000 plus the index
micro-benches.  It also replays a seeded 2k-request workload once per
Datastore write mode and records the control plane's **write
amplification** — datastore writes and revisions per scheduling action,
revisions per 1k requests, and the batched path's revision-reduction
factor — so the transactional write path's win is tracked alongside pass
cost.  Each PR re-runs it, so the repository carries a perf trajectory for
the scheduling hot path instead of anecdotes.
"""

from __future__ import annotations

import json
import random
import re
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["run_bench", "seeded_workload", "DEFAULT_OUTPUT"]

#: frozen seed/size for the write-amplification replay: counts are exact
#: (deterministic), not timings, so one run suffices
_WRITE_AMP_SEED = 20230731
_WRITE_AMP_REQUESTS = 2000


def seeded_workload(
    seed: int, n_requests: int, n_functions: int = 30
) -> list[tuple[int, float]]:
    """Seeded arrival trace: (function index, arrival time) tuples.

    Bursty arrivals with Pareto-skewed popularity, deep enough queues to
    exercise hits, misses, evictions, local queues, and the O3 starvation
    guard.  Shared by the write-amplification bench and the write-path
    parity tests so both measure the *same* workload.
    """
    rng = random.Random(seed)
    spec = []
    t = 0.0
    for _ in range(n_requests):
        t += rng.expovariate(2.0) if rng.random() < 0.05 else rng.expovariate(1 / 0.035)
        spec.append((min(int(rng.paretovariate(0.9)) - 1, n_functions - 1), t))
    return spec


def _write_amp_mode(batched: bool) -> dict:
    """Replay the seeded workload and count datastore writes/revisions."""
    from ..cluster import ClusterSpec
    from ..core.request import InferenceRequest
    from ..models import ModelInstance, get_profile, model_names
    from ..runtime import FaaSCluster, SystemConfig

    names = model_names()
    spec = seeded_workload(_WRITE_AMP_SEED, _WRITE_AMP_REQUESTS)
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy="lalbo3",
            datastore_batching=batched,
        )
    )
    instances = [
        ModelInstance(f"m{i}", get_profile(names[i % len(names)])) for i in range(30)
    ]
    for fn, at in spec:
        system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=at))
    system.run()

    ds = system.datastore
    actions = len(system.scheduler.decisions)
    return {
        "requests": _WRITE_AMP_REQUESTS,
        "scheduling_actions": actions,
        "logical_writes": ds.stats.logical_writes,
        "revisions": ds.kv.revision,
        "flushes": ds.stats.flushes,
        "committed_keys": ds.stats.committed_keys,
        "coalesced_writes": ds.stats.coalesced_writes,
        "writes_per_scheduling_action": round(ds.stats.logical_writes / actions, 3),
        "revisions_per_scheduling_action": round(ds.kv.revision / actions, 3),
        "revisions_per_1k_requests": round(
            ds.kv.revision / _WRITE_AMP_REQUESTS * 1000, 1
        ),
    }


def measure_write_amplification() -> dict:
    """Batched vs. literal write path on the same seeded workload."""
    unbatched = _write_amp_mode(batched=False)
    batched = _write_amp_mode(batched=True)
    return {
        "workload_seed": _WRITE_AMP_SEED,
        "unbatched": unbatched,
        "batched": batched,
        "revision_reduction_factor": round(
            unbatched["revisions"] / max(batched["revisions"], 1), 2
        ),
    }

DEFAULT_OUTPUT = "BENCH_scheduler.json"
_SUITE = Path("benchmarks") / "test_scheduler_overhead.py"
#: end-to-end fig4 runs ride along so the trajectory also tracks whole-
#: experiment wall time, not only the scheduling micro-benches
_EXTRA_SUITES = (
    Path("benchmarks") / "test_fig4_latency.py",
)


def _repo_root() -> Path:
    """The checkout root (where ``benchmarks/`` lives), else the cwd."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / _SUITE).exists():
        return candidate
    return Path.cwd()


def _git_revision(root: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_bench(output: str | None = None, *, verbose: bool = True) -> dict:
    """Run the scheduler-overhead suite and write the perf-trajectory JSON."""
    root = _repo_root()
    suite = root / _SUITE
    if not suite.exists():
        raise FileNotFoundError(f"benchmark suite not found: {suite}")
    suites = [str(suite)] + [str(root / s) for s in _EXTRA_SUITES if (root / s).exists()]
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", *suites, "-q",
                f"--benchmark-json={raw_path}",
            ],
            cwd=root,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark suite failed (exit {proc.returncode})")
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    benchmarks = {}
    pass_cost_by_depth = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
        match = re.fullmatch(r"test_scheduling_scan_cost_at_depth\[(\d+)\]", bench["name"])
        if match:
            pass_cost_by_depth[match.group(1)] = stats["median"]

    report = {
        "suite": "scheduler_overhead",
        "commit": _git_revision(root),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "pass_cost_by_depth_s": dict(
            sorted(pass_cost_by_depth.items(), key=lambda kv: int(kv[0]))
        ),
        "write_amplification": measure_write_amplification(),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    out_path = root / (output or DEFAULT_OUTPUT)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    if verbose:
        print(f"wrote {out_path}")
        for depth, median in report["pass_cost_by_depth_s"].items():
            print(f"  pass cost @ depth {depth:>6}: {median * 1e6:8.1f} us")
        amp = report["write_amplification"]
        print(
            "  datastore revisions/action: "
            f"{amp['unbatched']['revisions_per_scheduling_action']} unbatched -> "
            f"{amp['batched']['revisions_per_scheduling_action']} batched "
            f"({amp['revision_reduction_factor']}x fewer)"
        )
    return report
