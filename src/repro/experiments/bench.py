"""Scheduler-overhead benchmark runner → ``BENCH_scheduler.json``.

``python -m repro.experiments bench`` (or ``make bench``) runs the
``benchmarks/test_scheduler_overhead.py`` suite under pytest-benchmark and
distills the results into a small committed JSON file: the median cost of
one scheduling pass at queue depths 100 / 2 000 / 20 000 plus the index
micro-benches.  Each PR re-runs it, so the repository carries a perf
trajectory for the scheduling hot path instead of anecdotes.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["run_bench", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = "BENCH_scheduler.json"
_SUITE = Path("benchmarks") / "test_scheduler_overhead.py"
#: end-to-end fig4 runs ride along so the trajectory also tracks whole-
#: experiment wall time, not only the scheduling micro-benches
_EXTRA_SUITES = (
    Path("benchmarks") / "test_fig4_latency.py",
)


def _repo_root() -> Path:
    """The checkout root (where ``benchmarks/`` lives), else the cwd."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / _SUITE).exists():
        return candidate
    return Path.cwd()


def _git_revision(root: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_bench(output: str | None = None, *, verbose: bool = True) -> dict:
    """Run the scheduler-overhead suite and write the perf-trajectory JSON."""
    root = _repo_root()
    suite = root / _SUITE
    if not suite.exists():
        raise FileNotFoundError(f"benchmark suite not found: {suite}")
    suites = [str(suite)] + [str(root / s) for s in _EXTRA_SUITES if (root / s).exists()]
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", *suites, "-q",
                f"--benchmark-json={raw_path}",
            ],
            cwd=root,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark suite failed (exit {proc.returncode})")
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    benchmarks = {}
    pass_cost_by_depth = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
        match = re.fullmatch(r"test_scheduling_scan_cost_at_depth\[(\d+)\]", bench["name"])
        if match:
            pass_cost_by_depth[match.group(1)] = stats["median"]

    report = {
        "suite": "scheduler_overhead",
        "commit": _git_revision(root),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "pass_cost_by_depth_s": dict(
            sorted(pass_cost_by_depth.items(), key=lambda kv: int(kv[0]))
        ),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    out_path = root / (output or DEFAULT_OUTPUT)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    if verbose:
        print(f"wrote {out_path}")
        for depth, median in report["pass_cost_by_depth_s"].items():
            print(f"  pass cost @ depth {depth:>6}: {median * 1e6:8.1f} us")
    return report
