"""Scheduler-overhead benchmark runner → ``BENCH_scheduler.json``.

``python -m repro.experiments bench`` (or ``make bench``) runs the
``benchmarks/test_scheduler_overhead.py`` suite under pytest-benchmark and
distills the results into a small committed JSON file: the median cost of
one scheduling pass at queue depths 100 / 2 000 / 20 000 plus the index
micro-benches.  It also replays a seeded 2k-request workload once per
Datastore write mode and records the control plane's **write
amplification** — datastore writes and revisions per scheduling action,
revisions per 1k requests, and the batched path's revision-reduction
factor — so the transactional write path's win is tracked alongside pass
cost.

The ``end_to_end`` section replays the §V-A workload at 2k / 20k / 100k
requests through the full system (columnar build → bulk injection → run →
columnar summary), each in a fresh subprocess so the recorded peak RSS is
per-replay, and records requests/second plus the speedup over both the
retained per-request reference pipeline and the frozen pre-PR baseline.

The ``sweep_scaling`` section measures the sharded sweep orchestrator
(:mod:`repro.experiments.sweep`) on the fig-5 grid × 2 seeds (18 cells at
paper scale): grid wall-clock and cells/s at 1 / 2 / 4 workers, each in a
fresh subprocess with a cold store, plus a resume pass against the
4-worker store (every cell served from cache) and the SHA of the merged
figure payload at each worker count — identical hashes prove the sharded
and sequential grids produce byte-identical figure inputs.

The ``pass_elision`` section replays the same workloads with the
dirty-signal elision engine on and off: the elided-pass fraction proves
the guard layer engages on the paper's workload, and the per-action
times document what skipping provably no-op passes buys end to end.

The ``fault_replay`` section replays the 2k §V-A workload under the
chaos subsystem's ``recoverable`` profile twice (identical decision-log
SHAs prove seeded fault replay is deterministic) and once with faults
disabled, recording the availability counters — lost requests, retries,
faults injected, MTTR (see :mod:`repro.chaos` and ``docs/robustness.md``).

The ``streaming_replay`` section replays the same workload through the
streaming pipeline (chunked workload columns → incremental injection →
histogram-fold metrics → KV autocompaction) at 100k and 1M requests,
recording wall, req/s, and peak RSS per replay — the flat-memory tier
behind the ROADMAP's "millions of users" item.

The ``commit_path`` section replays the §V-A workload at 2k / 20k / 100k
under the bounded-retention control-plane config (MVCC autocompaction +
``latency_log_keep``) with the ephemeral-key tier off (every key full
etcd semantics) and on (``EPHEMERAL_HOT_PREFIXES`` — the
status/finish-time/latency keys nothing ever replays), timing
``WriteBatch.flush`` + ``KVStore.compact`` in isolation: per-action
commit µs, history entries and event-log records per action, and the
tier's on/off commit-cost ratio at each size — the "commit-path residue"
trajectory.

The ``observability`` section replays the 2k §V-A workload with the
flight recorder (``SystemConfig(tracer="flight")``) off and on —
interleaved pairs inside one child, each run on a freshly built
workload, ratio taken as **sum(on) / sum(off)** across the pairs (the
ratio-of-sums estimator: per-pair ratios at this run length are noise-
dominated, while summing first lets drift and scheduling jitter, which
hit both interleaved arms alike, divide out) — validates the exported
Chrome trace against the trace-event schema, and SHA-compares both
arms' rank-normalized decision logs from dedicated untimed runs:
tracing may cost at most 5% and must change nothing but the wall
clock (see ``docs/observability.md``).

The ``calibration`` section times a fixed pure-Python spin (best of 3,
fresh subprocess) on the recording machine.  Every wall-clock gate in
``check_bench`` is a *ratio* against this same-report number, so the
gates transfer across container speeds — the earlier absolute 2k gate
(``run_s ≤ 0.111 s``) simply failed on any slower machine.

``check_bench`` (``make bench-check``) gates the committed trajectory: the
20k/2k pass-cost ratio must stay under 3× (the index fast path's
sublinearity), the batched path must stay at ~1 revision per scheduling
action, the ephemeral-key tier must cut per-action commit cost by ≥20%
at 2k (and actually shed history entries — the fast lane must engage),
≥30% of scheduling passes must be elided on the 2k §V-A replay
and elision must not *lose* at 100k (on ≤ 1.1× off per action, both arms
best-of-2), the 2k replay's ``run_s`` and every size's req/s must hold
their calibration-relative budgets, the 1M streaming replay's peak RSS
must stay within 1.5× the 100k point with 100k streaming throughput at
≥0.85× batch, the recoverable-fault replay must complete every request
(zero lost, bounded retries, deterministic decision log) while the
faults-disabled replay holds its calibration-relative floor, the sweep's
merged payloads must hash identically across worker counts, a resume of
a completed sweep must finish from cache in under a second, and — when
the recording machine has the cores to parallelize (≥2) — the 4-worker
grid must be ≥1.5× faster than sequential.  Each PR re-runs it, so the
repository carries a perf trajectory instead of anecdotes.
"""

from __future__ import annotations

import json
import os
import random
import re
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = [
    "run_bench",
    "check_bench",
    "seeded_workload",
    "measure_machine_speed",
    "measure_commit_path",
    "measure_end_to_end",
    "measure_fault_replay",
    "measure_observability",
    "measure_pass_elision",
    "measure_streaming_replay",
    "measure_sweep_scaling",
    "DEFAULT_OUTPUT",
]

#: frozen seed/size for the write-amplification replay: counts are exact
#: (deterministic), not timings, so one run suffices
_WRITE_AMP_SEED = 20230731
_WRITE_AMP_REQUESTS = 2000


def _run_child(root: Path, code: str, *args, label: str = "bench child") -> dict:
    """Run a ``python -c`` child with src on PYTHONPATH; parse its JSON line."""
    env = dict(os.environ)
    src = str(root / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, *(str(a) for a in args)],
        cwd=root, env=env, capture_output=True, text=True, timeout=900,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"{label} failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Machine-speed calibration
# ----------------------------------------------------------------------
# child-process body: a fixed pure-Python spin (dict stores, integer
# arithmetic, heap churn — the sim's instruction mix) timed best-of-3.
# Wall-clock gates in check_bench are expressed as ratios against this
# same-machine, same-report number, so they hold on any container speed
# instead of silently assuming the machine that froze the absolute value.
_CALIBRATION_CHILD_CODE = """
import heapq, json, time

def spin():
    t0 = time.perf_counter()
    table = {}
    heap = []
    acc = 0
    for i in range(300_000):
        table[i & 1023] = i
        acc += i ^ (i >> 3)
        heapq.heappush(heap, (-(i & 4095), i))
        if len(heap) > 512:
            heapq.heappop(heap)
    acc += sum(table.values()) + heap[0][1]
    return time.perf_counter() - t0

runs = [spin() for _ in range(3)]
print(json.dumps({"runs": [round(r, 4) for r in runs],
                  "spin_s": round(min(runs), 4)}))
"""


def measure_machine_speed(root: Path | None = None) -> dict:
    """Time the fixed calibration spin in a fresh subprocess (best-of-3).

    ``spin_s`` is the unit every wall-clock gate is measured in: a machine
    half as fast doubles both the spin and the replay, leaving the ratios
    — and therefore the gates — unchanged.
    """
    root = root or _repo_root()
    cell = _run_child(root, _CALIBRATION_CHILD_CODE, label="calibration spin")
    cell["workload"] = "300k-iteration dict/heap/int spin, best of 3"
    return cell


def seeded_workload(
    seed: int, n_requests: int, n_functions: int = 30
) -> list[tuple[int, float]]:
    """Seeded arrival trace: (function index, arrival time) tuples.

    Bursty arrivals with Pareto-skewed popularity, deep enough queues to
    exercise hits, misses, evictions, local queues, and the O3 starvation
    guard.  Shared by the write-amplification bench and the write-path
    parity tests so both measure the *same* workload.
    """
    rng = random.Random(seed)
    spec = []
    t = 0.0
    for _ in range(n_requests):
        t += rng.expovariate(2.0) if rng.random() < 0.05 else rng.expovariate(1 / 0.035)
        spec.append((min(int(rng.paretovariate(0.9)) - 1, n_functions - 1), t))
    return spec


def _write_amp_mode(batched: bool) -> dict:
    """Replay the seeded workload and count datastore writes/revisions."""
    from ..cluster import ClusterSpec
    from ..core.request import InferenceRequest
    from ..models import ModelInstance, get_profile, model_names
    from ..runtime import FaaSCluster, SystemConfig

    names = model_names()
    spec = seeded_workload(_WRITE_AMP_SEED, _WRITE_AMP_REQUESTS)
    system = FaaSCluster(
        SystemConfig(
            cluster=ClusterSpec.homogeneous(2, 4),
            policy="lalbo3",
            datastore_batching=batched,
        )
    )
    instances = [
        ModelInstance(f"m{i}", get_profile(names[i % len(names)])) for i in range(30)
    ]
    for fn, at in spec:
        system.submit_at(InferenceRequest(f"fn{fn}", instances[fn], arrival_time=at))
    system.run()

    ds = system.datastore
    actions = len(system.scheduler.decisions)
    return {
        "requests": _WRITE_AMP_REQUESTS,
        "scheduling_actions": actions,
        "logical_writes": ds.stats.logical_writes,
        "revisions": ds.kv.revision,
        "flushes": ds.stats.flushes,
        "committed_keys": ds.stats.committed_keys,
        "coalesced_writes": ds.stats.coalesced_writes,
        "writes_per_scheduling_action": round(ds.stats.logical_writes / actions, 3),
        "revisions_per_scheduling_action": round(ds.kv.revision / actions, 3),
        "revisions_per_1k_requests": round(
            ds.kv.revision / _WRITE_AMP_REQUESTS * 1000, 1
        ),
    }


def measure_write_amplification() -> dict:
    """Batched vs. literal write path on the same seeded workload."""
    unbatched = _write_amp_mode(batched=False)
    batched = _write_amp_mode(batched=True)
    return {
        "workload_seed": _WRITE_AMP_SEED,
        "unbatched": unbatched,
        "batched": batched,
        "revision_reduction_factor": round(
            unbatched["revisions"] / max(batched["revisions"], 1), 2
        ),
    }

#: pre-PR end-to-end wall times (seconds) for the §V-A replay at each size,
#: measured at commit 32f5d42 (per-request workload build + per-request
#: arrival scheduling + object-scan metrics) on the same class of machine
#: the committed trajectory numbers come from.  The recorded speedups are
#: informational context only — every *gate* is calibration-relative.
_PRE_PR_E2E_BASELINE_S = {2000: 0.330, 20000: 3.677, 100000: 16.088}
_E2E_SIZES = (2000, 20000, 100000)

# child-process body: one full replay, peak RSS measured in isolation
_E2E_CHILD_CODE = """
import json, resource, sys, time
n = int(sys.argv[1]); reference = sys.argv[2] == "reference"
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import (
    WorkloadSpec, build_workload, build_workload_reference,
)
from repro.runtime import FaaSCluster, SystemConfig
from repro.metrics.summary import summarize

minutes = max(1, round(n / 325))
spec = WorkloadSpec(working_set=15, minutes=minutes)
trace = SyntheticAzureTrace()
t0 = time.perf_counter()
if reference:
    workload = build_workload_reference(spec, trace=trace)
else:
    workload = build_workload(spec, trace=trace)
build_s = time.perf_counter() - t0
system = FaaSCluster(SystemConfig())
t1 = time.perf_counter()
if reference:
    for request in workload.requests:
        system.submit_at(request)
else:
    system.submit_workload(workload)
system.run()
run_s = time.perf_counter() - t1
t2 = time.perf_counter()
summary = summarize(system.metrics, system.cluster, top_model=workload.top_model_id)
summarize_s = time.perf_counter() - t2
total = time.perf_counter() - t0
print(json.dumps({
    "requests": len(workload),
    "completed": summary.completed_requests,
    "build_s": round(build_s, 4),
    "run_s": round(run_s, 4),
    "summarize_s": round(summarize_s, 4),
    "total_s": round(total, 4),
    "requests_per_sec": round(len(workload) / total, 1),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    ),
}))
"""


def _e2e_replay(root: Path, n_requests: int, *, reference: bool = False) -> dict:
    """Run one end-to-end replay in a fresh subprocess and parse its JSON."""
    return _run_child(
        root, _E2E_CHILD_CODE, n_requests,
        "reference" if reference else "columnar", label="end-to-end replay",
    )


def measure_end_to_end(root: Path | None = None) -> dict:
    """§V-A replays at 2k/20k/100k requests: wall time, req/s, peak RSS.

    The 2k cell is also replayed through the retained reference pipeline
    (per-request build + per-request arrival scheduling) so the columnar
    pipeline's win is measured inside one commit, not only against the
    frozen pre-PR baseline.
    """
    root = root or _repo_root()
    sizes = {}
    for n in _E2E_SIZES:
        cell = _e2e_replay(root, n)
        baseline = _PRE_PR_E2E_BASELINE_S.get(n)
        if baseline is not None:
            cell["pre_pr_baseline_s"] = baseline
            cell["speedup_vs_pre_pr"] = round(baseline / cell["total_s"], 2)
        sizes[str(n)] = cell
    reference_2k = _e2e_replay(root, 2000, reference=True)
    sizes["2000"]["reference_pipeline_s"] = reference_2k["total_s"]
    sizes["2000"]["speedup_vs_reference_pipeline"] = round(
        reference_2k["total_s"] / sizes["2000"]["total_s"], 2
    )
    return {
        "workload": "§V-A working-set-15, 325 req/min, paper testbed",
        "baseline_commit": "32f5d42",
        "sizes": sizes,
    }


# ----------------------------------------------------------------------
# Sweep-orchestrator scaling
# ----------------------------------------------------------------------
#: worker counts measured for the sweep-scaling trajectory
_SWEEP_WORKER_COUNTS = (1, 2, 4)

# child-process body: one full fig-5-grid sweep (× 2 seeds, paper scale),
# cold caches per measurement; prints the stats plus a hash of the merged
# figure payload so the parent can verify byte-identity across shardings
_SWEEP_CHILD_CODE = """
import hashlib, json, sys, time
workers = int(sys.argv[1]); store = sys.argv[2]
from repro.experiments.sweep import SweepSpec, run_sweep
spec = SweepSpec(seeds=(0, 1))
t0 = time.perf_counter()
result = run_sweep(spec, workers=workers, store=store, progress=False)
wall = time.perf_counter() - t0
stats = result.stats.as_dict()
stats["wall_s"] = round(wall, 4)
stats["cells_per_s"] = round(stats["total"] / wall, 2)
stats["merged_sha"] = hashlib.sha256(result.merged_json().encode()).hexdigest()[:16]
print(json.dumps(stats))
"""


def _sweep_child(root: Path, workers: int, store: Path) -> dict:
    return _run_child(
        root, _SWEEP_CHILD_CODE, workers, store, label="sweep scaling run"
    )


def measure_sweep_scaling(root: Path | None = None) -> dict:
    """Fig-5 grid (× 2 seeds) through the sweep orchestrator at 1/2/4
    workers, plus a resume pass served entirely from the result store."""
    root = root or _repo_root()
    by_workers: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="sweep-bench-") as tmp:
        tmp_path = Path(tmp)
        for n in _SWEEP_WORKER_COUNTS:
            by_workers[str(n)] = _sweep_child(root, n, tmp_path / f"store-{n}w")
        # resume against the last store: every cell is a cache hit
        resume = _sweep_child(
            root, _SWEEP_WORKER_COUNTS[-1], tmp_path / f"store-{_SWEEP_WORKER_COUNTS[-1]}w"
        )
    shas = {cell["merged_sha"] for cell in by_workers.values()} | {resume["merged_sha"]}
    wall_1 = by_workers["1"]["wall_s"]
    wall_4 = by_workers[str(_SWEEP_WORKER_COUNTS[-1])]["wall_s"]
    return {
        "grid": "fig5: (lb, lalb, lalbo3) x WS (15, 25, 35) x seeds (0, 1), paper scale",
        "cells": by_workers["1"]["total"],
        #: parallel speedup is bounded by the recording machine's cores;
        #: check_bench reads this to decide whether the 1.5x gate applies
        "cpu_count": os.cpu_count(),
        "workers": by_workers,
        "speedup_4w": round(wall_1 / wall_4, 2) if wall_4 else 0.0,
        "merged_payload_identical": len(shas) == 1,
        "resume": {
            "wall_s": resume["wall_s"],
            "cache_hits": resume["cache_hits"],
            "executed": resume["executed"],
        },
    }


# ----------------------------------------------------------------------
# Fault-replay availability (chaos subsystem, docs/robustness.md)
# ----------------------------------------------------------------------
# child-process body: one 2k §V-A replay under a named fault profile,
# reporting availability counters plus a SHA of the full decision log so
# the parent can prove replay determinism by running it twice
_FAULT_CHILD_CODE = """
import hashlib, json, sys, time
profile = sys.argv[1]
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload
from repro.runtime import FaaSCluster, SystemConfig
minutes = max(1, round(2000 / 325))
workload = build_workload(WorkloadSpec(working_set=15, minutes=minutes),
                          trace=SyntheticAzureTrace())
system = FaaSCluster(SystemConfig(fault_profile=profile))
t0 = time.perf_counter()
system.submit_workload(workload)
system.run()
run_s = time.perf_counter() - t0
m = system.metrics
decisions = "\\n".join(
    f"{d.time_s!r}|{d.kind.value}|{d.request_id}|{d.model_id}|{d.gpu_id}|{d.visits}"
    for d in system.scheduler.decisions
)
max_retries = max(
    (r.retries for r in list(m.completed) + list(m.lost)), default=0
)
print(json.dumps({
    "requests": len(workload),
    "completed": len(m.completed),
    "lost": m.lost_count,
    "retries_total": m.retries_total,
    "max_retries_per_request": max_retries,
    "faults_injected": m.faults_injected,
    "repairs": len(m.repairs),
    "mean_mttr_s": round(m.mean_mttr(), 4),
    "run_s": round(run_s, 4),
    "requests_per_sec": round(len(workload) / run_s, 1),
    "decision_sha": hashlib.sha256(decisions.encode()).hexdigest()[:16],
}))
"""


def _fault_replay(root: Path, profile: str) -> dict:
    return _run_child(
        root, _FAULT_CHILD_CODE, profile, label=f"fault replay ({profile})"
    )


def measure_fault_replay(root: Path | None = None) -> dict:
    """2k §V-A replays under the chaos profiles (availability trajectory).

    The ``recoverable`` profile runs twice in separate processes; identical
    decision-log SHAs prove the seeded fault replay is deterministic.  The
    ``none`` profile replays the same workload through the identical code
    path with chaos disarmed, so ``check_bench`` can gate "faults off costs
    nothing" against the committed end-to-end trajectory.
    """
    root = root or _repo_root()
    recoverable = _fault_replay(root, "recoverable")
    rerun = _fault_replay(root, "recoverable")
    healthy = _fault_replay(root, "none")
    return {
        "workload": "§V-A working-set-15, 2k requests, paper testbed",
        "recoverable": recoverable,
        "replay_deterministic": recoverable["decision_sha"] == rerun["decision_sha"],
        "none": healthy,
    }


# ----------------------------------------------------------------------
# Pass-elision trajectory
# ----------------------------------------------------------------------
# child-process body: one §V-A replay with elision on or off, reporting
# wall time plus the engine's action/pass counters
_ELISION_CHILD_CODE = """
import json, sys, time
n = int(sys.argv[1]); elide = sys.argv[2] == "on"
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload
from repro.runtime import FaaSCluster, SystemConfig
minutes = max(1, round(n / 325))
workload = build_workload(WorkloadSpec(working_set=15, minutes=minutes),
                          trace=SyntheticAzureTrace())
system = FaaSCluster(SystemConfig(pass_elision=elide))
t0 = time.perf_counter()
system.submit_workload(workload)
system.run()
run_s = time.perf_counter() - t0
s = system.scheduler
print(json.dumps({
    "requests": len(workload),
    "run_s": round(run_s, 4),
    "actions": s.actions,
    "passes_executed": s.passes_executed,
    "passes_elided": s.passes_elided,
    "per_action_us": round(run_s / s.actions * 1e6, 2),
}))
"""


def _elision_replay(root: Path, n_requests: int, *, elide: bool) -> dict:
    return _run_child(
        root, _ELISION_CHILD_CODE, n_requests, "on" if elide else "off",
        label="elision replay",
    )


def measure_pass_elision(root: Path | None = None) -> dict:
    """§V-A replays with the elision engine on vs off at 2k/20k/100k.

    Records the elided-pass fraction (the signal that the guard layer
    actually engages on the paper's workload) and per-action wall time
    under each engine, each replay in a fresh subprocess.
    """
    root = root or _repo_root()
    sizes: dict[str, dict] = {}
    for n in _E2E_SIZES:
        on = _elision_replay(root, n, elide=True)
        off = _elision_replay(root, n, elide=False)
        if n == _E2E_SIZES[-1]:
            # the 100k point is a bench-check gate (elision must not
            # lose); take the faster of two runs per arm so single-core
            # scheduling jitter (±15% observed) doesn't decide it
            on2 = _elision_replay(root, n, elide=True)
            off2 = _elision_replay(root, n, elide=False)
            if on2["run_s"] < on["run_s"]:
                on = on2
            if off2["run_s"] < off["run_s"]:
                off = off2
        considered = on["passes_elided"] + on["passes_executed"]
        sizes[str(n)] = {
            "requests": on["requests"],
            "actions": on["actions"],
            "passes_executed": on["passes_executed"],
            "passes_elided": on["passes_elided"],
            "elided_fraction": round(on["passes_elided"] / considered, 4),
            "run_s_elision_on": on["run_s"],
            "run_s_elision_off": off["run_s"],
            "per_action_us_elision_on": on["per_action_us"],
            "per_action_us_elision_off": off["per_action_us"],
            # with elision off every considered pass executes
            "passes_executed_elision_off": off["passes_executed"],
        }
    return {
        "workload": "§V-A working-set-15, 325 req/min, paper testbed",
        "sizes": sizes,
    }


# ----------------------------------------------------------------------
# Commit-path (ephemeral-key tier) trajectory
# ----------------------------------------------------------------------
#: retention window for the commit-path replays: tight enough that MVCC
#: autocompaction and the ``latency_log_keep`` sliding window — the
#: retention work the ephemeral tier makes near-free — engage even at the
#: 2k gate point (the §V-A control plane never reads history this deep)
_COMMIT_PATH_KEEP = 500

# child-process body: ``reps`` interleaved §V-A replay pairs (tier off,
# tier on, off, on, …) under the bounded-retention control-plane config
# (autocompaction + latency window at _COMMIT_PATH_KEEP), timing the
# batched write path's WriteBatch.flush *and* KVStore.compact in
# isolation (perf_counter wrappers installed on the classes before any
# system exists) — the commit-plus-retention cost is measured directly
# rather than inferred from the end-to-end delta.  Both arms run inside
# ONE child, interleaved, because the gated on/off ratio is tiny in
# absolute terms (~10 ms of measured commit time per 2k replay): machine
# drift between two separate children is larger than the effect, while
# interleaved arms see the same conditions and the drift divides out of
# the ratio.  One build_workload serves every replay (columnar injection
# mints request objects per submit; each rep gets a fresh FaaSCluster).
_COMMIT_PATH_CHILD_CODE = """
import gc, json, sys, time
n = int(sys.argv[1]); keep = int(sys.argv[2]); reps = int(sys.argv[3])
import repro.datastore.batch as batch_mod
import repro.datastore.kv as kv_mod
_orig_flush = batch_mod.WriteBatch.flush
_orig_compact = kv_mod.KVStore.compact
_acc = {"on": [0.0, 0], "off": [0.0, 0]}
_cur = _acc["off"]
def _timed_flush(self):
    t0 = time.perf_counter()
    result = _orig_flush(self)
    a = _cur
    a[0] += time.perf_counter() - t0
    a[1] += 1
    return result
def _timed_compact(self, revision):
    t0 = time.perf_counter()
    result = _orig_compact(self, revision)
    _cur[0] += time.perf_counter() - t0
    return result
batch_mod.WriteBatch.flush = _timed_flush
kv_mod.KVStore.compact = _timed_compact
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload
from repro.runtime import EPHEMERAL_HOT_PREFIXES, FaaSCluster, SystemConfig
minutes = max(1, round(n / 325))
workload = build_workload(WorkloadSpec(working_set=15, minutes=minutes),
                          trace=SyntheticAzureTrace())
configs = {
    "off": SystemConfig(kv_autocompact_keep=keep, latency_log_keep=keep),
    "on": SystemConfig(ephemeral_prefixes=EPHEMERAL_HOT_PREFIXES,
                       kv_autocompact_keep=keep, latency_log_keep=keep),
}
run_s = {"on": 0.0, "off": 0.0}
systems = {}
for rep in range(reps):
    # alternate which arm goes first and collect garbage before each
    # replay: both arms then start from the same heap state, so cyclic-gc
    # pauses triggered by the PREVIOUS replay's garbage never land inside
    # the other arm's timed windows (gc triggered by an arm's own
    # allocation pressure still charges that arm — that cost is real)
    order = ("on", "off") if rep % 2 else ("off", "on")
    for arm in order:
        gc.collect()
        _cur = _acc[arm]
        system = FaaSCluster(configs[arm])
        t0 = time.perf_counter()
        system.submit_workload(workload)
        system.run()
        run_s[arm] += time.perf_counter() - t0
        systems[arm] = system
result = {"requests": len(workload), "reps": reps,
          "actions": len(systems["off"].scheduler.decisions)}
for arm in ("off", "on"):
    kv = systems[arm].datastore.kv
    actions = len(systems[arm].scheduler.decisions)
    result.update({
        "run_s_" + arm: round(run_s[arm] / reps, 4),
        "commit_s_" + arm: round(_acc[arm][0], 4),
        "flushes_" + arm: _acc[arm][1],
        "commit_us_per_action_" + arm:
            round(_acc[arm][0] / (actions * reps) * 1e6, 2),
        "history_entries_" + arm: kv.history_entry_count(),
        "history_entries_per_action_" + arm:
            round(kv.history_entry_count() / actions, 3),
        "event_log_records_" + arm: len(kv._event_revs),
    })
result["ephemeral_writes_on"] = systems["on"].datastore.kv.ephemeral_writes
result["commit_on_vs_off"] = round(
    result["commit_us_per_action_on"] / result["commit_us_per_action_off"], 3)
print(json.dumps(result))
"""

#: replay pairs aggregated per child at the gated 2k point (larger sizes
#: have enough measured time per replay that one pair suffices)
_COMMIT_PATH_GATE_REPS = 5


def _commit_path_replay(root: Path, n_requests: int, *, reps: int = 1) -> dict:
    return _run_child(
        root, _COMMIT_PATH_CHILD_CODE, n_requests, _COMMIT_PATH_KEEP, reps,
        label="commit-path replay",
    )


def measure_commit_path(root: Path | None = None) -> dict:
    """§V-A replays with the ephemeral-key tier on vs off at 2k/20k/100k.

    Both arms run the bounded-retention control-plane config (MVCC
    autocompaction + ``latency_log_keep`` at :data:`_COMMIT_PATH_KEEP`) —
    the configuration the tier targets, where the status keys' history
    is not just written but continuously compacted away again.  Times
    ``WriteBatch.flush`` + ``KVStore.compact`` in isolation per replay,
    so the recorded per-action cost is the commit-plus-retention path
    itself — history columns, event-log appends, tombstones, compaction
    walks — not the surrounding scheduling work.  The 2k on/off ratio is
    a ``check_bench`` gate (the tier must actually cut commit cost), and
    the measured commit time at 2k is only ~10 ms per replay, so the
    gate point is defended twice over: each child interleaves
    :data:`_COMMIT_PATH_GATE_REPS` off/on replay *pairs* (machine drift
    hits both arms equally and divides out of the ratio), and the point
    runs best-of-2 children keyed on total measured commit time.  The
    structural counters (history entries, event-log records, ephemeral
    writes) are deterministic.
    """
    from ..runtime import EPHEMERAL_HOT_PREFIXES

    root = root or _repo_root()
    sizes: dict[str, dict] = {}
    for n in _E2E_SIZES:
        reps = _COMMIT_PATH_GATE_REPS if n == _E2E_SIZES[0] else 1
        point = _commit_path_replay(root, n, reps=reps)
        if n == _E2E_SIZES[0]:
            # best-of-2 children, picked by total measured commit time:
            # the quieter child saw less interference on BOTH arms
            again = _commit_path_replay(root, n, reps=reps)
            if (again["commit_s_on"] + again["commit_s_off"]
                    < point["commit_s_on"] + point["commit_s_off"]):
                point = again
        sizes[str(n)] = {
            key: point[key]
            for key in (
                "requests", "reps", "actions",
                "commit_us_per_action_off", "commit_us_per_action_on",
                "commit_on_vs_off",
                "history_entries_off", "history_entries_on",
                "history_entries_per_action_off",
                "history_entries_per_action_on",
                "event_log_records_off", "event_log_records_on",
                "ephemeral_writes_on", "run_s_off", "run_s_on",
            )
        }
    return {
        "workload": "§V-A working-set-15, 325 req/min, paper testbed, "
                    "bounded retention (autocompact + latency window "
                    f"keep={_COMMIT_PATH_KEEP})",
        "ephemeral_prefixes": list(EPHEMERAL_HOT_PREFIXES),
        "retention_keep": _COMMIT_PATH_KEEP,
        "sizes": sizes,
    }


# ----------------------------------------------------------------------
# Streaming (flat-RSS) replay trajectory
# ----------------------------------------------------------------------
#: sizes for the streaming tier; the 1M point is the flat-memory proof
_STREAMING_SIZES = (100_000, 1_000_000)

# child-process body: one §V-A streaming replay — chunked workload,
# incremental injection, histogram metrics, KV autocompaction — with
# peak RSS measured in isolation
_STREAMING_CHILD_CODE = """
import json, resource, sys, time
n = int(sys.argv[1])
from repro.traces.workload import WorkloadSpec
from repro.experiments.replay import replay_streaming
minutes = max(1, round(n / 325))
spec = WorkloadSpec(working_set=15, minutes=minutes)
t0 = time.perf_counter()
summary, system = replay_streaming(spec)
total = time.perf_counter() - t0
kv = system.datastore.kv
print(json.dumps({
    "requests": summary.completed_requests,
    "total_s": round(total, 4),
    "requests_per_sec": round(summary.completed_requests / total, 1),
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
    ),
    "avg_latency_s": round(summary.avg_latency_s, 4),
    "p99_latency_s": round(summary.p99_latency_s, 4),
    "cache_miss_ratio": round(summary.cache_miss_ratio, 4),
    "kv_revision": kv.revision,
    "kv_compacted_revision": kv.compacted_revision,
}))
"""


def measure_streaming_replay(root: Path | None = None) -> dict:
    """§V-A streaming replays at 100k and 1M requests: the flat-RSS tier.

    Each replay runs in a fresh subprocess so its peak RSS is its own.
    The recorded ``rss_1m_vs_100k`` ratio is the flat-memory proof the
    ROADMAP asks for — batch replay grows RSS linearly with request
    count; the streaming pipeline must hold it within 1.5× across a 10×
    size step (gated by ``check_bench``).
    """
    root = root or _repo_root()
    sizes = {
        str(n): _run_child(
            root, _STREAMING_CHILD_CODE, n, label="streaming replay"
        )
        for n in _STREAMING_SIZES
    }
    rss_small = sizes[str(_STREAMING_SIZES[0])]["peak_rss_mb"]
    rss_large = sizes[str(_STREAMING_SIZES[-1])]["peak_rss_mb"]
    return {
        "workload": "§V-A working-set-15, 325 req/min, paper testbed, "
                    "streaming pipeline (chunked columns + histogram metrics "
                    "+ KV autocompaction)",
        "sizes": sizes,
        "rss_1m_vs_100k": round(rss_large / rss_small, 3),
    }


# ----------------------------------------------------------------------
# Observability (flight-recorder) overhead
# ----------------------------------------------------------------------
#: interleaved off/on replay pairs per observability child
_OBS_GATE_REPS = 12

# child-process body: ``reps`` interleaved §V-A replay pairs with the
# flight recorder off and on.  Both arms run inside ONE child on
# freshly built workloads (reusing one workload's request objects
# across runs lets lifecycle state leak between arms — and the flight
# recorder's request ring holds *references*, so the exported trace
# must come from a run whose requests were never resubmitted).  The
# gated ratio is **sum(on) / sum(off)**: per-pair ratios at ~0.15 s
# run length are noise-dominated on shared machines, while the sums
# of interleaved arms see the same drift and divide it out (an A/A
# control of this estimator reads 1.00 within half a percent where
# per-pair medians wander by several).  Trace export/validation and
# the rank-normalized decision-log SHA comparison (request ids are
# process-global) run on dedicated untimed runs at the end — the
# report carries the proof that tracing changes nothing but the wall
# clock.
_OBS_CHILD_CODE = """
import gc, hashlib, json, sys, time
n = int(sys.argv[1]); reps = int(sys.argv[2])
from repro.traces.azure import SyntheticAzureTrace
from repro.traces.workload import WorkloadSpec, build_workload
from repro.runtime import FaaSCluster, SystemConfig
from repro.obs.export import chrome_trace_events, validate_chrome_trace
minutes = max(1, round(n / 325))
spec = WorkloadSpec(working_set=15, minutes=minutes)
def fresh():
    return build_workload(spec, trace=SyntheticAzureTrace())
configs = {"off": SystemConfig(), "on": SystemConfig(tracer="flight")}
def one(arm, workload):
    system = FaaSCluster(configs[arm])
    gc.collect()
    t0 = time.perf_counter()
    system.submit_workload(workload)
    system.run()
    return time.perf_counter() - t0, system
n_requests = len(fresh())
for arm in ("off", "on"):  # warm caches/allocator before timing
    one(arm, fresh())
run_s = {"on": 0.0, "off": 0.0}
for rep in range(reps):
    order = ("on", "off") if rep % 2 else ("off", "on")
    for arm in order:
        dt, _ = one(arm, fresh())
        run_s[arm] += dt
def decision_sha(system):
    decisions = system.scheduler.decisions
    ids = sorted({d.request_id for d in decisions})
    rank = {rid: i for i, rid in enumerate(ids)}
    h = hashlib.sha256()
    for d in decisions:
        h.update(repr((d.time_s, d.kind.value, rank[d.request_id],
                       d.model_id, d.gpu_id, d.visits)).encode())
    return h.hexdigest()
_, system_off = one("off", fresh())
_, system_on = one("on", fresh())
recorder = system_on.tracer
events = chrome_trace_events(recorder)
errors = validate_chrome_trace({"traceEvents": events})
print(json.dumps({
    "requests": n_requests, "reps": reps,
    "run_s_off": round(run_s["off"] / reps, 4),
    "run_s_on": round(run_s["on"] / reps, 4),
    "requests_per_sec_off": round(n_requests * reps / run_s["off"], 1),
    "tracer_on_vs_off": round(run_s["on"] / run_s["off"], 3),
    "span_stride": configs["on"].trace_span_stride,
    "trace_events": len(events),
    "trace_valid": not errors,
    "trace_validation_errors": errors[:5],
    "trace_records": recorder.totals,
    "trace_dropped": sum(recorder.dropped.values()),
    "decisions_identical":
        decision_sha(system_off) == decision_sha(system_on),
}))
"""


def measure_observability(root: Path | None = None) -> dict:
    """§V-A 2k replays with the flight recorder off vs on.

    The tracer-on cost is the observability tentpole's budget: the
    recorded ``tracer_on_vs_off`` (ratio of summed interleaved arms,
    best-of-2 children keyed on total measured time) is gated at
    ≤ :data:`_MAX_TRACER_ON_VS_OFF` by ``check_bench``, the off arm's
    throughput holds the same calibration-relative floor as the e2e 2k
    replay (tracer *off* must cost nothing — it is one ``None`` test per
    hook), the exported trace must validate against the Chrome
    trace-event schema, and both arms' rank-normalized decision logs
    must hash identically.
    """
    root = root or _repo_root()
    point = _run_child(
        root, _OBS_CHILD_CODE, 2000, _OBS_GATE_REPS, label="observability replay"
    )
    again = _run_child(
        root, _OBS_CHILD_CODE, 2000, _OBS_GATE_REPS, label="observability replay"
    )
    if again["run_s_on"] + again["run_s_off"] < point["run_s_on"] + point["run_s_off"]:
        point = again
    return {
        "workload": "§V-A working-set-15, 325 req/min, paper testbed, "
                    "flight recorder off vs on (interleaved pairs)",
        **point,
    }


DEFAULT_OUTPUT = "BENCH_scheduler.json"
_SUITE = Path("benchmarks") / "test_scheduler_overhead.py"
#: end-to-end fig4 runs ride along so the trajectory also tracks whole-
#: experiment wall time, not only the scheduling micro-benches
_EXTRA_SUITES = (
    Path("benchmarks") / "test_fig4_latency.py",
)


def _repo_root() -> Path:
    """The checkout root (where ``benchmarks/`` lives), else the cwd."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / _SUITE).exists():
        return candidate
    return Path.cwd()


def _git_revision(root: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_bench(output: str | None = None, *, verbose: bool = True) -> dict:
    """Run the scheduler-overhead suite and write the perf-trajectory JSON."""
    root = _repo_root()
    suite = root / _SUITE
    if not suite.exists():
        raise FileNotFoundError(f"benchmark suite not found: {suite}")
    suites = [str(suite)] + [str(root / s) for s in _EXTRA_SUITES if (root / s).exists()]
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        raw_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", *suites, "-q",
                f"--benchmark-json={raw_path}",
            ],
            cwd=root,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"benchmark suite failed (exit {proc.returncode})")
        raw = json.loads(raw_path.read_text())
    finally:
        raw_path.unlink(missing_ok=True)

    benchmarks = {}
    pass_cost_by_depth = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "rounds": stats["rounds"],
        }
        match = re.fullmatch(r"test_scheduling_scan_cost_at_depth\[(\d+)\]", bench["name"])
        if match:
            pass_cost_by_depth[match.group(1)] = stats["median"]

    report = {
        "suite": "scheduler_overhead",
        "commit": _git_revision(root),
        "machine": raw.get("machine_info", {}).get("cpu", {}).get("brand_raw"),
        "pass_cost_by_depth_s": dict(
            sorted(pass_cost_by_depth.items(), key=lambda kv: int(kv[0]))
        ),
        "calibration": measure_machine_speed(root),
        "write_amplification": measure_write_amplification(),
        "commit_path": measure_commit_path(root),
        "end_to_end": measure_end_to_end(root),
        "streaming_replay": measure_streaming_replay(root),
        "fault_replay": measure_fault_replay(root),
        "pass_elision": measure_pass_elision(root),
        "observability": measure_observability(root),
        "sweep_scaling": measure_sweep_scaling(root),
        "benchmarks": dict(sorted(benchmarks.items())),
    }
    out_path = root / (output or DEFAULT_OUTPUT)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    if verbose:
        print(f"wrote {out_path}")
        for depth, median in report["pass_cost_by_depth_s"].items():
            print(f"  pass cost @ depth {depth:>6}: {median * 1e6:8.1f} us")
        amp = report["write_amplification"]
        print(
            "  datastore revisions/action: "
            f"{amp['unbatched']['revisions_per_scheduling_action']} unbatched -> "
            f"{amp['batched']['revisions_per_scheduling_action']} batched "
            f"({amp['revision_reduction_factor']}x fewer)"
        )
        print(f"  calibration spin: {report['calibration']['spin_s']:.4f} s (best of 3)")
        for n, cell in report["commit_path"]["sizes"].items():
            print(
                f"  commit path {int(n):>7,} req: "
                f"{cell['commit_us_per_action_off']:6.1f} -> "
                f"{cell['commit_us_per_action_on']:6.1f} us/action "
                f"({cell['commit_on_vs_off']}x); history/action "
                f"{cell['history_entries_per_action_off']} -> "
                f"{cell['history_entries_per_action_on']}"
            )
        for n, cell in report["end_to_end"]["sizes"].items():
            extra = ""
            if "speedup_vs_pre_pr" in cell:
                extra = f"  ({cell['speedup_vs_pre_pr']}x vs pre-PR)"
            print(
                f"  e2e replay {int(n):>7,} req: {cell['total_s']:7.3f} s  "
                f"{cell['requests_per_sec']:>9,.0f} req/s  "
                f"rss {cell['peak_rss_mb']:6.1f} MB{extra}"
            )
        streaming = report["streaming_replay"]
        for n, cell in streaming["sizes"].items():
            print(
                f"  streaming   {int(n):>9,} req: {cell['total_s']:7.3f} s  "
                f"{cell['requests_per_sec']:>9,.0f} req/s  "
                f"rss {cell['peak_rss_mb']:6.1f} MB"
            )
        print(f"  streaming rss 1M / 100k: {streaming['rss_1m_vs_100k']}x")
        fr = report["fault_replay"]
        rec = fr["recoverable"]
        print(
            f"  fault replay (recoverable): {rec['completed']}/{rec['requests']} "
            f"completed, {rec['lost']} lost, {rec['retries_total']} retries, "
            f"{rec['faults_injected']} faults, mttr {rec['mean_mttr_s']:.2f} s, "
            f"deterministic: {fr['replay_deterministic']}"
        )
        for n, cell in report["pass_elision"]["sizes"].items():
            print(
                f"  pass elision {int(n):>7,} req: "
                f"{cell['elided_fraction'] * 100:5.1f}% elided  "
                f"{cell['per_action_us_elision_off']:6.1f} -> "
                f"{cell['per_action_us_elision_on']:6.1f} us/action"
            )
        obs = report["observability"]
        print(
            f"  observability 2k replay: {obs['run_s_off']:.4f} -> "
            f"{obs['run_s_on']:.4f} s ({obs['tracer_on_vs_off']}x on/off, "
            f"median of {obs['reps']} pairs); {obs['trace_events']} trace "
            f"events, valid: {obs['trace_valid']}, decisions identical: "
            f"{obs['decisions_identical']}"
        )
        sweep = report["sweep_scaling"]
        for n, cell in sweep["workers"].items():
            print(
                f"  sweep {sweep['cells']} cells @ {n} worker(s): "
                f"{cell['wall_s']:7.3f} s  {cell['cells_per_s']:5.2f} cells/s"
            )
        print(
            f"  sweep speedup @4w: {sweep['speedup_4w']}x "
            f"({sweep['cpu_count']} core(s)); resume from store: "
            f"{sweep['resume']['wall_s']:.3f} s, "
            f"{sweep['resume']['cache_hits']} cache hits; "
            f"merged payloads identical: {sweep['merged_payload_identical']}"
        )
    return report


#: per-subsystem rollup buckets for ``run_profile``: path fragment →
#: label, probed in order (first match wins).  tottime sums per bucket,
#: so the rollup answers "where does the run actually spend its time"
#: without reading 25 rows of per-function output.
_PROFILE_BUCKETS = (
    ("repro/datastore/", "commit path (datastore)"),
    ("repro/core/gpu_manager", "dispatch (gpu manager)"),
    ("repro/cluster/", "dispatch (devices)"),
    ("repro/core/scheduler", "scheduling pass"),
    ("repro/core/policies", "scheduling pass"),
    ("repro/core/queues", "scheduling pass"),
    # guard evaluation gets its own bucket (ROADMAP: "guard evaluation
    # under bursty dirty signals") — signals.py is exactly the PassGuard /
    # dirty-signal machinery, so its exclusive time answers that question
    # directly instead of vanishing into the generic pass bucket
    ("repro/core/signals", "policy guards (dirty signals)"),
    ("repro/core/estimator", "scheduling pass"),
    ("repro/core/tenancy", "scheduling pass"),
    ("repro/core/cache_manager", "cache manager"),
    ("repro/core/replacement", "cache manager"),
    ("repro/metrics/", "metrics"),
    ("repro/obs/", "observability (tracer)"),
    ("repro/sim/", "sim kernel"),
)


def _subsystem_rollup(stats) -> list[tuple[str, float, int]]:
    """Fold a ``pstats.Stats`` into (bucket, tottime, calls) rows.

    Buckets by filename against :data:`_PROFILE_BUCKETS`; everything else
    (stdlib, workload build leftovers, the profiler itself) lands in
    "other".  Uses tottime — exclusive time — so the rows sum to the run
    instead of double-counting callers.
    """
    totals: dict[str, list] = {}
    for (filename, _line, _name), (_cc, ncalls, tottime, _ct, _callers) in stats.stats.items():
        path = filename.replace("\\", "/")
        label = "other"
        for fragment, bucket in _PROFILE_BUCKETS:
            if fragment in path:
                label = bucket
                break
        row = totals.setdefault(label, [0.0, 0])
        row[0] += tottime
        row[1] += ncalls
    return sorted(
        ((label, t, calls) for label, (t, calls) in totals.items()),
        key=lambda row: -row[1],
    )


def run_profile(n_requests: int = 2000, top: int = 25) -> None:
    """cProfile the §V-A replay: top cumulative functions + subsystem rollup.

    ``make profile`` — the tool that found every hot spot so far (index
    scans, batched txns, columnar replay, pass elision, the commit-path
    residue); run it before hunting the next one.  After the per-function
    table it prints a per-subsystem rollup (commit vs dispatch vs
    scheduling pass vs metrics, exclusive time), so a PR can say "the
    commit path is now X% of the run" without hand-summing rows.
    """
    import cProfile
    import pstats

    from ..runtime import FaaSCluster, SystemConfig
    from ..traces.azure import SyntheticAzureTrace
    from ..traces.workload import WorkloadSpec, build_workload

    minutes = max(1, round(n_requests / 325))
    workload = build_workload(
        WorkloadSpec(working_set=15, minutes=minutes), trace=SyntheticAzureTrace()
    )
    system = FaaSCluster(SystemConfig())
    system.submit_workload(workload)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run()
    profiler.disable()
    print(
        f"§V-A replay, {len(workload)} requests, "
        f"{len(system.completed)} completed — top {top} by cumulative time:"
    )
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    rollup = _subsystem_rollup(stats)
    total = sum(t for _, t, _ in rollup) or 1.0
    print("per-subsystem rollup (exclusive time):")
    for label, tottime, calls in rollup:
        print(
            f"  {label:<26} {tottime:8.3f} s  {tottime / total * 100:5.1f}%  "
            f"{calls:>9,} calls"
        )


#: bench-check gates (ROADMAP "BENCH trajectory")
_MAX_DEPTH_RATIO = 3.0            # pass cost 20k-deep / 2k-deep
_REVISIONS_PER_ACTION = (0.8, 1.3)  # batched path must stay at ~1
_MIN_SWEEP_SPEEDUP_4W = 1.5       # grid speedup at 4 workers (needs >= 2 cores)
_MAX_SWEEP_RESUME_S = 1.0         # cache-hit resume of a completed sweep
_MIN_ELIDED_FRACTION = 0.30       # §V-A 2k replay: guard must engage
_MAX_FAULT_RETRIES = 8            # per-request retry bound under recoverable faults

# -- calibration-relative wall-clock gates ------------------------------
# Frozen from this PR's recording run with ~25-30% headroom.  Every
# wall-clock threshold is a ratio against the report's own same-machine
# calibration spin, so the gates hold on slower containers instead of
# silently failing there (the pre-PR absolute 2k gate of 0.111 s missed
# on any machine materially slower than the one that froze it).
#: 2k §V-A replay wall budget, in spin units: run_s ≤ this × spin_s
_MAX_2K_RUN_SPINS = 0.65
#: throughput floors, in requests per spin: req/s × spin_s ≥ these
_MIN_E2E_REQ_PER_SPIN = {"2000": 2400.0, "20000": 2400.0, "100000": 2300.0}
#: faults-disabled 2k replay floor (chaos hooks must cost ~nothing)
_MIN_FAULT_NONE_REQ_PER_SPIN = 2400.0

# -- streaming (flat-RSS) gates -----------------------------------------
#: 1M-request streaming replay peak RSS vs the 100k point (flat-memory
#: proof: a 10× size step may cost at most 1.5× the memory)
_MAX_1M_RSS_VS_100K = 1.5
#: streaming replay throughput at 100k vs the batch pipeline in the same
#: report (the flat-RSS mode must not give back the perf work; measured
#: ~0.7-0.8× here — histogram folds, latency-log deletes, and MVCC
#: compaction are real per-request work — with heavy 1-core variance)
_MIN_STREAMING_VS_BATCH_RPS = 0.55

#: 100k pass-elision gate: elision-on per-action time may exceed
#: elision-off by at most this factor (both arms best-of-2; the margin
#: absorbs residual single-core jitter — elision must not *lose*)
_MAX_ELISION_ON_VS_OFF_100K = 1.10

# -- commit-path (ephemeral-key tier) gates -----------------------------
#: 2k replay: per-action commit cost with the ephemeral tier on must be
#: at most this fraction of the tier-off cost (both arms best-of-2) —
#: the ISSUE's ≥20% commit-cost reduction, measured on the flush itself
_MAX_COMMIT_ON_VS_OFF_2K = 0.80

# -- observability (flight recorder) gates ------------------------------
#: 2k replay with the flight recorder on may cost at most this factor of
#: the tracer-off replay (median of interleaved pairs, best-of-2
#: children) — the tracing layer's whole-run budget.  The measured hook
#: cost is ~1.5 µs/request (~2%); the margin absorbs pair-ratio jitter.
_MAX_TRACER_ON_VS_OFF = 1.05
#: tracer-off throughput floor, in requests per spin — same floor as the
#: e2e 2k replay: an uninstalled tracer is one None test per hook and
#: must not shift the baseline
_MIN_OBS_OFF_REQ_PER_SPIN = 2400.0


def check_bench(path: str | None = None) -> list[str]:
    """Validate a committed ``BENCH_scheduler.json`` against the ROADMAP
    gates; returns the list of violations (empty = pass).

    * the scheduling pass must stay sublinear in queue depth: cost at
      depth 20 000 may be at most 3× the cost at depth 2 000;
    * the batched write path must stay at ~1 revision per scheduling
      action (0.8–1.3) — drift means some write stopped flowing through
      the shared batch;
    * the ephemeral-key tier must cut the 2k replay's per-action commit
      cost to ≤0.8× the tier-off cost (both arms best-of-2, flush timed
      in isolation) and must strictly reduce history entries — a ratio
      drifting toward 1.0 means the hot keys stopped matching the tier;
    * wall-clock gates (2k run budget, per-size throughput floors, the
      faults-disabled floor) are ratios against the report's own
      ``calibration.spin_s``, so they hold on any machine speed;
    * pass elision must engage (≥30% elided at 2k) and must not lose at
      100k (per-action on ≤ 1.1× off, both arms best-of-2);
    * the streaming tier must prove flat memory (1M peak RSS ≤ 1.5× the
      100k point) without giving back throughput (100k streaming vs batch
      in the same report, floor ``_MIN_STREAMING_VS_BATCH_RPS``);
    * the flight recorder must stay within its budget: tracer-on 2k
      replay ≤ 1.05× tracer-off (median of interleaved pairs), the
      exported trace must validate, both arms' decision logs must hash
      identically, and the tracer-off arm must hold the e2e throughput
      floor (an uninstalled tracer is one ``None`` test per hook);
    * the sweep orchestrator's merged figure payload must be byte-identical
      across worker counts, and resuming a completed sweep must be served
      entirely from the result store in under a second;
    * the 4-worker grid must run ≥1.5× faster than sequential — gated only
      when the machine that *recorded* the report had ≥2 cores, because
      parallel speedup on a single-core container is physically impossible
      (the recorded ``sweep_scaling.cpu_count`` documents which case the
      committed numbers are).
    """
    report_path = Path(path) if path else _repo_root() / DEFAULT_OUTPUT
    report = json.loads(report_path.read_text())
    problems: list[str] = []
    depths = report.get("pass_cost_by_depth_s", {})
    if "2000" in depths and "20000" in depths:
        ratio = depths["20000"] / depths["2000"]
        if ratio > _MAX_DEPTH_RATIO:
            problems.append(
                f"pass-cost depth scaling 20k/2k = {ratio:.2f}x "
                f"(limit {_MAX_DEPTH_RATIO}x)"
            )
    else:
        problems.append("pass_cost_by_depth_s is missing the 2000/20000 depths")
    batched = report.get("write_amplification", {}).get("batched", {})
    rpa = batched.get("revisions_per_scheduling_action")
    lo, hi = _REVISIONS_PER_ACTION
    if rpa is None:
        problems.append("write_amplification.batched.revisions_per_scheduling_action missing")
    elif not lo <= rpa <= hi:
        problems.append(
            f"batched revisions per scheduling action = {rpa} "
            f"(expected ~1, allowed [{lo}, {hi}])"
        )
    elision = report.get("pass_elision", {}).get("sizes", {})
    if not elision:
        problems.append("pass_elision section missing")
    else:
        cell_2k = elision.get("2000", {})
        fraction = cell_2k.get("elided_fraction", 0.0)
        if fraction < _MIN_ELIDED_FRACTION:
            problems.append(
                f"elided-pass fraction on the 2k §V-A replay = {fraction} "
                f"(gate ≥ {_MIN_ELIDED_FRACTION}: the guard layer must engage)"
            )
        cell_100k = elision.get("100000", {})
        on_us = cell_100k.get("per_action_us_elision_on")
        off_us = cell_100k.get("per_action_us_elision_off")
        if on_us is None or off_us is None:
            problems.append("pass_elision 100k per-action times missing")
        elif on_us > _MAX_ELISION_ON_VS_OFF_100K * off_us:
            problems.append(
                f"100k pass elision loses: {on_us} µs/action on vs {off_us} off "
                f"(gate ≤ {_MAX_ELISION_ON_VS_OFF_100K}× — elision must not lose)"
            )
    commit = report.get("commit_path", {}).get("sizes", {})
    if not commit:
        problems.append("commit_path section missing")
    else:
        cell_2k = commit.get("2000", {})
        ratio = cell_2k.get("commit_on_vs_off")
        if ratio is None:
            problems.append("commit_path 2k commit_on_vs_off missing")
        elif ratio > _MAX_COMMIT_ON_VS_OFF_2K:
            problems.append(
                f"2k commit cost with the ephemeral tier on is {ratio}× the "
                f"tier-off cost (gate ≤ {_MAX_COMMIT_ON_VS_OFF_2K}: the tier "
                "must cut per-action commit cost by ≥20%)"
            )
        hist_on = cell_2k.get("history_entries_on")
        hist_off = cell_2k.get("history_entries_off")
        if hist_on is None or hist_off is None:
            problems.append("commit_path 2k history_entries missing")
        elif hist_on >= hist_off:
            problems.append(
                f"ephemeral tier left history entries unchanged at 2k "
                f"({hist_on} on vs {hist_off} off): the fast lane never engaged"
            )
    spin_s = report.get("calibration", {}).get("spin_s")
    e2e = report.get("end_to_end", {}).get("sizes", {})
    if not spin_s:
        problems.append(
            "calibration.spin_s missing (wall-clock gates are ratios "
            "against the report's own machine-speed calibration)"
        )
    else:
        run_2k = e2e.get("2000", {}).get("run_s")
        budget = round(_MAX_2K_RUN_SPINS * spin_s, 4)
        if run_2k is None:
            problems.append("end_to_end 2k run_s missing")
        elif run_2k > budget:
            problems.append(
                f"2k §V-A replay run_s = {run_2k} s "
                f"(gate ≤ {budget} s = {_MAX_2K_RUN_SPINS}× the report's "
                f"{spin_s} s calibration spin)"
            )
        for size, floor in _MIN_E2E_REQ_PER_SPIN.items():
            rps = e2e.get(size, {}).get("requests_per_sec")
            if rps is None:
                problems.append(f"end_to_end {size} requests_per_sec missing")
            elif rps * spin_s < floor:
                problems.append(
                    f"{size}-request replay throughput {rps} req/s × "
                    f"{spin_s} s spin = {round(rps * spin_s, 1)} req/spin "
                    f"(floor {floor}: calibration-relative regression)"
                )
    streaming = report.get("streaming_replay", {}).get("sizes", {})
    if not streaming:
        problems.append("streaming_replay section missing")
    else:
        rss_100k = streaming.get("100000", {}).get("peak_rss_mb")
        rss_1m = streaming.get("1000000", {}).get("peak_rss_mb")
        if rss_100k is None or rss_1m is None:
            problems.append("streaming_replay peak_rss_mb missing at 100k/1M")
        elif rss_1m > _MAX_1M_RSS_VS_100K * rss_100k:
            problems.append(
                f"1M streaming replay peak RSS {rss_1m} MB exceeds "
                f"{_MAX_1M_RSS_VS_100K}× the 100k point ({rss_100k} MB): "
                "memory is no longer flat in request count"
            )
        s_rps = streaming.get("100000", {}).get("requests_per_sec")
        b_rps = e2e.get("100000", {}).get("requests_per_sec")
        if s_rps is None or b_rps is None:
            problems.append("streaming/batch 100k requests_per_sec missing")
        elif s_rps < _MIN_STREAMING_VS_BATCH_RPS * b_rps:
            problems.append(
                f"100k streaming replay {s_rps} req/s fell below "
                f"{_MIN_STREAMING_VS_BATCH_RPS}× the batch pipeline's "
                f"{b_rps} req/s in the same report"
            )
    fault = report.get("fault_replay")
    if not fault:
        problems.append("fault_replay section missing")
    else:
        rec = fault.get("recoverable", {})
        if rec.get("lost", 1) != 0:
            problems.append(
                f"recoverable-fault replay lost {rec.get('lost')} requests "
                "(the default plan must lose none)"
            )
        if rec.get("completed") != rec.get("requests"):
            problems.append(
                f"recoverable-fault replay completed {rec.get('completed')} of "
                f"{rec.get('requests')} requests"
            )
        if not rec.get("faults_injected"):
            problems.append(
                "recoverable-fault replay injected no faults "
                "(the chaos plan never armed)"
            )
        if rec.get("max_retries_per_request", 0) > _MAX_FAULT_RETRIES:
            problems.append(
                f"recoverable-fault replay retried one request "
                f"{rec.get('max_retries_per_request')} times "
                f"(gate ≤ {_MAX_FAULT_RETRIES}: retries must stay bounded)"
            )
        if not fault.get("replay_deterministic"):
            problems.append(
                "fault replay is not deterministic: two runs of the same "
                "plan+seed produced different decision logs"
            )
        none_rps = fault.get("none", {}).get("requests_per_sec")
        if none_rps is None:
            problems.append("fault_replay.none.requests_per_sec missing")
        elif spin_s and none_rps * spin_s < _MIN_FAULT_NONE_REQ_PER_SPIN:
            problems.append(
                f"faults-disabled 2k replay throughput {none_rps} req/s × "
                f"{spin_s} s spin = {round(none_rps * spin_s, 1)} req/spin "
                f"(floor {_MIN_FAULT_NONE_REQ_PER_SPIN}: chaos hooks must "
                "cost nothing when disarmed)"
            )
    obs = report.get("observability")
    if not obs:
        problems.append("observability section missing")
    else:
        ratio = obs.get("tracer_on_vs_off")
        if ratio is None:
            problems.append("observability.tracer_on_vs_off missing")
        elif ratio > _MAX_TRACER_ON_VS_OFF:
            problems.append(
                f"2k replay with the flight recorder on costs {ratio}× the "
                f"tracer-off replay (gate ≤ {_MAX_TRACER_ON_VS_OFF}: tracing "
                "must stay within its ≤5% budget)"
            )
        if not obs.get("trace_valid"):
            problems.append(
                "traced 2k replay produced an invalid Chrome trace "
                f"({obs.get('trace_validation_errors')})"
            )
        if not obs.get("decisions_identical"):
            problems.append(
                "tracer-on and tracer-off replays produced different "
                "decision logs (tracing must not change scheduling)"
            )
        off_rps = obs.get("requests_per_sec_off")
        if off_rps is None:
            problems.append("observability.requests_per_sec_off missing")
        elif spin_s and off_rps * spin_s < _MIN_OBS_OFF_REQ_PER_SPIN:
            problems.append(
                f"tracer-off 2k replay throughput {off_rps} req/s × "
                f"{spin_s} s spin = {round(off_rps * spin_s, 1)} req/spin "
                f"(floor {_MIN_OBS_OFF_REQ_PER_SPIN}: the uninstalled tracer "
                "must cost nothing)"
            )
    sweep = report.get("sweep_scaling")
    if not sweep:
        problems.append("sweep_scaling section missing")
        return problems
    if not sweep.get("merged_payload_identical"):
        problems.append(
            "sweep merged payloads differ across worker counts/resume "
            "(sharded and sequential grids must be byte-identical)"
        )
    resume = sweep.get("resume", {})
    if resume.get("executed", 1) != 0:
        problems.append(
            f"sweep resume re-executed {resume.get('executed')} cells "
            "(a completed sweep must be served entirely from the store)"
        )
    if resume.get("wall_s", float("inf")) >= _MAX_SWEEP_RESUME_S:
        problems.append(
            f"sweep resume took {resume.get('wall_s')} s "
            f"(cache-hit resume must finish in < {_MAX_SWEEP_RESUME_S} s)"
        )
    cores = sweep.get("cpu_count") or 1
    speedup = sweep.get("speedup_4w", 0.0)
    if cores >= 2 and speedup < _MIN_SWEEP_SPEEDUP_4W:
        problems.append(
            f"sweep speedup at 4 workers = {speedup}x on {cores} cores "
            f"(gate {_MIN_SWEEP_SPEEDUP_4W}x)"
        )
    return problems
