"""On-disk result store for the sweep orchestrator.

Layout (everything under one *store root* directory)::

    <root>/
      store.meta.json          # {"store": ..., "version": 1, "code_fingerprint": ...}
      cells/<cell_id>.json     # one finished cell per file

Opening a store whose recorded ``code_fingerprint`` does not match the
running sources raises :class:`StoreVersionError`: cell IDs hash
configuration only, so without the fingerprint a store left over from an
older checkout would silently serve stale results.

Each cell file is self-describing: the cell's canonical configuration
payload (the same dict its content-hash ID was derived from), the full
:class:`~repro.metrics.summary.RunSummary`, the per-architecture breakdown,
and the timeline matrix sampled by the passive
:class:`~repro.metrics.timeline.TimelineProbe`.  Files are written to a
temporary name and atomically renamed into place, so a sweep killed
mid-write never leaves a torn cell behind — whatever is in ``cells/`` is
complete and trustworthy, which is what makes ``--resume`` a pure
set-difference over cell IDs.

Serialization is deterministic (``sort_keys=True``, ``repr``-faithful
floats), so re-serializing an unchanged result is byte-identical — the
property the sweep determinism tests (workers=1 vs. workers=N) assert.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path

from ..metrics.summary import RunSummary

__all__ = [
    "CellResult",
    "ResultStore",
    "StoreVersionError",
    "STORE_VERSION",
    "source_fingerprint",
]

#: bump when the cell-file layout changes incompatibly
STORE_VERSION = 1

_META_NAME = "store.meta.json"
_CELLS_DIR = "cells"
_STORE_KIND = "repro-sweep-results"


class StoreVersionError(RuntimeError):
    """The store on disk was written by an incompatible layout version
    (or by a different version of the *code* — see
    :func:`source_fingerprint`)."""


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Content hash of the installed ``repro`` package sources.

    Cell IDs hash *configuration* only: results are assumed to be
    deterministic functions of their config, which stops being true the
    moment the simulator or scheduler changes.  The store folds this
    fingerprint into its metadata so resuming against a store written by
    an older checkout is **detected** (a :class:`StoreVersionError`)
    instead of silently serving stale figures.

    The hash covers every ``.py`` file under the package root, keyed by
    relative path, so it is stable across machines and working
    directories for identical sources.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class CellResult:
    """Everything the sweep persists for one finished experiment cell."""

    cell_id: str
    #: canonical configuration payload the cell ID hashes (experiment +
    #: trace + timeline period + schema version) — self-describing on disk
    config: dict
    summary: RunSummary
    #: :func:`~repro.metrics.summary.per_architecture_breakdown` output
    per_architecture: dict
    #: :data:`~repro.metrics.timeline.TIMELINE_FIELDS` column names
    timeline_fields: tuple
    #: one row per sampled period boundary (empty when sampling is off)
    timeline: tuple
    #: wall-clock seconds the cell took to execute (provenance only; it is
    #: excluded from merged figure data so cached and fresh runs merge
    #: byte-identically)
    wall_s: float = 0.0

    def to_payload(self) -> dict:
        """JSON-ready dict (the exact on-disk cell-file content)."""
        return {
            "version": STORE_VERSION,
            "cell_id": self.cell_id,
            "config": self.config,
            "summary": asdict(self.summary),
            "per_architecture": self.per_architecture,
            "timeline": {
                "fields": list(self.timeline_fields),
                "rows": [list(row) for row in self.timeline],
            },
            "wall_s": self.wall_s,
        }

    @staticmethod
    def from_payload(payload: dict) -> "CellResult":
        version = payload.get("version")
        if version != STORE_VERSION:
            raise StoreVersionError(
                f"cell file version {version!r} != supported {STORE_VERSION}"
            )
        timeline = payload.get("timeline") or {"fields": [], "rows": []}
        return CellResult(
            cell_id=payload["cell_id"],
            config=payload["config"],
            summary=RunSummary(**payload["summary"]),
            per_architecture=payload["per_architecture"],
            timeline_fields=tuple(timeline["fields"]),
            timeline=tuple(tuple(row) for row in timeline["rows"]),
            wall_s=float(payload.get("wall_s", 0.0)),
        )


def _dumps(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class ResultStore:
    """Directory of finished sweep cells keyed by content-hash cell ID."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._cells = self.root / _CELLS_DIR
        self._cells.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / _META_NAME
        fingerprint = source_fingerprint()
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("store") != _STORE_KIND:
                raise StoreVersionError(f"{self.root} is not a sweep result store")
            if meta.get("version") != STORE_VERSION:
                raise StoreVersionError(
                    f"store version {meta.get('version')!r} != supported "
                    f"{STORE_VERSION}; use a fresh --store directory"
                )
            if meta.get("code_fingerprint") != fingerprint:
                # cell IDs hash config, not code: results from an older
                # checkout would be silently reused otherwise
                raise StoreVersionError(
                    f"{self.root} was written by a different code version "
                    f"(fingerprint {meta.get('code_fingerprint')!r} != current "
                    f"{fingerprint!r}); sweep results are functions of the "
                    "code too — use a fresh --store directory"
                )
        else:
            self._atomic_write(
                meta_path,
                _dumps(
                    {
                        "store": _STORE_KIND,
                        "version": STORE_VERSION,
                        "code_fingerprint": fingerprint,
                    }
                ),
            )

    # ------------------------------------------------------------------
    def path(self, cell_id: str) -> Path:
        return self._cells / f"{cell_id}.json"

    def __contains__(self, cell_id: str) -> bool:
        return self.path(cell_id).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._cells.glob("*.json"))

    def cell_ids(self) -> list[str]:
        """IDs of every finished cell, sorted (the merge order)."""
        return sorted(p.stem for p in self._cells.glob("*.json"))

    # ------------------------------------------------------------------
    def get(self, cell_id: str) -> CellResult | None:
        path = self.path(cell_id)
        if not path.exists():
            return None
        return CellResult.from_payload(json.loads(path.read_text()))

    def put(self, result: CellResult) -> Path:
        """Persist one cell atomically (tmp file + rename)."""
        path = self.path(result.cell_id)
        self._atomic_write(path, _dumps(result.to_payload()))
        return path

    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{path.stem}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
