"""Experiment harness: regenerates every table and figure of §V."""

from .ablations import (
    build_belady_oracle,
    run_batch_size_sweep,
    run_belady_bound,
    run_cache_policy_ablation,
    run_gpu_scaling,
)
from .export import read_csv_rows, write_summaries_csv, write_timeline_csv
from .fig4 import format_fig4, headline_reductions, run_fig4
from .replay import GatewayReplay, replay_streaming, replay_through_gateway
from .fig5 import false_per_miss, format_fig5, run_fig5
from .fig6 import format_fig6, run_fig6
from .fig7 import PAPER_O3_LIMITS, format_fig7, run_fig7
from .report import format_reduction, format_table, reduction_pct
from .runner import (
    PAPER_POLICIES,
    ExperimentConfig,
    run_experiment,
    run_policy_grid,
    shared_trace,
)
from .store import CellResult, ResultStore
from .sweep import (
    SweepCell,
    SweepResult,
    SweepSpec,
    execute_cell,
    run_cells,
    run_keyed_cells,
    run_sweep,
)
from .table1 import format_table1, table1_from_paper, table1_wallclock

__all__ = [
    "build_belady_oracle",
    "run_batch_size_sweep",
    "run_belady_bound",
    "run_cache_policy_ablation",
    "run_gpu_scaling",
    "read_csv_rows",
    "write_summaries_csv",
    "write_timeline_csv",
    "GatewayReplay",
    "replay_streaming",
    "replay_through_gateway",
    "format_fig4",
    "headline_reductions",
    "run_fig4",
    "false_per_miss",
    "format_fig5",
    "run_fig5",
    "format_fig6",
    "run_fig6",
    "PAPER_O3_LIMITS",
    "format_fig7",
    "run_fig7",
    "format_reduction",
    "format_table",
    "reduction_pct",
    "PAPER_POLICIES",
    "ExperimentConfig",
    "run_experiment",
    "run_policy_grid",
    "shared_trace",
    "CellResult",
    "ResultStore",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "execute_cell",
    "run_cells",
    "run_keyed_cells",
    "run_sweep",
    "format_table1",
    "table1_from_paper",
    "table1_wallclock",
]
