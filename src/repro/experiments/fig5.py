"""Figure 5: false miss ratio.

A false miss is "a cache miss scenario ... where the request is forwarded
to a GPU as a cache miss even though the requested model is cached on
another GPU" (§V-D).  We report the fraction of *requests* that were false
misses (``false_miss_ratio``), plus the share of misses that were false
(``false_per_miss``) — the latter matches the magnitudes in the paper's
figure more closely and both orderings agree.
"""

from __future__ import annotations

from ..metrics.summary import RunSummary
from .report import format_table
from .runner import PAPER_POLICIES, run_policy_grid

__all__ = ["run_fig5", "format_fig5", "false_per_miss"]


def run_fig5(working_sets: tuple[int, ...] = (15, 25, 35), **kwargs):
    return run_policy_grid(working_sets, PAPER_POLICIES, **kwargs)


def false_per_miss(summary: RunSummary) -> float:
    """False misses as a fraction of all misses (0 when there are no misses)."""
    if summary.cache_miss_ratio == 0:
        return 0.0
    return summary.false_miss_ratio / summary.cache_miss_ratio


def format_fig5(results: dict[tuple[str, int], RunSummary]) -> str:
    working_sets = sorted({ws for _, ws in results})
    rows = []
    for policy in PAPER_POLICIES:
        row: list = [policy.upper()]
        for ws in working_sets:
            s = results[(policy, ws)]
            row.append(f"{s.false_miss_ratio:.4f} ({false_per_miss(s):.2f}/miss)")
        rows.append(row)
    table = format_table(["scheduler"] + [f"WS={ws}" for ws in working_sets], rows)
    return f"Figure 5: false miss ratio\n{table}"
