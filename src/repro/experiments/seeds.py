"""Multi-seed experiment replication: means and spreads across seeds.

The paper reports single-trace numbers; for the reproduction we also
quantify how stable each metric is under workload resampling (different
per-minute shuffles and function draws), which is what the seed governs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..traces.azure import SyntheticAzureTrace
from .runner import ExperimentConfig, shared_trace

__all__ = ["MetricSpread", "run_multi_seed"]


@dataclass(frozen=True)
class MetricSpread:
    """Mean ± standard deviation of one metric across seeds."""

    metric: str
    mean: float
    std: float
    values: tuple[float, ...]

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); 0 when mean is 0."""
        return self.std / self.mean if self.mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.metric}: {self.mean:.4g} ± {self.std:.2g}"


_METRICS = (
    "avg_latency_s",
    "cache_miss_ratio",
    "sm_utilization",
    "false_miss_ratio",
    "avg_duplicates_top_model",
)


def run_multi_seed(
    config: ExperimentConfig,
    seeds: tuple[int, ...] = (0, 1, 2),
    *,
    trace: SyntheticAzureTrace | None = None,
    workers: int = 1,
    store=None,
    resume: bool = True,
    progress=None,
) -> dict[str, MetricSpread]:
    """Run ``config`` once per seed and aggregate each headline metric.

    Seeds are independent cells, so they shard across the sweep
    orchestrator's worker pool (``workers``/``store`` as in
    :func:`~repro.experiments.runner.run_policy_grid`).
    """
    from .sweep import SweepCell, run_keyed_cells

    if len(seeds) < 2:
        raise ValueError("need at least two seeds for a spread")
    trace = trace or shared_trace()
    cells = {
        seed: SweepCell(config=replace(config, seed=seed), trace=trace.config)
        for seed in seeds
    }
    by_seed = run_keyed_cells(
        cells, trace=trace, workers=workers, store=store, resume=resume,
        progress=progress,
    )
    summaries = [by_seed[seed] for seed in seeds]
    out: dict[str, MetricSpread] = {}
    for metric in _METRICS:
        values = tuple(float(getattr(s, metric)) for s in summaries)
        out[metric] = MetricSpread(
            metric=metric,
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            values=values,
        )
    return out
