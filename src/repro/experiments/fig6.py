"""Figure 6: average number of duplicates of the top-1 model.

"The average number of duplicates is collected by tracking the total number
of GPUs that has the most popular model cached at the same time during the
experiment" (§V-D) — a time-weighted average, bounded above by the 12 GPUs
of the testbed.
"""

from __future__ import annotations

from ..metrics.summary import RunSummary
from .report import format_table
from .runner import PAPER_POLICIES, run_policy_grid

__all__ = ["run_fig6", "format_fig6"]


def run_fig6(working_sets: tuple[int, ...] = (15, 25, 35), **kwargs):
    return run_policy_grid(working_sets, PAPER_POLICIES, **kwargs)


def format_fig6(results: dict[tuple[str, int], RunSummary]) -> str:
    working_sets = sorted({ws for _, ws in results})
    rows = []
    for policy in PAPER_POLICIES:
        row: list = [policy.upper()]
        for ws in working_sets:
            row.append(round(results[(policy, ws)].avg_duplicates_top_model, 2))
        rows.append(row)
    table = format_table(["scheduler"] + [f"WS={ws}" for ws in working_sets], rows)
    return f"Figure 6: average duplicates of the top-1 model\n{table}"
