"""Ablation studies on the design choices DESIGN.md calls out (§VI).

* :func:`run_cache_policy_ablation` — swap the per-GPU replacement policy
  (LRU / FIFO / LFU / size-aware) under the LALBO3 scheduler.
* :func:`run_belady_bound` — the offline-optimal replacement bound: a
  Belady oracle built from the workload's future arrivals, showing how
  much headroom any online policy leaves on the table.
* :func:`run_gpu_scaling` — cluster-size sweep under fixed load.

All runs share the deterministic trace/workload machinery of the main
experiments.  The grid-shaped ablations (:func:`run_cache_policy_ablation`
and :func:`run_gpu_scaling`) route through the sweep orchestrator and
accept its ``workers``/``store``/``resume`` knobs; the Belady bound and
batch-size sweep assemble their systems by hand (clairvoyant policy swap,
non-default batch sizes) and stay on the direct path.
"""

from __future__ import annotations

import bisect
from collections import defaultdict

from ..cluster.topology import ClusterSpec
from ..core.replacement import BeladyPolicy
from ..metrics.summary import RunSummary, summarize
from ..runtime.config import SystemConfig
from ..runtime.system import FaaSCluster
from ..traces.azure import SyntheticAzureTrace
from ..traces.workload import Workload, WorkloadSpec, build_workload
from .runner import ExperimentConfig, shared_trace

__all__ = [
    "build_belady_oracle",
    "run_batch_size_sweep",
    "run_belady_bound",
    "run_cache_policy_ablation",
    "run_gpu_scaling",
]


def build_belady_oracle(workload: Workload):
    """``next_use(model_id, now) -> time`` over the workload's arrivals.

    The oracle answers: when is this model instance requested next, at or
    after ``now``?  ``inf`` when never again — the Belady policy evicts the
    model with the farthest next use.
    """
    arrivals: dict[str, list[float]] = defaultdict(list)
    for request in workload.requests:
        arrivals[request.model_id].append(request.arrival_time)
    for times in arrivals.values():
        times.sort()

    def next_use(model_id: str, now: float) -> float:
        times = arrivals.get(model_id)
        if not times:
            return float("inf")
        i = bisect.bisect_left(times, now)
        return times[i] if i < len(times) else float("inf")

    return next_use


def run_belady_bound(
    *,
    working_set: int = 35,
    policy: str = "lalbo3",
    trace: SyntheticAzureTrace | None = None,
    seed: int = 0,
) -> dict[str, RunSummary]:
    """LRU vs. the offline Belady bound under the same scheduler.

    Returns ``{"lru": ..., "belady": ...}``.  Belady needs the workload's
    future, so the system is assembled by hand around a shared workload.
    """
    trace = trace or shared_trace()
    out: dict[str, RunSummary] = {}
    for name in ("lru", "belady"):
        workload = build_workload(WorkloadSpec(working_set=working_set, seed=seed), trace=trace)
        config = SystemConfig(policy=policy, replacement="lru", seed=seed)
        system = FaaSCluster(config)
        if name == "belady":
            oracle = build_belady_oracle(workload)
            # swap every GPU's policy list for the clairvoyant one
            system.cache._policies = {
                gpu_id: BeladyPolicy(oracle) for gpu_id in system.cache._policies
            }
        for request in workload.requests:
            system.submit_at(request)
        system.run()
        out[name] = summarize(
            system.metrics,
            system.cluster,
            policy=f"{policy}+{name}",
            working_set=working_set,
            top_model=workload.top_model_id,
        )
    return out


def run_cache_policy_ablation(
    replacements: tuple[str, ...] = ("lru", "fifo", "lfu", "size"),
    *,
    working_set: int = 35,
    trace: SyntheticAzureTrace | None = None,
    workers: int = 1,
    store=None,
    resume: bool = True,
    progress=None,
) -> dict[str, RunSummary]:
    """LALBO3 under each pluggable replacement policy (§VI)."""
    from .sweep import SweepCell, run_keyed_cells

    trace = trace or shared_trace()
    cells = {
        rp: SweepCell(
            config=ExperimentConfig(
                policy="lalbo3", working_set=working_set, replacement=rp
            ),
            trace=trace.config,
        )
        for rp in replacements
    }
    return run_keyed_cells(
        cells, trace=trace, workers=workers, store=store, resume=resume,
        progress=progress,
    )


def run_batch_size_sweep(
    batch_sizes: tuple[int, ...] = (8, 16, 32, 64),
    *,
    working_set: int = 15,
    trace: SyntheticAzureTrace | None = None,
) -> dict[int, RunSummary]:
    """Batch-size sensitivity (the paper fixes batch = 32, §V-A.1).

    Inference latency follows each model's profiled batch regression
    (§IV-A), so larger batches raise per-request latency but improve
    *image* throughput — the classic trade-off behind the paper's choice of
    a fixed batch of 32.  Keyed by batch size.
    """
    trace = trace or shared_trace()
    out: dict[int, RunSummary] = {}
    for batch in batch_sizes:
        workload = build_workload(
            WorkloadSpec(working_set=working_set, batch_size=batch), trace=trace
        )
        system = FaaSCluster(SystemConfig(policy="lalbo3"))
        for request in workload.requests:
            system.submit_at(request)
        system.run()
        out[batch] = summarize(
            system.metrics,
            system.cluster,
            policy=f"lalbo3@batch{batch}",
            working_set=working_set,
            top_model=workload.top_model_id,
        )
    return out


def run_gpu_scaling(
    sizes: tuple[tuple[int, int], ...] = ((1, 4), (2, 4), (3, 4), (4, 4)),
    *,
    working_set: int = 25,
    trace: SyntheticAzureTrace | None = None,
    workers: int = 1,
    store=None,
    resume: bool = True,
    progress=None,
) -> dict[int, RunSummary]:
    """Fixed 325 req/min load against growing clusters; keyed by GPU count.

    The cluster topology is not a :class:`~repro.experiments.sweep.
    SweepSpec` axis, but cells are arbitrary configs — the executor
    shards any cell set.
    """
    from .sweep import SweepCell, run_keyed_cells

    trace = trace or shared_trace()
    cells = {
        nodes * per_node: SweepCell(
            config=ExperimentConfig(
                policy="lalbo3",
                working_set=working_set,
                cluster=ClusterSpec.homogeneous(nodes, per_node),
            ),
            trace=trace.config,
        )
        for nodes, per_node in sizes
    }
    return run_keyed_cells(
        cells, trace=trace, workers=workers, store=store, resume=resume,
        progress=progress,
    )
