"""Sharded sweep orchestrator: the multiprocess §V grid runner.

Every figure and table in §V is a sweep of one experiment cell —
:class:`~repro.experiments.runner.ExperimentConfig` against a trace — over
axes like policy × working set × O3 limit × seed.  After the columnar
replay work the wall-clock bottleneck for regenerating the paper is the
*grid*, which previously ran strictly sequentially.  The grid is
embarrassingly parallel; this module turns it into a subsystem:

1. **Declarative expansion** — :class:`SweepSpec` names the axes; its
   :meth:`~SweepSpec.cells` expansion produces frozen :class:`SweepCell`
   descriptors, each with a stable content-hash **cell ID** derived from
   the canonical JSON of its experiment config, trace config, timeline
   period, and schema version.  Identical cells hash identically across
   processes, machines, and sessions.

2. **Sharded execution** — :func:`run_cells` executes cells across a
   ``multiprocessing`` worker pool (module-level, spawn-safe entry point;
   ``fork`` is preferred where available for its near-zero startup cost).
   The submission queue is bounded (≤ 2 tasks in flight per worker), each
   worker reuses one :class:`~repro.traces.azure.SyntheticAzureTrace` per
   trace config and one extracted workload per
   :class:`~repro.traces.workload.WorkloadSpec` (request objects are
   re-materialized from the shared columns per run, because the simulator
   mutates them in place), and a crashed worker process is retried
   per-cell (bounded) instead of killing the sweep.  Progress streams to
   the TTY when stderr is one.  ``workers=1`` runs in-process with no pool
   and preserves the sequential path's exact behavior.

3. **Result store** — every finished cell is persisted to a
   :class:`~repro.experiments.store.ResultStore` keyed by cell ID
   (atomic writes).  An interrupted sweep resumed against the same store
   re-executes only the missing cells; unchanged cells are served from
   cache.  Config drift changes the hash, so a stale *configuration* can
   never be served — but the hash covers configuration only, not code:
   results are assumed to be deterministic functions of their config, so
   after a change to the simulator/scheduler either start a fresh store
   directory or bump :data:`CELL_SCHEMA` (which re-keys every cell).

4. **Deterministic merge** — results merge in sorted cell-ID order and a
   cell's merged payload is independent of where/when it ran, so
   sequential and sharded sweeps produce **byte-identical** figure
   inputs (asserted by ``tests/experiments/test_sweep.py``).

The §V consumers (``run_policy_grid``, ``run_fig7``, ``run_multi_seed``,
the ablations) all route through :func:`run_cells`; the CLI exposes the
subsystem as ``python -m repro.experiments sweep --workers N --store DIR
--resume`` (see also ``make sweep``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from collections import OrderedDict, deque
from dataclasses import asdict, dataclass, field, replace
from functools import cached_property
from typing import Callable, Iterable, Sequence

from ..cluster.topology import PAPER_TESTBED, ClusterSpec
from ..metrics.summary import per_architecture_breakdown, summarize
from ..metrics.timeline import TIMELINE_FIELDS, TimelineProbe
from ..runtime.config import SystemConfig
from ..runtime.system import FaaSCluster
from ..traces.azure import AzureTraceConfig, SyntheticAzureTrace
from ..traces.workload import Workload, WorkloadSpec, build_workload
from .runner import PAPER_POLICIES, ExperimentConfig, shared_trace
from .store import CellResult, ResultStore

__all__ = [
    "SweepSpec",
    "SweepCell",
    "SweepStats",
    "SweepResult",
    "SweepError",
    "execute_cell",
    "run_cells",
    "run_keyed_cells",
    "run_sweep",
    "DEFAULT_TIMELINE_PERIOD_S",
]

#: schema version folded into every cell ID: bump when the execution
#: semantics change in a way that invalidates stored results
#: (2: fault_profile joined ExperimentConfig / the chaos axis landed)
CELL_SCHEMA = 2

#: timeline sampling period (simulated seconds) persisted per cell
DEFAULT_TIMELINE_PERIOD_S = 5.0

#: per-worker workload cache bound (extracted column sets kept hot)
_WORKLOAD_CACHE_CAP = 8

#: outstanding tasks per worker (the bounded submission queue)
_QUEUE_FACTOR = 2

#: consecutive pool breaks with no completed cell before the sweep aborts
#: (covers environments whose workers die at startup, OOM storms, etc.)
_MAX_CONSECUTIVE_POOL_BREAKS = 8


class SweepError(RuntimeError):
    """A sweep finished with cells that failed after all retries."""


# ----------------------------------------------------------------------
# Cell identity
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One frozen grid cell: an experiment config against a trace config.

    ``trace`` is the *config*, not a trace object — workers rebuild (and
    cache) the deterministic :class:`SyntheticAzureTrace` from it, so a
    cell is fully picklable and its identity is pure data.
    """

    config: ExperimentConfig
    trace: AzureTraceConfig = AzureTraceConfig()
    timeline_period_s: float | None = DEFAULT_TIMELINE_PERIOD_S

    def canonical_payload(self) -> dict:
        """The dict whose canonical JSON the cell ID hashes.

        Normalized through a JSON round-trip (tuples become lists), so the
        payload equals its own on-disk form byte for byte.
        """
        raw = {
            "schema": CELL_SCHEMA,
            "experiment": asdict(self.config),
            "trace": asdict(self.trace),
            "timeline_period_s": self.timeline_period_s,
        }
        return json.loads(json.dumps(raw))

    @cached_property
    def cell_id(self) -> str:
        """Stable content hash: 16 hex chars of SHA-256 over the canonical
        JSON payload.  Any config drift yields a different ID, so a result
        store can never serve a stale cell."""
        blob = json.dumps(self.canonical_payload(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def workload_spec(self) -> WorkloadSpec:
        cfg = self.config
        return WorkloadSpec(
            working_set=cfg.working_set,
            minutes=cfg.minutes,
            requests_per_minute=cfg.requests_per_minute,
            sla_s=cfg.sla_s,
            seed=cfg.seed,
        )

    def label(self) -> str:
        cfg = self.config
        return f"{cfg.label()}/ws{cfg.working_set}/seed{cfg.seed}"


# ----------------------------------------------------------------------
# Declarative grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """Declarative §V grid: the cross product of the named axes.

    Expansion order is the documented axis order (seed outermost, policy
    innermost) and is deterministic, but consumers should key off cell IDs
    — the merge order is sorted-by-ID regardless of expansion order.
    """

    policies: tuple[str, ...] = PAPER_POLICIES
    working_sets: tuple[int, ...] = (15, 25, 35)
    o3_limits: tuple[int, ...] = (25,)
    replacements: tuple[str, ...] = ("lru",)
    seeds: tuple[int, ...] = (0,)
    slas: tuple[float | None, ...] = (None,)
    #: chaos axis: named fault profiles from
    #: :data:`repro.chaos.FAULT_PROFILES` (``"none"`` = healthy runs)
    fault_profiles: tuple[str, ...] = ("none",)
    #: workload scale (§V-A.1 defaults)
    minutes: int = 6
    requests_per_minute: int = 325
    cluster: ClusterSpec = PAPER_TESTBED
    trace: AzureTraceConfig = AzureTraceConfig()
    timeline_period_s: float | None = DEFAULT_TIMELINE_PERIOD_S

    def __post_init__(self) -> None:
        for name in (
            "policies", "working_sets", "o3_limits", "replacements", "seeds",
            "slas", "fault_profiles",
        ):
            if not getattr(self, name):
                raise ValueError(f"sweep axis {name!r} is empty")

    def cells(self) -> tuple[SweepCell, ...]:
        """Expand the cross product into frozen cells (duplicates folded:
        non-lalbo3 policies ignore the O3 axis, so their cells collapse to
        one per remaining key)."""
        out: list[SweepCell] = []
        seen: set[str] = set()
        for seed in self.seeds:
            for fault_profile in self.fault_profiles:
                for sla in self.slas:
                    for replacement in self.replacements:
                        for ws in self.working_sets:
                            for o3 in self.o3_limits:
                                for policy in self.policies:
                                    cfg = ExperimentConfig(
                                        policy=policy,
                                        working_set=ws,
                                        minutes=self.minutes,
                                        requests_per_minute=self.requests_per_minute,
                                        o3_limit=o3,
                                        replacement=replacement,
                                        cluster=self.cluster,
                                        sla_s=sla,
                                        seed=seed,
                                        fault_profile=fault_profile,
                                    )
                                    if policy != "lalbo3" and len(self.o3_limits) > 1:
                                        # the O3 axis only matters to lalbo3;
                                        # collapse the duplicates it would mint
                                        cfg = replace(cfg, o3_limit=self.o3_limits[0])
                                    cell = SweepCell(
                                        config=cfg,
                                        trace=self.trace,
                                        timeline_period_s=self.timeline_period_s,
                                    )
                                    if cell.cell_id not in seen:
                                        seen.add(cell.cell_id)
                                        out.append(cell)
        return tuple(out)


# ----------------------------------------------------------------------
# Per-process execution (shared by workers and the in-process path)
# ----------------------------------------------------------------------
_WORKLOADS: "OrderedDict[tuple[WorkloadSpec, AzureTraceConfig], Workload]" = OrderedDict()

#: test seam: when set, called with the cell before worker execution
#: (inherited by forked workers; used to exercise crash isolation)
_FAULT_HOOK: Callable[[SweepCell], None] | None = None


def _workload_for(spec: WorkloadSpec, trace: SyntheticAzureTrace) -> Workload:
    """A ready-to-submit workload for ``spec``, sharing extracted columns.

    The expensive half of a workload — trace counts, normalization, RNG
    draws — depends only on ``(spec, trace.config)`` and is cached.  The
    returned handle is a *fresh view* over the shared columns and model
    instances with no materialized requests: the simulator mutates request
    objects in place, so each run must materialize its own.
    """
    key = (spec, trace.config)
    cached = _WORKLOADS.get(key)
    if cached is None:
        cached = build_workload(spec, trace=trace)
        _WORKLOADS[key] = cached
        if len(_WORKLOADS) > _WORKLOAD_CACHE_CAP:
            _WORKLOADS.popitem(last=False)
    else:
        _WORKLOADS.move_to_end(key)
    return Workload(
        spec=cached.spec,
        instances=cached.instances,
        counts=cached.counts,
        function_ids=cached.function_ids,
        arrival_times=cached.arrival_times,
        function_index=cached.function_index,
        tenant=cached.tenant,
    )


def execute_cell(
    cell: SweepCell,
    *,
    trace: SyntheticAzureTrace | None = None,
    timeline: bool = True,
) -> CellResult:
    """Run one cell to completion and package everything the store keeps.

    Equivalent to :func:`~repro.experiments.runner.run_experiment` (same
    workload, same system, same summary — byte-identical, proven by the
    sweep tests) plus the per-architecture breakdown and the passive
    timeline matrix.  ``timeline=False`` skips the probe (its per-event
    callback) without affecting the summary — :func:`run_cells` passes it
    for storeless sweeps, whose consumers read only summaries.
    """
    t0 = time.perf_counter()
    if trace is None or trace.config != cell.trace:
        trace = shared_trace(cell.trace)  # per-process cache; workers reuse
    config = cell.config
    workload = _workload_for(cell.workload_spec(), trace)
    system = FaaSCluster(
        SystemConfig(
            cluster=config.cluster,
            policy=config.policy,
            o3_limit=config.o3_limit,
            replacement=config.replacement,
            seed=config.seed,
            fault_profile=config.fault_profile,
        )
    )
    probe = (
        TimelineProbe(system, period_s=cell.timeline_period_s)
        if timeline and cell.timeline_period_s is not None
        else None
    )
    system.submit_workload(workload)
    system.run()
    summary = summarize(
        system.metrics,
        system.cluster,
        policy=config.label(),
        working_set=config.working_set,
        top_model=workload.top_model_id,
    )
    breakdown = per_architecture_breakdown(system.metrics)
    if probe is not None:
        probe.stop()
    return CellResult(
        cell_id=cell.cell_id,
        config=cell.canonical_payload(),
        summary=summary,
        per_architecture=breakdown,
        timeline_fields=TIMELINE_FIELDS,
        timeline=tuple(tuple(row) for row in probe.matrix()) if probe else (),
        wall_s=round(time.perf_counter() - t0, 4),
    )


def _worker_execute(cell: SweepCell, timeline: bool = True) -> CellResult:
    """Module-level pool entry point (spawn-safe: importable by path)."""
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(cell)
    return execute_cell(cell, timeline=timeline)


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class SweepStats:
    """Execution accounting for one :func:`run_cells` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    failed: int = 0
    workers: int = 1
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "failed": self.failed,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "cells_per_s": round(self.total / self.wall_s, 2) if self.wall_s else 0.0,
        }


@dataclass
class SweepResult:
    """Merged sweep output: finished cells in sorted cell-ID order."""

    cells: "OrderedDict[str, CellResult]"
    stats: SweepStats
    failures: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.cells)

    def for_cell(self, cell: SweepCell) -> CellResult:
        """Result for one descriptor (KeyError if it failed / never ran)."""
        try:
            return self.cells[cell.cell_id]
        except KeyError:
            detail = self.failures.get(cell.cell_id, "cell was not part of this sweep")
            raise KeyError(f"no result for {cell.label()} [{cell.cell_id}]: {detail}")

    def summary_for(self, cell: SweepCell):
        return self.for_cell(cell).summary

    def merged_payload(self) -> dict:
        """Deterministic figure-input payload, keyed by cell ID in sorted
        order.  Excludes ``wall_s`` (provenance), so the payload for a
        given cell set is byte-identical no matter how — or whether — the
        cells were (re-)executed."""
        out: dict = {}
        for cell_id, result in self.cells.items():
            payload = result.to_payload()
            payload.pop("wall_s", None)
            out[cell_id] = payload
        return out

    def merged_json(self) -> str:
        """Canonical JSON of :meth:`merged_payload` (the byte-identity
        surface the determinism tests compare)."""
        return json.dumps(self.merged_payload(), sort_keys=True, indent=2) + "\n"


def _progress_writer(progress) -> Callable[[SweepStats, int, str], None] | None:
    """Resolve the ``progress`` argument to a callback (or None)."""
    if callable(progress):
        return progress
    if progress is None:
        progress = sys.stderr.isatty()
    if not progress:
        return None
    stream = sys.stderr

    def emit(stats: SweepStats, done: int, label: str) -> None:
        line = (
            f"\rsweep: {done}/{stats.total} cells"
            f" ({stats.cache_hits} cached, {stats.retries} retried,"
            f" {stats.failed} failed) {label:<32.32}"
        )
        stream.write(line)
        if done == stats.total:
            stream.write("\n")
        stream.flush()

    return emit


def _resolve_cells(cells: Iterable[SweepCell]) -> list[SweepCell]:
    """De-duplicate by cell ID, preserving first-seen order."""
    seen: set[str] = set()
    out: list[SweepCell] = []
    for cell in cells:
        if cell.cell_id not in seen:
            seen.add(cell.cell_id)
            out.append(cell)
    return out


def _mp_context(name: str | None):
    """The pool context: ``fork`` where available (near-zero startup; the
    entry point is spawn-safe regardless), else ``spawn``."""
    import multiprocessing

    if name is None:
        name = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(name)


def run_cells(
    cells: Sequence[SweepCell],
    *,
    workers: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    resume: bool = True,
    retries: int = 1,
    progress=None,
    trace: SyntheticAzureTrace | None = None,
    mp_context: str | None = None,
    strict: bool = True,
) -> SweepResult:
    """Execute a cell set and merge the results deterministically.

    Parameters
    ----------
    workers:
        ``1`` (default) runs in-process — no pool, exceptions propagate,
        exactly the sequential path.  ``> 1`` runs a multiprocessing pool
        with a bounded submission queue and per-cell crash retry.
    store / resume:
        With a store, finished cells are persisted as they land and —
        when ``resume`` is true — cells already present are served from
        cache without executing.  ``resume=False`` re-executes everything
        (and overwrites the stored cells).
    retries:
        Per-cell retry budget for worker crashes/errors (pool mode only).
    progress:
        ``None`` = auto (TTY only), ``False`` = off, or a callback
        ``fn(stats, done, label)``.
    trace:
        Optional pre-built trace for the in-process path; its config must
        match the cells' (workers rebuild from config regardless).
    strict:
        Raise :class:`SweepError` if any cell still fails after retries
        (otherwise the failures are reported in the result).
    """
    t0 = time.perf_counter()
    ordered = _resolve_cells(cells)
    stats = SweepStats(total=len(ordered), workers=max(1, workers))
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    emit = _progress_writer(progress)

    results: dict[str, CellResult] = {}
    failures: dict[str, str] = {}
    pending: list[SweepCell] = []
    for cell in ordered:
        cached = store.get(cell.cell_id) if (store is not None and resume) else None
        if cached is not None:
            results[cell.cell_id] = cached
            stats.cache_hits += 1
        else:
            pending.append(cell)

    done = stats.cache_hits
    if emit and (done or not pending):
        emit(stats, done, "resume" if done else "")

    # the timeline matrix is only worth sampling when a store keeps it —
    # storeless consumers (the fig grids) read summaries exclusively
    timeline = store is not None
    if pending:
        if workers <= 1:
            for cell in pending:
                result = execute_cell(cell, trace=trace, timeline=timeline)
                results[cell.cell_id] = result
                stats.executed += 1
                if store is not None:
                    store.put(result)
                done += 1
                if emit:
                    emit(stats, done, cell.label())
        else:
            done = _run_pool(
                pending, results, failures, stats, store=store, workers=workers,
                retries=retries, emit=emit, done=done, mp_context=mp_context,
                timeline=timeline,
            )

    stats.failed = len(failures)
    stats.wall_s = time.perf_counter() - t0
    merged: "OrderedDict[str, CellResult]" = OrderedDict(
        (cid, results[cid]) for cid in sorted(results)
    )
    if failures and strict:
        detail = "; ".join(f"{cid}: {err}" for cid, err in sorted(failures.items()))
        raise SweepError(
            f"{len(failures)} of {stats.total} cells failed after retries: {detail}"
        )
    return SweepResult(cells=merged, stats=stats, failures=failures)


def _run_pool(
    pending: list[SweepCell],
    results: dict[str, CellResult],
    failures: dict[str, str],
    stats: SweepStats,
    *,
    store: ResultStore | None,
    workers: int,
    retries: int,
    emit,
    done: int,
    mp_context: str | None,
    timeline: bool = True,
) -> int:
    """Pool execution: bounded queue, crash isolation, per-cell retry.

    A worker *exception* is attributable — the raising cell alone is
    charged against its retry budget.  A worker *crash* (segfault, OOM
    kill, ``os._exit``) breaks the whole pool — every in-flight future
    (and any concurrent ``submit``) reports :class:`BrokenProcessPool` —
    so the culprit is unknown; charging everyone would let one poison cell
    exhaust innocent cells' budgets.  Instead breaks are counted globally,
    everything in flight requeues uncharged, and once the breaks exceed
    the retry budget the sweep drops to **solo mode** (one cell in flight
    at a time): the next crash names its cell unambiguously and that cell
    alone is charged.  Solo mode ends as soon as it resolves something —
    the isolated cell succeeds, or the culprit is charged out of its
    budget and failed — restoring parallelism for the healthy remainder.
    A run of consecutive breaks that completes nothing (e.g. workers dying
    at startup) aborts with :class:`SweepError` instead of looping.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    ctx = _mp_context(mp_context)
    queue: deque[SweepCell] = deque(pending)
    attempts: dict[str, int] = {}      # attributable (exception/solo-crash)
    pool_breaks = 0                    # unattributed crashes since last resolution
    consecutive_breaks = 0             # breaks with no completed cell between
    solo = False                       # one-in-flight isolation mode

    def new_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)

    pool = new_pool()
    inflight: dict = {}
    try:
        while queue or inflight:
            max_inflight = 1 if solo else workers * _QUEUE_FACTOR
            broken = False
            while queue and len(inflight) < max_inflight:
                cell = queue.popleft()
                try:
                    inflight[pool.submit(_worker_execute, cell, timeline)] = cell
                except BrokenProcessPool:
                    # pool died between wait() and submit(): unattributed
                    queue.appendleft(cell)
                    broken = True
                    break
            if not broken and inflight:
                ready, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in ready:
                    cell = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        if solo:
                            # exactly one cell was running: the culprit
                            attempts[cell.cell_id] = attempts.get(cell.cell_id, 0) + 1
                            if attempts[cell.cell_id] > retries:
                                failures[cell.cell_id] = "worker process crashed"
                                done += 1
                                solo = False    # resolved: culprit removed
                                pool_breaks = 0
                                consecutive_breaks = 0
                            else:
                                queue.appendleft(cell)  # rerun alone
                        else:
                            queue.appendleft(cell)  # uncharged: culprit unknown
                    except Exception as exc:  # worker raised: retry bounded
                        attempts[cell.cell_id] = attempts.get(cell.cell_id, 0) + 1
                        if attempts[cell.cell_id] > retries:
                            failures[cell.cell_id] = f"{type(exc).__name__}: {exc}"
                            done += 1
                        else:
                            stats.retries += 1
                            queue.append(cell)
                    else:
                        results[cell.cell_id] = result
                        stats.executed += 1
                        consecutive_breaks = 0
                        if solo:
                            solo = False        # resolved: isolated cell ran
                            pool_breaks = 0
                        if store is not None:
                            store.put(result)
                        done += 1
                        if emit:
                            emit(stats, done, cell.label())
            if broken:
                # one break event, however many futures reported it
                stats.retries += 1
                consecutive_breaks += 1
                if consecutive_breaks > _MAX_CONSECUTIVE_POOL_BREAKS:
                    raise SweepError(
                        f"worker pool crashed {consecutive_breaks} times in a "
                        "row without completing a cell; giving up"
                    )
                if not solo:
                    pool_breaks += 1
                    if pool_breaks > retries:
                        solo = True
                # the pool is dead; everything in flight must requeue
                for future, cell in inflight.items():
                    queue.append(cell)
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = new_pool()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    if emit:
        emit(stats, done, "done")
    return done


def run_keyed_cells(
    cells_by_key: dict,
    *,
    trace: SyntheticAzureTrace | None = None,
    workers: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    resume: bool = True,
    progress=None,
) -> dict:
    """Execute ``{key: SweepCell}`` and return ``{key: RunSummary}``.

    The shared shape of every §V consumer (policy grid, O3 axis, seeds,
    ablations): build cells under domain keys, run them through the
    executor, map the merged results back onto the keys.
    """
    result = run_cells(
        list(cells_by_key.values()),
        workers=workers,
        store=store,
        resume=resume,
        progress=progress,
        trace=trace,
    )
    return {key: result.summary_for(cell) for key, cell in cells_by_key.items()}


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    resume: bool = True,
    retries: int = 1,
    progress=None,
    mp_context: str | None = None,
) -> SweepResult:
    """Expand a :class:`SweepSpec` and execute it (see :func:`run_cells`)."""
    return run_cells(
        spec.cells(),
        workers=workers,
        store=store,
        resume=resume,
        retries=retries,
        progress=progress,
        mp_context=mp_context,
    )
