"""Report formatting: ASCII tables and paper-style comparisons."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "reduction_pct", "format_reduction"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table (right-aligned numerics, left-aligned text)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(parts: Sequence[str]) -> str:
        return "  ".join(p.rjust(w) for p, w in zip(parts, widths))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(list(headers)), sep] + [line(r) for r in cells])


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def reduction_pct(baseline: float, improved: float) -> float:
    """Percentage reduction relative to a baseline (the paper's headline
    comparison form, e.g. "reduces the average latency ... by 97%")."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (baseline - improved) / baseline


def format_reduction(metric: str, baseline: float, improved: float) -> str:
    return f"{metric}: {baseline:.4g} -> {improved:.4g} ({reduction_pct(baseline, improved):.1f}% reduction)"
