"""Leases: TTL-scoped keys, bound to the simulated clock.

GPU Managers attach their status keys to leases; if a manager dies (stops
refreshing), its keys disappear and the Scheduler stops dispatching to that
GPU — the standard etcd liveness pattern.
"""

from __future__ import annotations

import itertools

from ..sim import Event, Simulator
from .kv import KVStore

__all__ = ["Lease", "LeaseManager"]

_lease_ids = itertools.count(1)


class Lease:
    """A TTL lease; keys attached to it are deleted when it expires."""

    def __init__(self, mgr: "LeaseManager", ttl: float) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.lease_id = next(_lease_ids)
        self.ttl = float(ttl)
        self._mgr = mgr
        self.keys: set[str] = set()
        self.expired = False
        self.revoked = False
        self._timer: Event | None = None
        self._expiry_callbacks: list = []

    def on_expire(self, fn) -> None:
        """Register a callback fired when the lease *expires* (TTL runs out
        without a refresh).  Explicit :meth:`revoke` does not fire it — a
        clean shutdown is not a liveness failure.  Callbacks run after the
        lease's keys are reaped, so watchers of those keys have already
        been notified of the deletes."""
        if not self.alive:
            raise RuntimeError(f"lease {self.lease_id} is not alive")
        self._expiry_callbacks.append(fn)

    @property
    def alive(self) -> bool:
        return not (self.expired or self.revoked)

    def attach(self, key: str) -> None:
        if not self.alive:
            raise RuntimeError(f"lease {self.lease_id} is not alive")
        self.keys.add(key)

    def refresh(self) -> None:
        """Keep-alive: restart the TTL countdown."""
        if not self.alive:
            raise RuntimeError(f"cannot refresh dead lease {self.lease_id}")
        self._mgr._arm(self)

    def revoke(self) -> None:
        """Explicitly end the lease, deleting attached keys immediately."""
        if not self.alive:
            return
        self.revoked = True
        self._mgr._reap(self)


class LeaseManager:
    """Creates leases and reaps their keys on expiry."""

    def __init__(self, sim: Simulator, store: KVStore) -> None:
        self._sim = sim
        self._store = store
        self.leases: dict[int, Lease] = {}

    def grant(self, ttl: float) -> Lease:
        lease = Lease(self, ttl)
        self.leases[lease.lease_id] = lease
        self._arm(lease)
        return lease

    def _arm(self, lease: Lease) -> None:
        if lease._timer is not None:
            lease._timer.cancel()
        lease._timer = self._sim.schedule(lease.ttl, self._expire, lease)

    def _expire(self, lease: Lease) -> None:
        if not lease.alive:
            return
        lease.expired = True
        self._reap(lease)
        # liveness escalation: the health watchdog turns a missed-heartbeat
        # expiry into scheduling action (go_offline).  Fired after the reap
        # so the KV state already reflects the expiry.
        for fn in lease._expiry_callbacks:
            fn(lease)

    def _reap(self, lease: Lease) -> None:
        if lease._timer is not None:
            lease._timer.cancel()
            lease._timer = None
        for key in sorted(lease.keys):
            self._store.delete(key)
        lease.keys.clear()
        self.leases.pop(lease.lease_id, None)
