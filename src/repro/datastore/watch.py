"""Watches: change notification on keys and prefixes.

The Scheduler learns about GPU status changes and LRU-list updates through
watches rather than polling, mirroring how etcd clients consume the paper's
Datastore.  Delivery is synchronous by default (the store is in-process);
an optional :class:`~repro.sim.Simulator` adds a configurable notification
delay so experiments can model stale reads.

Delivery is **per commit**, not per key: the hub subscribes to the store's
batch hook, so an atomic multi-key transaction (one revision) produces one
delivery per matching watch — a :class:`WatchBatch` for coalesced watchers,
or the batch's events in order for plain ones.  Within a batch the store
has already coalesced writes last-write-wins per key, so a watcher never
sees intermediate values a transaction overwrote (etcd semantics).  With a
delivery delay this is also the scheduling win: one simulator event per
watch per commit instead of one per touched key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import groupby
from typing import Any, Callable

from ..sim import Simulator
from .kv import KeyValue, KVStore

__all__ = ["EventType", "WatchEvent", "WatchBatch", "Watch", "WatchHub"]


class EventType(enum.Enum):
    """Kind of mutation a watcher observed."""

    PUT = "put"
    DELETE = "delete"


@dataclass(frozen=True)
class WatchEvent:
    """One delivered change: key, new value (None for deletes), revision."""

    type: EventType
    key: str
    value: Any  # new value for PUT, None for DELETE
    revision: int


@dataclass(frozen=True)
class WatchBatch:
    """All of one commit's changes matching a coalesced watch.

    Mirrors an etcd watch response: every event shares ``revision`` (the
    committing transaction's revision) and keys are unique within the batch
    (the store coalesces last-write-wins before notifying).
    """

    revision: int
    events: tuple[WatchEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class Watch:
    """A single registration; cancel() stops delivery."""

    def __init__(
        self,
        hub: "WatchHub",
        key: str,
        prefix: bool,
        fn: Callable[..., None],
        coalesced: bool = False,
    ):
        self._hub = hub
        self.key = key
        self.prefix = prefix
        self.fn = fn
        #: True → ``fn`` receives one :class:`WatchBatch` per commit;
        #: False → ``fn`` receives individual :class:`WatchEvent` objects
        self.coalesced = coalesced
        self.cancelled = False
        self.delivered = 0  # individual events delivered
        self.batches_delivered = 0  # commits delivered

    def matches(self, key: str) -> bool:
        """Does this registration cover ``key``?"""
        return key.startswith(self.key) if self.prefix else key == self.key

    def cancel(self) -> None:
        """Stop delivery to this watch.  Idempotent."""
        self.cancelled = True
        self._hub._drop(self)


class WatchHub:
    """Dispatches store commits to registered watches."""

    def __init__(self, store: KVStore, sim: Simulator | None = None, delay: float = 0.0):
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if delay > 0 and sim is None:
            raise ValueError("a Simulator is required for delayed delivery")
        self._store = store
        self._sim = sim
        self._delay = delay
        self._watches: list[Watch] = []
        self._unsubscribe = store.subscribe_batch(self._on_commit)

    def watch(
        self,
        key: str,
        fn: Callable[..., None],
        *,
        prefix: bool = False,
        start_revision: int | None = None,
        coalesced: bool = False,
    ) -> Watch:
        """Register a watch; with ``start_revision`` the watcher first
        receives every historical mutation after that revision (etcd's
        "watch from revision" catch-up), then live events.  ``coalesced``
        watchers receive one :class:`WatchBatch` per commit — catch-up
        replay is grouped per historical revision the same way."""
        w = Watch(self, key, prefix, fn, coalesced)
        if start_revision is not None:
            for revision, group in groupby(
                self._store.events_since(start_revision), key=lambda e: e[0]
            ):
                events = tuple(
                    self._event(revision, ev_key, kv)
                    for _, ev_key, kv in group
                    if w.matches(ev_key)
                )
                if events:
                    self._deliver(w, revision, events)
        self._watches.append(w)
        return w

    def close(self) -> None:
        """Detach from the store and drop every watch."""
        self._unsubscribe()
        self._watches.clear()

    @property
    def active_watches(self) -> int:
        """Number of live registrations."""
        return len(self._watches)

    # ------------------------------------------------------------------
    @staticmethod
    def _event(revision: int, key: str, kv: KeyValue | None) -> WatchEvent:
        if kv is None:
            return WatchEvent(EventType.DELETE, key, None, revision)
        return WatchEvent(EventType.PUT, key, kv.value, revision)

    def _drop(self, w: Watch) -> None:
        if w in self._watches:
            self._watches.remove(w)

    def _on_commit(self, revision: int, items: list[tuple[str, KeyValue | None]]) -> None:
        events = [self._event(revision, key, kv) for key, kv in items]
        for w in list(self._watches):
            if w.cancelled:
                continue
            matched = tuple(ev for ev in events if w.matches(ev.key))
            if not matched:
                continue
            if self._delay > 0:
                assert self._sim is not None
                # one delivery event per watch per commit — the coalescing
                # win: a batch of N keys no longer schedules N callbacks
                self._sim.schedule(self._delay, self._deliver, w, revision, matched)
            else:
                self._deliver(w, revision, matched)

    @staticmethod
    def _deliver(w: Watch, revision: int, events: tuple[WatchEvent, ...]) -> None:
        if w.cancelled:
            return
        w.batches_delivered += 1
        if w.coalesced:
            w.delivered += len(events)
            w.fn(WatchBatch(revision, events))
            return
        for ev in events:
            if w.cancelled:
                return
            w.delivered += 1
            w.fn(ev)
