"""Watches: change notification on keys and prefixes.

The Scheduler learns about GPU status changes and LRU-list updates through
watches rather than polling, mirroring how etcd clients consume the paper's
Datastore.  Delivery is synchronous by default (the store is in-process);
an optional :class:`~repro.sim.Simulator` adds a configurable notification
delay so experiments can model stale reads.

Delivery is **per commit**, not per key: the hub subscribes to the store's
batch hook, so an atomic multi-key transaction (one revision) produces one
delivery per matching watch — a :class:`WatchBatch` for coalesced watchers,
or the batch's events in order for plain ones.  Within a batch the store
has already coalesced writes last-write-wins per key, so a watcher never
sees intermediate values a transaction overwrote (etcd semantics).  With a
delivery delay this is also the scheduling win: one simulator event per
watch per commit instead of one per touched key.

Backpressure: a delayed watcher built with ``max_pending=N`` queues its
commits in a bounded per-watcher buffer drained by a single in-flight
delivery event; overflow drops the *oldest* undelivered batch and counts it
in ``Watch.dropped_batches``.  The commit path therefore does O(1) work per
slow watcher regardless of how far it has fallen behind.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from itertools import groupby
from typing import Any, Callable

from ..sim import Simulator
from .kv import KeyValue, KVStore

__all__ = ["EventType", "WatchEvent", "WatchBatch", "Watch", "WatchHub"]


class EventType(enum.Enum):
    """Kind of mutation a watcher observed."""

    PUT = "put"
    DELETE = "delete"


@dataclass(frozen=True)
class WatchEvent:
    """One delivered change: key, new value (None for deletes), revision."""

    type: EventType
    key: str
    value: Any  # new value for PUT, None for DELETE
    revision: int


@dataclass(frozen=True)
class WatchBatch:
    """All of one commit's changes matching a coalesced watch.

    Mirrors an etcd watch response: every event shares ``revision`` (the
    committing transaction's revision) and keys are unique within the batch
    (the store coalesces last-write-wins before notifying).
    """

    revision: int
    events: tuple[WatchEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class Watch:
    """A single registration; cancel() stops delivery.

    ``max_pending`` (delayed delivery only) bounds the watcher's in-flight
    queue: each commit is enqueued rather than scheduled individually, a
    single drain event delivers the queue in order, and when the queue is
    full the **oldest** undelivered batch is dropped (``dropped_batches``
    counts them).  A slow or wedged watcher therefore consumes O(bound)
    memory and one pending simulator event instead of one per commit — it
    can no longer grow the commit path's delivery backlog without limit.
    """

    def __init__(
        self,
        hub: "WatchHub",
        key: str,
        prefix: bool,
        fn: Callable[..., None],
        coalesced: bool = False,
        max_pending: int | None = None,
    ):
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self._hub = hub
        self.key = key
        self.prefix = prefix
        self.fn = fn
        #: True → ``fn`` receives one :class:`WatchBatch` per commit;
        #: False → ``fn`` receives individual :class:`WatchEvent` objects
        self.coalesced = coalesced
        self.cancelled = False
        self.delivered = 0  # individual events delivered
        self.batches_delivered = 0  # commits delivered
        #: delivery-queue bound (None = unbounded, the default)
        self.max_pending = max_pending
        #: commits dropped (drop-oldest) because the queue was full
        self.dropped_batches = 0
        self._queue: deque[tuple[int, tuple[WatchEvent, ...]]] = deque()
        self._drain_scheduled = False

    def matches(self, key: str) -> bool:
        """Does this registration cover ``key``?"""
        return key.startswith(self.key) if self.prefix else key == self.key

    @property
    def pending_batches(self) -> int:
        """Undelivered commits currently queued (bounded watchers only)."""
        return len(self._queue)

    def _enqueue(self, revision: int, events: tuple[WatchEvent, ...]) -> None:
        if len(self._queue) >= self.max_pending:  # type: ignore[operator]
            self._queue.popleft()
            self.dropped_batches += 1
        self._queue.append((revision, events))

    def cancel(self) -> None:
        """Stop delivery to this watch.  Idempotent."""
        self.cancelled = True
        self._queue.clear()
        self._hub._drop(self)


class WatchHub:
    """Dispatches store commits to registered watches."""

    def __init__(self, store: KVStore, sim: Simulator | None = None, delay: float = 0.0):
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if delay > 0 and sim is None:
            raise ValueError("a Simulator is required for delayed delivery")
        self._store = store
        self._sim = sim
        self._delay = delay
        self._watches: list[Watch] = []
        # chaos windows (repro.chaos): while sim.now < _drop_until every
        # matched delivery is dropped; while sim.now < _spike_until every
        # delivery pays _spike_extra additional delay.  Both are 0.0 in
        # healthy runs, so the commit path's only cost is two falsy tests.
        self._drop_until = 0.0
        self._spike_until = 0.0
        self._spike_extra = 0.0
        #: commit deliveries suppressed by a chaos drop window
        self.chaos_dropped_batches = 0
        # lazy store attachment: a hub with no registrations costs the
        # commit path nothing (the common replay case — every commit used
        # to pay a fan-out call that found zero watchers)
        self._unsubscribe: Callable[[], None] | None = None

    def watch(
        self,
        key: str,
        fn: Callable[..., None],
        *,
        prefix: bool = False,
        start_revision: int | None = None,
        coalesced: bool = False,
        max_pending: int | None = None,
    ) -> Watch:
        """Register a watch; with ``start_revision`` the watcher first
        receives every historical mutation after that revision (etcd's
        "watch from revision" catch-up), then live events.  ``coalesced``
        watchers receive one :class:`WatchBatch` per commit — catch-up
        replay is grouped per historical revision the same way.
        ``max_pending`` bounds the delayed-delivery queue (drop-oldest; see
        :class:`Watch`); it has no effect on synchronous delivery, which
        never queues.

        Catch-up replay requires an event log: requesting
        ``start_revision`` for a registration that covers the store's
        ephemeral tier raises
        :class:`~repro.datastore.kv.EphemeralKeyError` (ephemeral keys are
        never event-logged — live delivery still works for them)."""
        w = Watch(self, key, prefix, fn, coalesced, max_pending)
        if start_revision is not None:
            self._store.check_replayable(key, prefix=prefix)
            for revision, group in groupby(
                self._store.events_since(start_revision), key=lambda e: e[0]
            ):
                events = tuple(
                    self._event(revision, ev_key, kv)
                    for _, ev_key, kv in group
                    if w.matches(ev_key)
                )
                if events:
                    self._deliver(w, revision, events)
        self._watches.append(w)
        if self._unsubscribe is None:
            self._unsubscribe = self._store.subscribe_batch(self._on_commit)
        return w

    def set_drop_window(self, until: float) -> None:
        """Drop every watch delivery until simulated time ``until`` (chaos:
        notification loss).  Dropped commits are *not* replayed afterwards —
        mirrors stay stale until the next write to the same keys, exactly
        like a real missed notification without a resync."""
        if self._sim is None:
            raise RuntimeError("a Simulator is required for chaos windows")
        self._drop_until = max(self._drop_until, until)

    def set_latency_spike(self, until: float, extra_delay_s: float) -> None:
        """Add ``extra_delay_s`` to every delivery until simulated time
        ``until`` (chaos: KV commit-latency spike as watchers observe it)."""
        if self._sim is None:
            raise RuntimeError("a Simulator is required for chaos windows")
        if extra_delay_s <= 0:
            raise ValueError("extra_delay_s must be positive")
        self._spike_until = max(self._spike_until, until)
        self._spike_extra = extra_delay_s

    def close(self) -> None:
        """Detach from the store and drop every watch."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._watches.clear()

    @property
    def active_watches(self) -> int:
        """Number of live registrations."""
        return len(self._watches)

    # ------------------------------------------------------------------
    @staticmethod
    def _event(revision: int, key: str, kv: KeyValue | None) -> WatchEvent:
        if kv is None:
            return WatchEvent(EventType.DELETE, key, None, revision)
        return WatchEvent(EventType.PUT, key, kv.value, revision)

    def _drop(self, w: Watch) -> None:
        if w in self._watches:
            self._watches.remove(w)

    def _on_commit(self, revision: int, items: list[tuple[str, KeyValue | None]]) -> None:
        if not self._watches:
            return  # the common un-watched store: no event objects built
        dropping = False
        delay = self._delay
        if self._drop_until:  # chaos windows; both 0.0 (falsy) when healthy
            if self._sim is not None and self._sim.now < self._drop_until:
                dropping = True
            else:
                self._drop_until = 0.0
        if self._spike_until:
            if self._sim is not None and self._sim.now < self._spike_until:
                delay += self._spike_extra
            else:
                self._spike_until = 0.0
                self._spike_extra = 0.0
        make = self._event
        for w in list(self._watches):
            if w.cancelled:
                continue
            # match on raw keys first; WatchEvents are only constructed for
            # commits a registration actually covers
            matches = w.matches
            matched = tuple(
                make(revision, key, kv) for key, kv in items if matches(key)
            )
            if not matched:
                continue
            if dropping:
                self.chaos_dropped_batches += 1
                continue
            if delay > 0:
                assert self._sim is not None
                if w.max_pending is not None:
                    # backpressure: bounded per-watcher queue drained by a
                    # single in-flight event (drop-oldest on overflow)
                    w._enqueue(revision, matched)
                    if not w._drain_scheduled:
                        w._drain_scheduled = True
                        self._sim.schedule(delay, self._drain, w)
                else:
                    # one delivery event per watch per commit — the
                    # coalescing win: a batch of N keys no longer
                    # schedules N callbacks
                    self._sim.schedule(delay, self._deliver, w, revision, matched)
            else:
                self._deliver(w, revision, matched)

    def _drain(self, w: Watch) -> None:
        """Deliver a bounded watcher's queued commits, oldest first.

        Only the batches queued when the drain fires are delivered: a
        commit issued by the watcher's own callback schedules a fresh
        drain ``delay`` later (the flag was cleared on entry) instead of
        being consumed in-flight, which would deliver it at the same
        simulated instant — and would let a self-retriggering watcher
        spin forever without the clock advancing.
        """
        w._drain_scheduled = False
        for _ in range(len(w._queue)):
            if w.cancelled or not w._queue:
                break
            revision, events = w._queue.popleft()
            self._deliver(w, revision, events)

    @staticmethod
    def _deliver(w: Watch, revision: int, events: tuple[WatchEvent, ...]) -> None:
        if w.cancelled:
            return
        w.batches_delivered += 1
        if w.coalesced:
            w.delivered += len(events)
            w.fn(WatchBatch(revision, events))
            return
        for ev in events:
            if w.cancelled:
                return
            w.delivered += 1
            w.fn(ev)
