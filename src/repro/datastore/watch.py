"""Watches: change notification on keys and prefixes.

The Scheduler learns about GPU status changes and LRU-list updates through
watches rather than polling, mirroring how etcd clients consume the paper's
Datastore.  Delivery is synchronous by default (the store is in-process);
an optional :class:`~repro.sim.Simulator` adds a configurable notification
delay so experiments can model stale reads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from ..sim import Simulator
from .kv import KeyValue, KVStore

__all__ = ["EventType", "WatchEvent", "Watch", "WatchHub"]


class EventType(enum.Enum):
    """Kind of mutation a watcher observed."""

    PUT = "put"
    DELETE = "delete"


@dataclass(frozen=True)
class WatchEvent:
    """One delivered change: key, new value (None for deletes), revision."""

    type: EventType
    key: str
    value: Any  # new value for PUT, None for DELETE
    revision: int


class Watch:
    """A single registration; cancel() stops delivery."""

    def __init__(self, hub: "WatchHub", key: str, prefix: bool, fn: Callable[[WatchEvent], None]):
        self._hub = hub
        self.key = key
        self.prefix = prefix
        self.fn = fn
        self.cancelled = False
        self.delivered = 0

    def matches(self, key: str) -> bool:
        """Does this registration cover ``key``?"""
        return key.startswith(self.key) if self.prefix else key == self.key

    def cancel(self) -> None:
        """Stop delivery to this watch.  Idempotent."""
        self.cancelled = True
        self._hub._drop(self)


class WatchHub:
    """Dispatches store mutations to registered watches."""

    def __init__(self, store: KVStore, sim: Simulator | None = None, delay: float = 0.0):
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if delay > 0 and sim is None:
            raise ValueError("a Simulator is required for delayed delivery")
        self._store = store
        self._sim = sim
        self._delay = delay
        self._watches: list[Watch] = []
        self._unsubscribe = store.subscribe(self._on_mutation)

    def watch(
        self,
        key: str,
        fn: Callable[[WatchEvent], None],
        *,
        prefix: bool = False,
        start_revision: int | None = None,
    ) -> Watch:
        """Register a watch; with ``start_revision`` the watcher first
        receives every historical mutation after that revision (etcd's
        "watch from revision" catch-up), then live events."""
        w = Watch(self, key, prefix, fn)
        if start_revision is not None:
            for revision, ev_key, kv in self._store.events_since(start_revision):
                if not w.matches(ev_key):
                    continue
                if kv is None:
                    ev = WatchEvent(EventType.DELETE, ev_key, None, revision)
                else:
                    ev = WatchEvent(EventType.PUT, ev_key, kv.value, revision)
                self._deliver(w, ev)
        self._watches.append(w)
        return w

    def close(self) -> None:
        """Detach from the store and drop every watch."""
        self._unsubscribe()
        self._watches.clear()

    @property
    def active_watches(self) -> int:
        """Number of live registrations."""
        return len(self._watches)

    # ------------------------------------------------------------------
    def _drop(self, w: Watch) -> None:
        if w in self._watches:
            self._watches.remove(w)

    def _on_mutation(self, key: str, kv: KeyValue | None, revision: int) -> None:
        if kv is None:
            ev = WatchEvent(EventType.DELETE, key, None, revision)
        else:
            ev = WatchEvent(EventType.PUT, key, kv.value, revision)
        for w in list(self._watches):
            if w.cancelled or not w.matches(key):
                continue
            if self._delay > 0:
                assert self._sim is not None
                self._sim.schedule(self._delay, self._deliver, w, ev)
            else:
                self._deliver(w, ev)

    @staticmethod
    def _deliver(w: Watch, ev: WatchEvent) -> None:
        if not w.cancelled:
            w.delivered += 1
            w.fn(ev)
