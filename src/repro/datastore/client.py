"""Datastore facade and the key schema shared by the FaaS components.

:class:`Datastore` bundles the MVCC store, watch hub, and lease manager.
:class:`DatastoreClient` adds a key-prefix namespace per component.

Key schema (paper §III-E: "The Datastore stores the estimated latency of
each inference request, the LRU list of each GPU, and the status of each
GPU"):

==============================  =============================================
key                             value
==============================  =============================================
``gpu/status/<gpu_id>``         ``"busy"`` | ``"idle"``
``gpu/finish_time/<gpu_id>``    float, absolute estimated finish time
``gpu/lru/<gpu_id>``            list[str], LRU order (head = coldest)
``cache/locations/<model>``     list[str], GPUs where the model is resident
``fn/meta/<fn_name>``           dict, registered-function metadata
``fn/latency/<request_id>``     dict, per-invocation latency record
``fn/scale/<fn_name>``          int, current replica count
==============================  =============================================
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim import Simulator
from .kv import KeyValue, KVStore
from .lease import Lease, LeaseManager
from .txn import Txn
from .watch import Watch, WatchEvent, WatchHub

__all__ = ["Datastore", "DatastoreClient"]


class Datastore:
    """The system-wide etcd-like store (KV + watches + leases + txns)."""

    def __init__(self, sim: Simulator, *, watch_delay: float = 0.0) -> None:
        self.sim = sim
        self.kv = KVStore()
        self.watches = WatchHub(self.kv, sim=sim, delay=watch_delay)
        self.leases = LeaseManager(sim, self.kv)

    def client(self, namespace: str = "") -> "DatastoreClient":
        """A client view under ``namespace`` (empty = root)."""
        return DatastoreClient(self, namespace)

    def txn(self) -> Txn:
        """Start an atomic transaction on the root keyspace."""
        return Txn(self.kv)


class DatastoreClient:
    """A view of the Datastore under a key prefix (etcd namespacing)."""

    def __init__(self, store: Datastore, namespace: str = "") -> None:
        if namespace and not namespace.endswith("/"):
            namespace += "/"
        self._store = store
        self.namespace = namespace

    # ------------------------------------------------------------------
    def _k(self, key: str) -> str:
        return self.namespace + key

    def put(self, key: str, value: Any, *, lease: Lease | None = None) -> KeyValue:
        """Write a namespaced key (optionally bound to a lease)."""
        kv = self._store.kv.put(self._k(key), value)
        if lease is not None:
            lease.attach(self._k(key))
        return kv

    def get(self, key: str, default: Any = None) -> Any:
        """Latest value of a namespaced key, or ``default``."""
        return self._store.kv.get_value(self._k(key), default)

    def get_kv(self, key: str) -> KeyValue | None:
        """Full KeyValue (with revisions) of a namespaced key."""
        return self._store.kv.get(self._k(key))

    def delete(self, key: str) -> bool:
        """Delete a namespaced key; True if it existed."""
        return self._store.kv.delete(self._k(key))

    def range(self, prefix: str) -> dict[str, Any]:
        """Live key→value pairs under ``prefix`` (namespace stripped)."""
        full = self._k(prefix)
        n = len(self.namespace)
        return {kv.key[n:]: kv.value for kv in self._store.kv.range(full)}

    def watch(
        self, key: str, fn: Callable[[WatchEvent], None], *, prefix: bool = False
    ) -> Watch:
        """Watch a namespaced key (or prefix) for changes."""
        return self._store.watches.watch(self._k(key), fn, prefix=prefix)

    def lease(self, ttl: float) -> Lease:
        """Grant a TTL lease from the shared lease manager."""
        return self._store.leases.grant(ttl)

    def txn(self) -> Txn:
        if self.namespace:
            raise RuntimeError(
                "transactions are namespace-unaware; build them on Datastore.txn() "
                "with fully qualified keys"
            )
        return self._store.txn()
