"""Datastore facade and the key schema shared by the FaaS components.

:class:`Datastore` bundles the MVCC store, watch hub, lease manager, and —
when built with ``batched=True`` — the control plane's shared
:class:`~repro.datastore.batch.WriteBatch`.  :class:`DatastoreClient` adds
a key-prefix namespace per component.

Key schema (paper §III-E: "The Datastore stores the estimated latency of
each inference request, the LRU list of each GPU, and the status of each
GPU"):

==============================  =============================================
key                             value
==============================  =============================================
``gpu/status/<gpu_id>``         ``"busy"`` | ``"idle"``
``gpu/finish_time/<gpu_id>``    float, absolute estimated finish time
``gpu/lru/<gpu_id>``            tuple[str, ...], LRU order (head = coldest)
``cache/locations/<model>``     tuple[str, ...], GPUs where the model is resident
``fn/meta/<fn_name>``           dict, registered-function metadata
``fn/latency/<request_id>``     ``LatencyRecord``, per-invocation latency record
``fn/scale/<fn_name>``          int, current replica count
==============================  =============================================

Batched write path
------------------
With ``batched=True`` every client ``put``/``delete``/``put_lazy`` lands in
the Datastore's single pending :class:`WriteBatch` instead of committing
immediately.  All writes of one scheduling action — a cache touch, the GPU
status flip, the finish-time estimate, the latency record — then flush as
**one atomic transaction → one revision → one coalesced watch batch**
(last-write-wins per key).  Flushing happens at the control plane's action
boundaries: the Scheduler's entry points, the Gateway's CRUD/invoke calls,
and (as the safety net covering every other event handler) a simulator
post-event hook.  Client reads overlay the pending batch, so components
keep read-your-writes semantics between flushes.  ``batched=False`` (the
default for a bare :class:`Datastore`) preserves the literal one-revision-
per-put path.

Ephemeral-key tier
------------------
``ephemeral_prefixes=(...)`` routes matching keys (typically the
high-churn ``gpu/status/*`` / ``gpu/finish_time/*`` / ``fn/latency/*``
status keys) through the store's fast lane: identical live reads,
read-your-writes, and watch delivery, but no MVCC history or event-log
records — historical reads of those keys raise
:class:`~repro.datastore.kv.EphemeralKeyError`.  See :mod:`.kv`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..sim import Simulator
from .batch import DELETE, WriteBatch
from .kv import KeyValue, KVStore
from .lease import Lease, LeaseManager
from .txn import Txn
from .watch import Watch, WatchEvent, WatchHub

__all__ = ["Datastore", "DatastoreClient", "WriteStats"]

#: bounded settle loop: a flush may wake watchers that issue new writes;
#: they flush too, but a watcher that writes on every delivery would
#: otherwise spin forever
_MAX_FLUSH_CASCADE = 25


@dataclass
class WriteStats:
    """Write-amplification counters for the control-plane write path.

    ``logical_writes`` counts every client ``put``/``put_lazy``/``delete``
    call — what the components *asked* for, in either mode.  ``flushes``,
    ``committed_keys``, and ``coalesced_writes`` describe the batched path
    only (they stay 0 with batching off, where every logical write commits
    individually and the revision counter tracks the logical stream).
    Revisions come from ``kv.revision``; ``writes-per-revision`` (logical /
    revisions) is the amplification the batched path removes.
    """

    logical_writes: int = 0
    flushes: int = 0
    committed_keys: int = 0
    coalesced_writes: int = field(default=0)  # logical writes absorbed by LWW

    def as_dict(self) -> dict[str, int]:
        return {
            "logical_writes": self.logical_writes,
            "flushes": self.flushes,
            "committed_keys": self.committed_keys,
            "coalesced_writes": self.coalesced_writes,
        }


class Datastore:
    """The system-wide etcd-like store (KV + watches + leases + txns)."""

    def __init__(
        self,
        sim: Simulator,
        *,
        watch_delay: float = 0.0,
        batched: bool = False,
        ephemeral_prefixes: tuple[str, ...] = (),
    ) -> None:
        self.sim = sim
        self.kv = KVStore(ephemeral_prefixes=ephemeral_prefixes)
        self.watches = WatchHub(self.kv, sim=sim, delay=watch_delay)
        self.leases = LeaseManager(sim, self.kv)
        self.batched = batched
        self.pending = WriteBatch(self.kv)
        self.stats = WriteStats()
        if batched:
            # The action boundary: whatever writes a simulator event handler
            # issued commit as one transaction once the handler returns.
            # The hook closes over the batch's stable pending dict so the
            # no-op path — most events write nothing — is one truthiness
            # test instead of a flush call that discovers it has no work.
            pending_map = self.pending.pending_map
            flush = self.flush

            def _post_event_flush() -> None:
                if pending_map:
                    flush()

            sim.subscribe_post_event(_post_event_flush)

    def client(self, namespace: str = "") -> "DatastoreClient":
        """A client view under ``namespace`` (empty = root)."""
        return DatastoreClient(self, namespace)

    def txn(self) -> Txn:
        """Start an atomic transaction on the root keyspace."""
        return Txn(self.kv)

    def flush(self) -> int:
        """Commit the pending write batch; returns keys committed.

        No-op when nothing is pending (or batching is off and clients wrote
        through).  Watcher callbacks may issue new writes during delivery;
        those are flushed too (bounded), so the pending set is empty when
        this returns under any sane watcher graph.
        """
        pending = self.pending
        if not pending._pending:
            return 0  # fast exit: this runs after *every* simulator event
        stats = self.stats
        committed = 0
        for _ in range(_MAX_FLUSH_CASCADE):
            stats.coalesced_writes += pending.overwritten
            pending.overwritten = 0
            commit = pending.flush()
            if commit.revision is not None:
                stats.flushes += 1
                # commit.count, not len(commit.events): the hookless flush
                # fast path commits without materializing event tuples
                n = commit.count
                stats.committed_keys += n
                committed += n
            if not pending._pending:
                break
        return committed


class DatastoreClient:
    """A view of the Datastore under a key prefix (etcd namespacing).

    In batched mode writes accumulate in the shared
    :class:`~repro.datastore.batch.WriteBatch` and reads overlay it
    (read-your-writes); :meth:`flush` commits at an action boundary.
    """

    def __init__(self, store: Datastore, namespace: str = "") -> None:
        if namespace and not namespace.endswith("/"):
            namespace += "/"
        self._store = store
        self.namespace = namespace

    # ------------------------------------------------------------------
    def _k(self, key: str) -> str:
        return self.namespace + key

    def put(self, key: str, value: Any, *, lease: Lease | None = None) -> KeyValue | None:
        """Write a namespaced key (optionally bound to a lease).

        Batched mode defers the write to the next flush and returns None
        (no :class:`KeyValue` exists until the transaction commits).
        """
        store = self._store
        store.stats.logical_writes += 1
        if store.batched:
            store.pending.put(self.namespace + key, value, lease=lease)
            return None
        kv = store.kv.put(self._k(key), value)
        if lease is not None:
            lease.attach(self._k(key))
        return kv

    def put_lazy(
        self, key: str, thunk: Callable[[], Any], *, lease: Lease | None = None
    ) -> None:
        """Mark a namespaced key dirty; ``thunk()`` supplies the value at
        flush time (:data:`~repro.datastore.batch.DELETE` → delete it).

        This is the dirty-key write path: between flushes any number of
        marks serialize the value once.  Unbatched it degenerates to an
        immediate ``put`` (or ``delete``) of ``thunk()``'s result.
        """
        store = self._store
        store.stats.logical_writes += 1
        if store.batched:
            store.pending.put_lazy(self.namespace + key, thunk, lease=lease)
            return
        value = thunk()
        if value is DELETE:
            self._store.kv.delete(self._k(key))
            return
        self._store.kv.put(self._k(key), value)
        if lease is not None:
            lease.attach(self._k(key))

    def get(self, key: str, default: Any = None) -> Any:
        """Latest value of a namespaced key, or ``default``.

        Batched mode overlays the pending batch (read-your-writes).
        """
        full = self._k(key)
        if self._store.batched:
            pending = self._store.pending.peek(full)
            if pending is not None:
                kind, value = pending
                return default if kind == "delete" else value
        return self._store.kv.get_value(full, default)

    def get_kv(self, key: str) -> KeyValue | None:
        """Full KeyValue (with revisions) of a namespaced key.

        Always reads *committed* state: a pending batched write has no
        revision metadata until its transaction commits.
        """
        return self._store.kv.get(self._k(key))

    def delete(self, key: str) -> bool:
        """Delete a namespaced key; True if it (visibly) existed."""
        self._store.stats.logical_writes += 1
        full = self._k(key)
        if self._store.batched:
            pending = self._store.pending.peek(full)
            existed = (
                pending[0] == "put" if pending is not None else full in self._store.kv
            )
            self._store.pending.delete(full)
            return existed
        return self._store.kv.delete(full)

    def range(self, prefix: str) -> dict[str, Any]:
        """Live key→value pairs under ``prefix`` (namespace stripped).

        Batched mode merges the pending batch over the committed range.
        """
        full = self._k(prefix)
        n = len(self.namespace)
        out = {kv.key[n:]: kv.value for kv in self._store.kv.range(full)}
        if self._store.batched:
            for key, kind, value in self._store.pending.pending_items():
                if not key.startswith(full):
                    continue
                if kind == "delete":
                    out.pop(key[n:], None)
                else:
                    out[key[n:]] = value
        return out

    def watch(
        self,
        key: str,
        fn: Callable[..., None],
        *,
        prefix: bool = False,
        start_revision: int | None = None,
        coalesced: bool = False,
        max_pending: int | None = None,
    ) -> Watch:
        """Watch a namespaced key (or prefix) for changes.

        ``start_revision`` first replays every historical mutation after
        that revision (etcd's "watch from revision"); registrations that
        cover the store's ephemeral tier raise
        :class:`~repro.datastore.kv.EphemeralKeyError` — those mutations
        were never event-logged.  ``coalesced=True`` delivers one
        :class:`~repro.datastore.watch.WatchBatch` per committed
        transaction instead of individual events.  ``max_pending`` bounds
        a delayed watcher's delivery queue (drop-oldest backpressure; see
        :class:`~repro.datastore.watch.Watch`).
        """
        return self._store.watches.watch(
            self._k(key),
            fn,
            prefix=prefix,
            start_revision=start_revision,
            coalesced=coalesced,
            max_pending=max_pending,
        )

    def lease(self, ttl: float) -> Lease:
        """Grant a TTL lease from the shared lease manager."""
        return self._store.leases.grant(ttl)

    def flush(self) -> int:
        """Commit the Datastore's pending write batch (action boundary)."""
        return self._store.flush()

    def txn(self) -> Txn:
        if self.namespace:
            raise RuntimeError(
                "transactions are namespace-unaware; build them on Datastore.txn() "
                "with fully qualified keys"
            )
        return self._store.txn()
