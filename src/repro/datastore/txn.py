"""etcd-style transactions: If(compares) / Then(ops) / Else(ops).

Used wherever two components race on the same key — e.g. the Cache Manager
claiming memory headroom on a GPU while a GPU Manager concurrently reports
an eviction — to get compare-and-swap semantics out of the Datastore.

A committed transaction's mutations apply through
:meth:`~repro.datastore.kv.KVStore.apply_batch`: **one revision bump for
the whole branch**, last-write-wins per key, one coalesced watch batch —
matching etcd, where a txn response carries a single header revision no
matter how many ops the winning branch ran.  ``get`` ops observe the
transaction's final (post-commit) state.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Any

from .kv import KVStore, KeyValue

__all__ = ["CompareTarget", "Compare", "Op", "TxnResult", "Txn"]


class CompareTarget(enum.Enum):
    """Which attribute of a key a :class:`Compare` guard inspects."""

    VALUE = "value"
    VERSION = "version"
    MOD_REVISION = "mod_revision"
    CREATE_REVISION = "create_revision"
    EXISTS = "exists"


_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Compare:
    """A guard on one key, e.g. ``Compare("k", CompareTarget.VERSION, "==", 3)``."""

    key: str
    target: CompareTarget
    op: str
    operand: Any

    def evaluate(self, kv: KeyValue | None) -> bool:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")
        if self.target is CompareTarget.EXISTS:
            return _OPS[self.op](kv is not None, self.operand)
        if kv is None:
            # etcd treats a missing key as version/mod_revision/create_revision 0.
            actual: Any = 0 if self.target is not CompareTarget.VALUE else None
        else:
            actual = getattr(kv, self.target.value)
        try:
            return _OPS[self.op](actual, self.operand)
        except TypeError:
            return False


@dataclass(frozen=True)
class Op:
    """A mutation or read executed by the winning branch."""

    kind: str  # "put" | "delete" | "get"
    key: str
    value: Any = None

    @staticmethod
    def put(key: str, value: Any) -> "Op":
        return Op("put", key, value)

    @staticmethod
    def delete(key: str) -> "Op":
        return Op("delete", key)

    @staticmethod
    def get(key: str) -> "Op":
        return Op("get", key)


@dataclass(frozen=True)
class TxnResult:
    succeeded: bool
    responses: tuple[Any, ...]


class Txn:
    """Build and commit an atomic transaction against a :class:`KVStore`.

    >>> store = KVStore()
    >>> _ = store.put("x", 1)
    >>> res = (Txn(store)
    ...        .when(Compare("x", CompareTarget.VALUE, "==", 1))
    ...        .then(Op.put("x", 2))
    ...        .otherwise(Op.get("x"))
    ...        .commit())
    >>> res.succeeded, store.get_value("x")
    (True, 2)
    """

    def __init__(self, store: KVStore) -> None:
        self._store = store
        self._compares: list[Compare] = []
        self._then: list[Op] = []
        self._else: list[Op] = []
        self._committed = False

    def when(self, *compares: Compare) -> "Txn":
        self._compares.extend(compares)
        return self

    def then(self, *ops: Op) -> "Txn":
        self._then.extend(ops)
        return self

    def otherwise(self, *ops: Op) -> "Txn":
        self._else.extend(ops)
        return self

    def commit(self) -> TxnResult:
        """Atomically evaluate guards and run the chosen branch.

        The branch's mutations are applied via ``KVStore.apply_batch``:
        all-or-nothing under a single revision bump, coalesced last-write-
        wins per key, and announced to watchers as one batch.  Put
        responses carry the key's committed :class:`KeyValue` — the final
        one when several ops touched the key, or None when a later op in
        the same branch deleted it (etcd forbids duplicate keys in a txn
        outright; we coalesce instead).  Delete responses report whether
        the key existed before the transaction, and get responses read the
        post-commit state.
        """
        if self._committed:
            raise RuntimeError("transaction already committed")
        self._committed = True
        succeeded = all(c.evaluate(self._store.get(c.key)) for c in self._compares)
        branch = self._then if succeeded else self._else
        mutations: list[tuple] = []
        for op in branch:
            if op.kind == "put":
                mutations.append(("put", op.key, op.value))
            elif op.kind == "delete":
                mutations.append(("delete", op.key))
            elif op.kind != "get":
                raise ValueError(f"unknown op kind {op.kind!r}")
        commit = self._store.apply_batch(mutations) if mutations else None
        responses: list[Any] = []
        for op in branch:
            if op.kind == "put":
                responses.append(self._store.get(op.key))
            elif op.kind == "delete":
                responses.append(commit.existed[op.key] if commit else False)
            else:
                responses.append(self._store.get(op.key))
        return TxnResult(succeeded=succeeded, responses=tuple(responses))
