"""etcd-like Datastore: MVCC KV store, watches, leases, transactions, and
the control plane's batched write path (:class:`WriteBatch`).

Mutations commit either one-per-revision (``KVStore.put``/``delete``) or as
atomic multi-key batches (``KVStore.apply_batch`` — one revision,
last-write-wins per key, one coalesced watch delivery), which is what
``Datastore(batched=True)`` builds the control-plane write path on.
"""

from .batch import DELETE, WriteBatch
from .client import Datastore, DatastoreClient, WriteStats
from .kv import BatchCommit, CompactedError, EphemeralKeyError, KeyValue, KVStore
from .lease import Lease, LeaseManager
from .txn import Compare, CompareTarget, Op, Txn, TxnResult
from .watch import EventType, Watch, WatchBatch, WatchEvent, WatchHub

__all__ = [
    "Datastore",
    "DatastoreClient",
    "WriteStats",
    "BatchCommit",
    "CompactedError",
    "EphemeralKeyError",
    "KeyValue",
    "KVStore",
    "DELETE",
    "WriteBatch",
    "Lease",
    "LeaseManager",
    "Compare",
    "CompareTarget",
    "Op",
    "Txn",
    "TxnResult",
    "EventType",
    "Watch",
    "WatchBatch",
    "WatchEvent",
    "WatchHub",
]
