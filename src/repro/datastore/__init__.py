"""etcd-like Datastore: MVCC KV store, watches, leases, transactions."""

from .client import Datastore, DatastoreClient
from .kv import CompactedError, KeyValue, KVStore
from .lease import Lease, LeaseManager
from .txn import Compare, CompareTarget, Op, Txn, TxnResult
from .watch import EventType, Watch, WatchEvent, WatchHub

__all__ = [
    "Datastore",
    "DatastoreClient",
    "CompactedError",
    "KeyValue",
    "KVStore",
    "Lease",
    "LeaseManager",
    "Compare",
    "CompareTarget",
    "Op",
    "Txn",
    "TxnResult",
    "EventType",
    "Watch",
    "WatchEvent",
    "WatchHub",
]
