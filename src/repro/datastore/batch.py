"""The control plane's batched write path: :class:`WriteBatch`.

Every scheduling action in the paper's control plane touches several
Datastore keys — an LRU list, a model's locations, the GPU's status and
estimated finish time, a latency record.  Issued as individual ``put``
calls each one bumps the MVCC revision and synchronously fans out watch
notifications; real etcd clients instead batch related mutations into one
transaction and receive one watch response per revision.

A :class:`WriteBatch` accumulates those dirty keys and commits them with
one :meth:`KVStore.apply_batch` call: **one atomic transaction → one
revision → one coalesced watch batch**, last-write-wins per key.  Two
kinds of entry exist:

* ``put(key, value)`` / ``delete(key)`` — eager: the value is captured at
  call time (repeated writes to one key keep only the last);
* ``put_lazy(key, thunk)`` — a *dirty-key* entry: only the key is marked
  dirty and ``thunk()`` is evaluated once at flush time.  This is how the
  Cache Manager mirrors LRU lists — ten touches between flushes serialize
  the eviction order once, not ten times.  A thunk may return
  :data:`DELETE` to turn the entry into a delete (e.g. a model's location
  list becoming empty).

The batch also answers overlay reads (:meth:`peek`) so a batched
:class:`~repro.datastore.client.DatastoreClient` keeps read-your-writes
semantics between flushes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from .kv import BatchCommit, KVStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lease import Lease

__all__ = ["DELETE", "WriteBatch"]


class _Delete:
    """Sentinel a lazy thunk returns to request deletion of its key."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DELETE>"


DELETE = _Delete()

_PUT = "put"
_LAZY = "lazy"
_DEL = "delete"
#: shared singleton delete op — one commit may carry many deletes and the
#: coalesced map needs no per-entry state for them
_DELETE_OP = ("delete",)


class WriteBatch:
    """Accumulates puts/deletes; :meth:`flush` commits them as one txn."""

    def __init__(self, store: KVStore) -> None:
        self._store = store
        # key -> (kind, payload, lease, fresh); insertion order = first-touch
        # order, which becomes the committed batch's event order.  ``fresh``
        # marks a put that overwrote a pending delete: the flush re-emits the
        # delete before it so the store recreates the key (version 1), just
        # as the sequential delete-then-put would have.
        #
        # The dict object is stable for the batch's lifetime (flush drains
        # it in place): the Datastore's per-event safety-net hook closes
        # over it so the no-op path is a single truthiness test.
        self._pending: dict[str, tuple[str, Any, "Lease | None", bool]] = {}
        #: writes absorbed by last-write-wins since the last flush — each
        #: one is a revision bump (and watch fan-out) the batch removed
        self.overwritten = 0

    @property
    def pending_map(self) -> dict:
        """The live pending dict (stable identity; treat as read-only)."""
        return self._pending

    # ------------------------------------------------------------------
    # Accumulation (put/put_lazy carry the same body rather than sharing a
    # helper: these run several times per scheduling action, and the extra
    # call layer was measurable on the replay hot path)
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, *, lease: "Lease | None" = None) -> None:
        """Record a put; overwrites any pending entry for ``key``."""
        prior = self._pending.get(key)
        fresh = False
        if prior is not None:
            self.overwritten += 1
            fresh = prior[0] is _DEL or prior[3]  # put lands over a delete
        self._pending[key] = (_PUT, value, lease, fresh)

    def put_lazy(
        self, key: str, thunk: Callable[[], Any], *, lease: "Lease | None" = None
    ) -> None:
        """Mark ``key`` dirty; ``thunk()`` supplies the value at flush time
        (or :data:`DELETE` to delete the key instead)."""
        prior = self._pending.get(key)
        fresh = False
        if prior is not None:
            self.overwritten += 1
            fresh = prior[0] is _DEL or prior[3]
        self._pending[key] = (_LAZY, thunk, lease, fresh)

    def delete(self, key: str) -> None:
        """Record a delete; overwrites any pending entry for ``key``."""
        if key in self._pending:
            self.overwritten += 1
        self._pending[key] = (_DEL, None, None, False)

    # ------------------------------------------------------------------
    # Overlay reads (read-your-writes between flushes)
    # ------------------------------------------------------------------
    def peek(self, key: str) -> tuple[str, Any] | None:
        """Pending state of ``key``: ``("put", value)``, ``("delete",
        None)``, or None when the batch does not touch it.  Lazy thunks are
        evaluated fresh — they reflect the live component state that would
        be committed if the flush happened now."""
        entry = self._pending.get(key)
        if entry is None:
            return None
        kind, payload, _, _ = entry
        if kind == _LAZY:
            value = payload()
            return (_DEL, None) if value is DELETE else (_PUT, value)
        return (kind, payload)

    def pending_items(self) -> Iterator[tuple[str, str, Any]]:
        """Iterate ``(key, kind, value)`` of every pending entry (lazy
        thunks evaluated), for range-overlay reads."""
        for key in list(self._pending):
            resolved = self.peek(key)
            if resolved is not None:
                yield key, resolved[0], resolved[1]

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __contains__(self, key: str) -> bool:
        return key in self._pending

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def flush(self) -> BatchCommit:
        """Commit every pending entry as one atomic transaction.

        Lazy thunks are resolved now, leases attach to their committed
        keys, and the pending set is cleared *before* the store applies the
        batch so watcher callbacks that issue new writes start the next
        batch instead of mutating the one being committed.  (Thunks are
        value *serializers*: they must not write back into the batch —
        they run while the pending map is being drained in place.)
        """
        pending = self._pending
        if not pending:
            return BatchCommit(revision=None, events=(), existed={})
        # hand the store the coalesced {key: op} map it would have rebuilt
        # from an op list anyway; ``fresh`` puts replay their absorbed
        # delete inside the store (key recreated at version 1), exactly as
        # the sequential delete-then-put would have
        coalesced: dict[str, tuple] = {}
        leases: list[tuple[str, "Lease"]] | None = None
        for key, (kind, payload, lease, fresh) in pending.items():
            if kind is _LAZY:
                value = payload()
                if value is DELETE:
                    coalesced[key] = _DELETE_OP
                    continue
                kind, payload = _PUT, value
            if kind is _PUT:
                coalesced[key] = (_PUT, payload, fresh)
                if lease is not None:
                    if leases is None:
                        leases = []
                    leases.append((key, lease))
            else:
                coalesced[key] = _DELETE_OP
        # clear in place *after* building the op map but *before* applying:
        # the dict keeps its identity (the post-event hook closes over it)
        # and watcher callbacks fired by the commit start the next batch
        # instead of mutating the one being committed
        pending.clear()
        # the per-action flush discards the pre-commit liveness map, so
        # skip building it (transactions use apply_batch, which keeps it)
        commit = self._store._apply_coalesced(coalesced, want_existed=False)
        if leases is not None and commit.revision is not None:
            for key, lease in leases:
                if lease.alive:
                    lease.attach(key)
        return commit
