"""The control plane's batched write path: :class:`WriteBatch`.

Every scheduling action in the paper's control plane touches several
Datastore keys — an LRU list, a model's locations, the GPU's status and
estimated finish time, a latency record.  Issued as individual ``put``
calls each one bumps the MVCC revision and synchronously fans out watch
notifications; real etcd clients instead batch related mutations into one
transaction and receive one watch response per revision.

A :class:`WriteBatch` accumulates those dirty keys and commits them with
one :meth:`KVStore.apply_batch` call: **one atomic transaction → one
revision → one coalesced watch batch**, last-write-wins per key.  Two
kinds of entry exist:

* ``put(key, value)`` / ``delete(key)`` — eager: the value is captured at
  call time (repeated writes to one key keep only the last);
* ``put_lazy(key, thunk)`` — a *dirty-key* entry: only the key is marked
  dirty and ``thunk()`` is evaluated once at flush time.  This is how the
  Cache Manager mirrors LRU lists — ten touches between flushes serialize
  the eviction order once, not ten times.  A thunk may return
  :data:`DELETE` to turn the entry into a delete (e.g. a model's location
  list becoming empty).

The batch also answers overlay reads (:meth:`peek`) so a batched
:class:`~repro.datastore.client.DatastoreClient` keeps read-your-writes
semantics between flushes.

Ephemeral keys need no special handling here: they accumulate, coalesce,
overlay, and commit exactly like durable keys — the fast lane lives in
:meth:`KVStore._apply_put`/``_apply_delete``, where a committed ephemeral
key skips the history/event-log bookkeeping the batch's transaction would
otherwise pay per key.  The flush's coalesced map is handed to
``KVStore._apply_coalesced`` unchanged either way.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import TYPE_CHECKING, Any, Callable, Iterator

from .kv import BatchCommit, KVStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lease import Lease

__all__ = ["DELETE", "WriteBatch"]


class _Delete:
    """Sentinel a lazy thunk returns to request deletion of its key."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DELETE>"


DELETE = _Delete()

_PUT = "put"
_LAZY = "lazy"
_DEL = "delete"
#: shared singleton delete op — one commit may carry many deletes and the
#: coalesced map needs no per-entry state for them
_DELETE_OP = (_DEL,)


class WriteBatch:
    """Accumulates puts/deletes; :meth:`flush` commits them as one txn."""

    #: optional flight recorder (installed by the runtime when tracing is
    #: on); a class attribute so the hookless flush pays one attribute
    #: load + identity test and no per-instance slot
    _tracer = None

    def __init__(self, store: KVStore) -> None:
        self._store = store
        # key -> ("put", value, fresh) | ("lazy", thunk, fresh) | ("delete",)
        # — the *same* entry shapes ``KVStore._apply_coalesced`` consumes, so
        # the flush hands over a plain ``dict.copy()`` instead of re-minting
        # one tuple per key.  Insertion order = first-touch order, which
        # becomes the committed batch's event order.  ``fresh`` marks a put
        # that overwrote a pending delete: the flush re-emits the delete
        # before it so the store recreates the key (version 1), just as the
        # sequential delete-then-put would have.
        #
        # The dict object is stable for the batch's lifetime (flush drains
        # it in place): the Datastore's per-event safety-net hook closes
        # over it so the no-op path is a single truthiness test.
        self._pending: dict[str, tuple] = {}
        #: keys whose latest put/put_lazy carried a lease (rare: only lease
        #: users pay for it; the empty-dict truthiness test on the lease-less
        #: path is one attribute load)
        self._leases: dict[str, "Lease"] = {}
        #: count of pending lazy entries, so a flush with none skips the
        #: thunk-resolution pass entirely
        self._lazy = 0
        #: writes absorbed by last-write-wins since the last flush — each
        #: one is a revision bump (and watch fan-out) the batch removed
        self.overwritten = 0

    @property
    def pending_map(self) -> dict:
        """The live pending dict (stable identity; treat as read-only)."""
        return self._pending

    # ------------------------------------------------------------------
    # Accumulation (put/put_lazy carry the same body rather than sharing a
    # helper: these run several times per scheduling action, and the extra
    # call layer was measurable on the replay hot path)
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, *, lease: "Lease | None" = None) -> None:
        """Record a put; overwrites any pending entry for ``key``."""
        pending = self._pending
        prior = pending.get(key)
        fresh = False
        if prior is not None:
            self.overwritten += 1
            kind = prior[0]
            fresh = kind is _DEL or prior[2]  # put lands over a delete
            if kind is _LAZY:
                self._lazy -= 1
        pending[key] = (_PUT, value, fresh)
        if lease is not None:
            self._leases[key] = lease
        elif self._leases:
            self._leases.pop(key, None)

    def put_lazy(
        self, key: str, thunk: Callable[[], Any], *, lease: "Lease | None" = None
    ) -> None:
        """Mark ``key`` dirty; ``thunk()`` supplies the value at flush time
        (or :data:`DELETE` to delete the key instead)."""
        pending = self._pending
        prior = pending.get(key)
        fresh = False
        if prior is None:
            self._lazy += 1
        else:
            self.overwritten += 1
            kind = prior[0]
            fresh = kind is _DEL or prior[2]
            if kind is not _LAZY:
                self._lazy += 1
        pending[key] = (_LAZY, thunk, fresh)
        if lease is not None:
            self._leases[key] = lease
        elif self._leases:
            self._leases.pop(key, None)

    def delete(self, key: str) -> None:
        """Record a delete; overwrites any pending entry for ``key``."""
        prior = self._pending.get(key)
        if prior is not None:
            self.overwritten += 1
            if prior[0] is _LAZY:
                self._lazy -= 1
        self._pending[key] = _DELETE_OP
        if self._leases:
            self._leases.pop(key, None)

    # ------------------------------------------------------------------
    # Overlay reads (read-your-writes between flushes)
    # ------------------------------------------------------------------
    def peek(self, key: str) -> tuple[str, Any] | None:
        """Pending state of ``key``: ``("put", value)``, ``("delete",
        None)``, or None when the batch does not touch it.  Lazy thunks are
        evaluated fresh — they reflect the live component state that would
        be committed if the flush happened now."""
        entry = self._pending.get(key)
        if entry is None:
            return None
        kind = entry[0]
        if kind is _LAZY:
            value = entry[1]()
            return (_DEL, None) if value is DELETE else (_PUT, value)
        if kind is _PUT:
            return (_PUT, entry[1])
        return (_DEL, None)

    def pending_items(self) -> Iterator[tuple[str, str, Any]]:
        """Iterate ``(key, kind, value)`` of every pending entry (lazy
        thunks evaluated), for range-overlay reads."""
        for key in list(self._pending):
            resolved = self.peek(key)
            if resolved is not None:
                yield key, resolved[0], resolved[1]

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __contains__(self, key: str) -> bool:
        return key in self._pending

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def flush(self) -> BatchCommit:
        """Commit every pending entry as one atomic transaction.

        Lazy thunks are resolved now, leases attach to their committed
        keys, and the pending set is cleared *before* the store applies the
        batch so watcher callbacks that issue new writes start the next
        batch instead of mutating the one being committed.  (Thunks are
        value *serializers*: they must not write back into the batch —
        they run while the pending map is being drained in place.)
        """
        pending = self._pending
        if not pending:
            return BatchCommit(revision=None, events=(), existed={})
        tracer = self._tracer
        t0 = 0
        if tracer is not None:
            # count every commit; clock-probe only the stride-sampled
            # ones (t0 stays 0 otherwise — perf_counter_ns is never 0)
            state = tracer._c_state
            n = state[2] + 1
            state[2] = n
            if not n % tracer.span_stride:
                t0 = perf_counter_ns()
        # resolve lazy thunks in place (value reassignment on an existing
        # key never resizes the dict, so iterating while storing is safe);
        # after this every entry already has the coalesced {key: op} shape
        # the store consumes, and the handoff is a single C-level copy
        if self._lazy:
            for key, entry in pending.items():
                if entry[0] is _LAZY:
                    value = entry[1]()
                    pending[key] = (
                        _DELETE_OP if value is DELETE else (_PUT, value, entry[2])
                    )
            self._lazy = 0
        coalesced = pending.copy()
        # clear in place *after* taking the op map but *before* applying:
        # the dict keeps its identity (the post-event hook closes over it)
        # and watcher callbacks fired by the commit start the next batch
        # instead of mutating the one being committed
        pending.clear()
        leases = self._leases
        if leases:
            lease_items: list[tuple[str, "Lease"]] | None = list(leases.items())
            leases.clear()
        else:
            lease_items = None
        # the per-action flush discards the pre-commit liveness map, so
        # skip building it (transactions use apply_batch, which keeps it)
        commit = self._store._apply_coalesced(coalesced, want_existed=False)
        if lease_items is not None and commit.revision is not None:
            for key, lease in lease_items:
                # a lazy entry whose thunk returned DELETE keeps its lease
                # recorded but commits as a delete — never attach for those
                if lease.alive and coalesced[key][0] is _PUT:
                    lease.attach(key)
        if t0:
            # write the commit ring in place (the tracer here is always
            # the runtime-installed FlightRecorder; one closure call per
            # commit is measurable at 2k-replay flush rates)
            wall = perf_counter_ns() - t0
            state = tracer._c_state
            buf = tracer._c_buf
            i = state[0]
            b = i * 3
            buf[b] = tracer._sim._now
            buf[b + 1] = wall
            buf[b + 2] = commit.count
            state[1] += 1
            i += 1
            state[0] = 0 if i == tracer.capacity else i
        return commit
