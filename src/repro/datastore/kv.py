"""Revisioned (MVCC) key-value store — the core of the etcd-like Datastore.

The paper's Datastore is etcd (§III-E): "a distributed key-value store that
guarantees a high level of consistency".  The Cache Manager and GPU Managers
publish GPU status, LRU lists, and estimated latencies here, and the
Scheduler reads them to make dispatch decisions.

This module implements the etcd data model faithfully enough for all of
those interactions plus the tests' linearizability checks:

* a single, monotonically increasing **store revision** bumped by every
  mutation (put / delete / lease expiry),
* **atomic multi-key commits** (:meth:`KVStore.apply_batch`): a batch of
  puts/deletes applies all-or-nothing under *one* revision bump with
  last-write-wins coalescing per key — exactly how an etcd transaction
  mutates the store — and fans out to watchers as one coalesced batch,
* per-key ``create_revision`` / ``mod_revision`` / ``version`` metadata,
* historical reads (``get(key, revision=...)``) backed by per-key history,
* range / prefix reads, and
* compaction that discards history below a revision.

Values are arbitrary Python objects; like etcd, the store never interprets
them.  It is in-process and synchronous — the "distributed" aspect of etcd
matters to the paper only as a consistent shared blackboard, which a single
linearizable store models exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator, NamedTuple, Sequence

__all__ = ["KeyValue", "KVStore", "CompactedError", "BatchCommit"]

_TOMBSTONE = object()


class CompactedError(LookupError):
    """Raised when reading at a revision that has been compacted away."""


class KeyValue(NamedTuple):
    """A key-value pair plus its etcd-style revision metadata.

    A NamedTuple rather than a dataclass: the control plane mints one per
    committed key on every transaction, so construction cost is on the
    write path's critical path.
    """

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    version: int  # number of writes since creation; 1 for a fresh key


class BatchCommit(NamedTuple):
    """Result of one atomic multi-key commit (:meth:`KVStore.apply_batch`).

    ``revision`` is None when the batch had no effect (empty, or only
    deletes of missing keys) — exactly like a failed single-key delete, no
    revision is consumed.  ``events`` lists the coalesced mutations in
    first-touch key order (``KeyValue`` for puts, None for deletes), all
    sharing ``revision``.  ``existed`` records, per coalesced key, whether
    it was live *before* the commit (what a single-key ``delete`` would
    have returned).
    """

    revision: int | None
    events: tuple[tuple[str, KeyValue | None], ...]
    existed: dict[str, bool]


class KVStore:
    """In-memory MVCC key-value store with etcd semantics."""

    def __init__(self) -> None:
        self._revision = 0
        self._compacted = 0
        # live view: key -> KeyValue
        self._live: dict[str, KeyValue] = {}
        # history: key -> ([mod_revisions], [KeyValue-or-tombstone])
        self._history: dict[str, tuple[list[int], list[Any]]] = {}
        # global event log for watch replay, stored as three parallel
        # columns (revision / key / value) rather than one tuple per event:
        # the revision column bisects for events_since/compact, and a long
        # run no longer retains one GC-tracked tuple per historical write —
        # at 100k+ requests the log holds ~500k entries, and full-heap GC
        # passes over that many containers dominated replay wall time
        self._event_revs: list[int] = []
        self._event_keys: list[str] = []
        self._event_vals: list[KeyValue | None] = []
        # bound appends for the per-put event-log writes (compact() trims
        # the lists in place, so the bindings never go stale)
        self._ev_rev_append = self._event_revs.append
        self._ev_key_append = self._event_keys.append
        self._ev_val_append = self._event_vals.append
        # sorted live-key cache for range/keys/items; invalidated whenever
        # the *key set* changes (value-only updates keep it valid)
        self._sorted_keys: list[str] | None = []
        # mutation hooks (used by the watch subsystem); stored as tuples so
        # the per-commit fan-out iterates a stable snapshot without copying
        self._on_mutation: tuple[Callable[[str, KeyValue | None, int], None], ...] = ()
        # batch hooks: fn(revision, [(key, KeyValue|None), ...]) — one call
        # per commit, single puts/deletes included as singleton batches
        self._on_batch: tuple[Callable[[int, list[tuple[str, KeyValue | None]]], None], ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Current store revision (0 before any write)."""
        return self._revision

    @property
    def compacted_revision(self) -> int:
        """Highest revision whose history has been discarded."""
        return self._compacted

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: str) -> bool:
        return key in self._live

    def keys(self) -> list[str]:
        """All live keys, sorted (cached until the key set changes)."""
        return list(self._sorted())

    def _sorted(self) -> list[str]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._live)
        return self._sorted_keys

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _apply_put(self, key: str, value: Any, *, fresh: bool = False) -> KeyValue:
        """Write ``key`` at the current (already bumped) revision.

        ``fresh`` recreates the key (version 1, new create_revision) — used
        when a batch deleted the key before re-putting it, so coalescing
        preserves the sequential delete-then-put metadata.
        """
        revision = self._revision
        prev = None if fresh else self._live.get(key)
        if prev is None:
            kv = KeyValue(key, value, revision, revision, 1)
            self._sorted_keys = None
        else:
            # prev[2]/prev[4] = create_revision/version by index: this runs
            # per committed key and NamedTuple attribute descriptors cost
            kv = KeyValue(key, value, prev[2], revision, prev[4] + 1)
        self._live[key] = kv
        hist = self._history.get(key)
        if hist is None:  # first write: mint the history pre-populated
            self._history[key] = ([revision], [kv])
        else:
            hist[0].append(revision)
            hist[1].append(kv)
        self._ev_rev_append(revision)
        self._ev_key_append(key)
        self._ev_val_append(kv)
        return kv

    def _apply_delete(self, key: str) -> None:
        """Remove live ``key`` at the current (already bumped) revision."""
        del self._live[key]
        self._sorted_keys = None
        self._record(key, _TOMBSTONE)
        self._event_revs.append(self._revision)
        self._event_keys.append(key)
        self._event_vals.append(None)

    def put(self, key: str, value: Any) -> KeyValue:
        """Write ``key`` and return its new :class:`KeyValue`."""
        if not isinstance(key, str) or not key:
            raise ValueError("key must be a non-empty string")
        self._revision += 1
        kv = self._apply_put(key, value)
        self._notify(key, kv, self._revision)
        self._notify_batch(self._revision, [(key, kv)])
        return kv

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        if key not in self._live:
            return False
        self._revision += 1
        self._apply_delete(key)
        self._notify(key, None, self._revision)
        self._notify_batch(self._revision, [(key, None)])
        return True

    def apply_batch(self, ops: Sequence[tuple]) -> BatchCommit:
        """Atomically apply a batch of mutations under **one** revision.

        ``ops`` is a sequence of ``("put", key, value)`` / ``("delete",
        key)`` tuples.  Ops are coalesced last-write-wins per key (etcd
        txn semantics: one transaction → one revision → at most one event
        per key), applied all-or-nothing, and announced to watchers as a
        single coalesced batch.  A put that follows a delete of the same
        key *within the batch* recreates the key (version 1, fresh
        create_revision), matching what the ops would have produced applied
        sequentially.  Deletes of missing keys are no-ops; a batch with no
        effective mutation consumes no revision.
        """
        # key -> ("put", value, fresh) | ("delete",)
        coalesced: dict[str, tuple] = {}
        for op in ops:
            kind, key = op[0], op[1]
            if kind == "put":
                if not isinstance(key, str) or not key:
                    raise ValueError("key must be a non-empty string")
                prior = coalesced.get(key)
                fresh = prior is not None and (prior[0] == "delete" or prior[2])
                coalesced[key] = ("put", op[2], fresh)
            elif kind == "delete":
                coalesced[key] = ("delete",)
            else:
                raise ValueError(f"unknown batch op kind {kind!r}")
        return self._apply_coalesced(coalesced)

    def _apply_coalesced(
        self, coalesced: dict[str, tuple], *, want_existed: bool = True
    ) -> BatchCommit:
        """Commit an already-coalesced batch (``apply_batch``'s inner half).

        ``coalesced`` maps key → ``("put", value, fresh)`` or
        ``("delete",)``; the :class:`~repro.datastore.batch.WriteBatch`
        maintains exactly this shape while accumulating, so its flush calls
        here directly instead of rebuilding an op list for re-coalescing.

        ``want_existed=False`` skips building the pre-commit liveness map:
        the control plane's per-action flushes discard it, and this path
        runs once per scheduling action, so the extra full pass over the
        batch was measurable.  Transactions (which answer per-op responses
        from it) keep the default.
        """
        live = self._live
        existed: dict[str, bool] = {}
        effective = False
        if want_existed:
            for key, entry in coalesced.items():
                ex = key in live
                existed[key] = ex
                if ex or entry[0] == "put":
                    effective = True
        else:
            for key, entry in coalesced.items():
                if entry[0] == "put" or key in live:
                    effective = True
                    break
        if not effective:
            return BatchCommit(revision=None, events=(), existed=existed)
        self._revision += 1
        events: list[tuple[str, KeyValue | None]] = []
        apply_put = self._apply_put
        for key, entry in coalesced.items():
            if entry[0] == "put":
                events.append((key, apply_put(key, entry[1], fresh=entry[2])))
            elif existed[key] if want_existed else key in live:
                self._apply_delete(key)
                events.append((key, None))
        if self._on_mutation:
            for key, kv in events:
                self._notify(key, kv, self._revision)
        if self._on_batch:
            self._notify_batch(self._revision, events)
        return BatchCommit(revision=self._revision, events=tuple(events), existed=existed)

    def delete_prefix(self, prefix: str) -> int:
        """Delete every key starting with ``prefix``; returns count deleted."""
        victims = [k for k in self._live if k.startswith(prefix)]
        for k in victims:
            self.delete(k)
        return len(victims)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str, revision: int | None = None) -> KeyValue | None:
        """Read ``key`` at the latest (or a historical) revision."""
        if revision is None:
            return self._live.get(key)
        if revision < self._compacted:
            raise CompactedError(
                f"revision {revision} compacted (compacted at {self._compacted})"
            )
        if revision > self._revision:
            raise ValueError(f"revision {revision} is in the future (now {self._revision})")
        hist = self._history.get(key)
        if hist is None:
            return None
        revs, vals = hist
        idx = bisect.bisect_right(revs, revision) - 1
        if idx < 0:
            return None
        val = vals[idx]
        return None if val is _TOMBSTONE else val

    def get_value(self, key: str, default: Any = None) -> Any:
        """Convenience: latest value of ``key`` or ``default``."""
        kv = self._live.get(key)
        return kv.value if kv is not None else default

    def range(self, prefix: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs whose key starts with ``prefix``, sorted by key.

        ``limit`` bounds the result like etcd's range limit (None = all).
        Served from the sorted-key cache: O(log n + matches) instead of
        re-sorting every live key per call.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        keys = self._sorted()
        out: list[KeyValue] = []
        for i in range(bisect.bisect_left(keys, prefix), len(keys)):
            if not keys[i].startswith(prefix) or (limit is not None and len(out) >= limit):
                break
            out.append(self._live[keys[i]])
        return out

    def range_interval(self, start: str, end: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs with ``start <= key < end`` (etcd's half-open range)."""
        if end <= start:
            return []
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        keys = self._sorted()
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_left(keys, end, lo)
        if limit is not None:
            hi = min(hi, lo + limit)
        return [self._live[k] for k in keys[lo:hi]]

    def events_since(self, revision: int) -> list[tuple[int, str, KeyValue | None]]:
        """All mutations with revision strictly greater than ``revision``.

        Powers watch replay ("watch from revision").  A batch commit
        contributes one entry per coalesced key, all sharing the batch's
        revision.  Raises :class:`CompactedError` when the requested start
        has been compacted.
        """
        if revision < self._compacted:
            # events at or below the compaction point are gone, so a replay
            # starting before it would silently skip mutations
            raise CompactedError(
                f"cannot replay from revision {revision}: compacted at {self._compacted}"
            )
        idx = bisect.bisect_right(self._event_revs, revision)
        return list(
            zip(self._event_revs[idx:], self._event_keys[idx:], self._event_vals[idx:])
        )

    def items(self) -> Iterator[KeyValue]:
        """Iterate live pairs in key order."""
        for k in self._sorted():
            yield self._live[k]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, revision: int) -> None:
        """Discard history strictly below ``revision``.

        Live values are never discarded; only the ability to read old
        versions is lost, matching etcd's compaction contract.
        """
        if revision > self._revision:
            raise ValueError("cannot compact beyond current revision")
        if revision <= self._compacted:
            return
        self._compacted = revision
        # drop replayable events at or below the compaction revision
        idx = bisect.bisect_right(self._event_revs, revision)
        del self._event_revs[:idx]
        del self._event_keys[:idx]
        del self._event_vals[:idx]
        empty = []
        for key, (revs, vals) in self._history.items():
            # Keep the newest entry at-or-below `revision` so historical reads
            # at exactly `revision` still work.
            idx = bisect.bisect_right(revs, revision) - 1
            if idx > 0:
                del revs[:idx]
                del vals[:idx]
            if len(revs) == 1 and vals[0] is _TOMBSTONE and key not in self._live:
                empty.append(key)
        for key in empty:
            del self._history[key]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, key: str, entry: Any) -> None:
        revs, vals = self._history.setdefault(key, ([], []))
        revs.append(self._revision)
        vals.append(entry)

    def _notify(self, key: str, kv: KeyValue | None, revision: int) -> None:
        for hook in self._on_mutation:
            hook(key, kv, revision)

    def _notify_batch(self, revision: int, events: list[tuple[str, KeyValue | None]]) -> None:
        for hook in self._on_batch:
            hook(revision, events)

    def subscribe(self, hook: Callable[[str, KeyValue | None, int], None]) -> Callable[[], None]:
        """Register a per-key mutation hook; returns an unsubscribe callable."""
        self._on_mutation = self._on_mutation + (hook,)

        def unsubscribe() -> None:
            self._on_mutation = tuple(h for h in self._on_mutation if h is not hook)

        return unsubscribe

    def subscribe_batch(
        self, hook: Callable[[int, list[tuple[str, KeyValue | None]]], None]
    ) -> Callable[[], None]:
        """Register a commit hook: ``hook(revision, [(key, kv|None), ...])``.

        Fired exactly once per revision — single puts/deletes arrive as
        singleton batches, :meth:`apply_batch` commits as one coalesced
        batch.  This is what the watch subsystem consumes to deliver one
        notification per transaction instead of one per touched key.
        """
        self._on_batch = self._on_batch + (hook,)

        def unsubscribe() -> None:
            self._on_batch = tuple(h for h in self._on_batch if h is not hook)

        return unsubscribe
