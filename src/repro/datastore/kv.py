"""Revisioned (MVCC) key-value store — the core of the etcd-like Datastore.

The paper's Datastore is etcd (§III-E): "a distributed key-value store that
guarantees a high level of consistency".  The Cache Manager and GPU Managers
publish GPU status, LRU lists, and estimated latencies here, and the
Scheduler reads them to make dispatch decisions.

This module implements the etcd data model faithfully enough for all of
those interactions plus the tests' linearizability checks:

* a single, monotonically increasing **store revision** bumped by every
  mutation (put / delete / lease expiry),
* per-key ``create_revision`` / ``mod_revision`` / ``version`` metadata,
* historical reads (``get(key, revision=...)``) backed by per-key history,
* range / prefix reads, and
* compaction that discards history below a revision.

Values are arbitrary Python objects; like etcd, the store never interprets
them.  It is in-process and synchronous — the "distributed" aspect of etcd
matters to the paper only as a consistent shared blackboard, which a single
linearizable store models exactly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["KeyValue", "KVStore", "CompactedError"]

_TOMBSTONE = object()


class CompactedError(LookupError):
    """Raised when reading at a revision that has been compacted away."""


@dataclass(frozen=True)
class KeyValue:
    """A key-value pair plus its etcd-style revision metadata."""

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    version: int  # number of writes since creation; 1 for a fresh key


class KVStore:
    """In-memory MVCC key-value store with etcd semantics."""

    def __init__(self) -> None:
        self._revision = 0
        self._compacted = 0
        # live view: key -> KeyValue
        self._live: dict[str, KeyValue] = {}
        # history: key -> ([mod_revisions], [KeyValue-or-tombstone])
        self._history: dict[str, tuple[list[int], list[Any]]] = {}
        # global event log for watch replay: (revision, key, KeyValue|None)
        self._events: list[tuple[int, str, KeyValue | None]] = []
        # mutation hooks (used by the watch subsystem)
        self._on_mutation: list[Callable[[str, KeyValue | None, int], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Current store revision (0 before any write)."""
        return self._revision

    @property
    def compacted_revision(self) -> int:
        """Highest revision whose history has been discarded."""
        return self._compacted

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: str) -> bool:
        return key in self._live

    def keys(self) -> list[str]:
        """All live keys, sorted."""
        return sorted(self._live)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> KeyValue:
        """Write ``key`` and return its new :class:`KeyValue`."""
        if not isinstance(key, str) or not key:
            raise ValueError("key must be a non-empty string")
        self._revision += 1
        prev = self._live.get(key)
        kv = KeyValue(
            key=key,
            value=value,
            create_revision=prev.create_revision if prev else self._revision,
            mod_revision=self._revision,
            version=prev.version + 1 if prev else 1,
        )
        self._live[key] = kv
        self._record(key, kv)
        self._events.append((self._revision, key, kv))
        self._notify(key, kv, self._revision)
        return kv

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        if key not in self._live:
            return False
        self._revision += 1
        del self._live[key]
        self._record(key, _TOMBSTONE)
        self._events.append((self._revision, key, None))
        self._notify(key, None, self._revision)
        return True

    def delete_prefix(self, prefix: str) -> int:
        """Delete every key starting with ``prefix``; returns count deleted."""
        victims = [k for k in self._live if k.startswith(prefix)]
        for k in victims:
            self.delete(k)
        return len(victims)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str, revision: int | None = None) -> KeyValue | None:
        """Read ``key`` at the latest (or a historical) revision."""
        if revision is None:
            return self._live.get(key)
        if revision < self._compacted:
            raise CompactedError(
                f"revision {revision} compacted (compacted at {self._compacted})"
            )
        if revision > self._revision:
            raise ValueError(f"revision {revision} is in the future (now {self._revision})")
        hist = self._history.get(key)
        if hist is None:
            return None
        revs, vals = hist
        idx = bisect.bisect_right(revs, revision) - 1
        if idx < 0:
            return None
        val = vals[idx]
        return None if val is _TOMBSTONE else val

    def get_value(self, key: str, default: Any = None) -> Any:
        """Convenience: latest value of ``key`` or ``default``."""
        kv = self._live.get(key)
        return kv.value if kv is not None else default

    def range(self, prefix: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs whose key starts with ``prefix``, sorted by key.

        ``limit`` bounds the result like etcd's range limit (None = all).
        """
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        out = [self._live[k] for k in sorted(self._live) if k.startswith(prefix)]
        return out if limit is None else out[:limit]

    def range_interval(self, start: str, end: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs with ``start <= key < end`` (etcd's half-open range)."""
        if end <= start:
            return []
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        out = [self._live[k] for k in sorted(self._live) if start <= k < end]
        return out if limit is None else out[:limit]

    def events_since(self, revision: int) -> list[tuple[int, str, KeyValue | None]]:
        """All mutations with revision strictly greater than ``revision``.

        Powers watch replay ("watch from revision").  Raises
        :class:`CompactedError` when the requested start has been compacted.
        """
        if revision < self._compacted:
            # events at or below the compaction point are gone, so a replay
            # starting before it would silently skip mutations
            raise CompactedError(
                f"cannot replay from revision {revision}: compacted at {self._compacted}"
            )
        idx = bisect.bisect_right([e[0] for e in self._events], revision)
        return self._events[idx:]

    def items(self) -> Iterator[KeyValue]:
        """Iterate live pairs in key order."""
        for k in sorted(self._live):
            yield self._live[k]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, revision: int) -> None:
        """Discard history strictly below ``revision``.

        Live values are never discarded; only the ability to read old
        versions is lost, matching etcd's compaction contract.
        """
        if revision > self._revision:
            raise ValueError("cannot compact beyond current revision")
        if revision <= self._compacted:
            return
        self._compacted = revision
        # drop replayable events at or below the compaction revision
        idx = bisect.bisect_right([e[0] for e in self._events], revision)
        del self._events[:idx]
        empty = []
        for key, (revs, vals) in self._history.items():
            # Keep the newest entry at-or-below `revision` so historical reads
            # at exactly `revision` still work.
            idx = bisect.bisect_right(revs, revision) - 1
            if idx > 0:
                del revs[:idx]
                del vals[:idx]
            if len(revs) == 1 and vals[0] is _TOMBSTONE and key not in self._live:
                empty.append(key)
        for key in empty:
            del self._history[key]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, key: str, entry: Any) -> None:
        revs, vals = self._history.setdefault(key, ([], []))
        revs.append(self._revision)
        vals.append(entry)

    def _notify(self, key: str, kv: KeyValue | None, revision: int) -> None:
        for hook in list(self._on_mutation):
            hook(key, kv, revision)

    def subscribe(self, hook: Callable[[str, KeyValue | None, int], None]) -> Callable[[], None]:
        """Register a mutation hook; returns an unsubscribe callable."""
        self._on_mutation.append(hook)

        def unsubscribe() -> None:
            if hook in self._on_mutation:
                self._on_mutation.remove(hook)

        return unsubscribe
