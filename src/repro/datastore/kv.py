"""Revisioned (MVCC) key-value store — the core of the etcd-like Datastore.

The paper's Datastore is etcd (§III-E): "a distributed key-value store that
guarantees a high level of consistency".  The Cache Manager and GPU Managers
publish GPU status, LRU lists, and estimated latencies here, and the
Scheduler reads them to make dispatch decisions.

This module implements the etcd data model faithfully enough for all of
those interactions plus the tests' linearizability checks:

* a single, monotonically increasing **store revision** bumped by every
  mutation (put / delete / lease expiry),
* **atomic multi-key commits** (:meth:`KVStore.apply_batch`): a batch of
  puts/deletes applies all-or-nothing under *one* revision bump with
  last-write-wins coalescing per key — exactly how an etcd transaction
  mutates the store — and fans out to watchers as one coalesced batch,
* per-key ``create_revision`` / ``mod_revision`` / ``version`` metadata,
* historical reads (``get(key, revision=...)``) backed by per-key history,
* range / prefix reads, and
* compaction that discards history below a revision.

Values are arbitrary Python objects; like etcd, the store never interprets
them.  It is in-process and synchronous — the "distributed" aspect of etcd
matters to the paper only as a consistent shared blackboard, which a single
linearizable store models exactly.

Ephemeral-key tier
------------------
High-churn status keys (``gpu/status/*``, ``gpu/finish_time/*``,
``fn/latency/*``) are written on every dispatch and completion, yet
nothing ever reads them at a historical revision — paying full MVCC
history and event-log bookkeeping for them is pure commit-path residue.
A store built with ``ephemeral_prefixes=(...)`` routes matching keys
through a fast lane: live view, current-value reads, and watch delivery
are identical, but no per-key history columns and no event-log records
are retained, and revision *lineage* is not tracked — an ephemeral key's
``create_revision`` always equals its ``mod_revision`` and its
``version`` is pinned at 1, because without history there is nothing to
anchor lineage to.  The trade is explicit and typed: ``get(key,
revision=...)`` and watch-from-revision replay raise
:class:`EphemeralKeyError` for ephemeral keys, and compaction becomes
near-free for them (there is nothing to discard).  The tier is opt-in;
with the default ``()`` every key keeps full etcd semantics, bit for bit.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Iterator, NamedTuple, Sequence

__all__ = ["KeyValue", "KVStore", "CompactedError", "EphemeralKeyError", "BatchCommit"]

_TOMBSTONE = object()


class CompactedError(LookupError):
    """Raised when reading at a revision that has been compacted away."""


class EphemeralKeyError(LookupError):
    """Raised on a historical read (or watch-from-revision replay) of a key
    in the store's ephemeral tier: ephemeral keys keep no MVCC history and
    no event-log records, so the requested view never existed."""


class KeyValue(NamedTuple):
    """A key-value pair plus its etcd-style revision metadata.

    A NamedTuple rather than a dataclass: the control plane mints one per
    committed key on every transaction, so construction cost is on the
    write path's critical path.
    """

    key: str
    value: Any
    create_revision: int
    mod_revision: int
    version: int  # number of writes since creation; 1 for a fresh key


#: mint KeyValues via ``_tuple_new(KeyValue, (...))`` on the commit path:
#: it builds the identical object but skips the generated Python-level
#: ``__new__`` wrapper (~2x faster per mint, one mint per committed key)
_tuple_new = tuple.__new__


class BatchCommit(NamedTuple):
    """Result of one atomic multi-key commit (:meth:`KVStore.apply_batch`).

    ``revision`` is None when the batch had no effect (empty, or only
    deletes of missing keys) — exactly like a failed single-key delete, no
    revision is consumed.  ``events`` lists the coalesced mutations in
    first-touch key order (``KeyValue`` for puts, None for deletes), all
    sharing ``revision``.  ``existed`` records, per coalesced key, whether
    it was live *before* the commit (what a single-key ``delete`` would
    have returned).
    """

    revision: int | None
    events: tuple[tuple[str, KeyValue | None], ...]
    existed: dict[str, bool]
    #: number of keys the commit mutated.  Authoritative where ``events``
    #: may be skipped: the hookless per-action flush (no watches, no
    #: mutation hooks, ``want_existed=False``) commits without building
    #: per-event tuples nobody would read, and returns ``events=()`` with
    #: the true count here.
    count: int = 0


class KVStore:
    """In-memory MVCC key-value store with etcd semantics."""

    def __init__(self, *, ephemeral_prefixes: Sequence[str] = ()) -> None:
        for prefix in ephemeral_prefixes:
            if not isinstance(prefix, str) or not prefix:
                raise ValueError("ephemeral prefixes must be non-empty strings")
        #: key prefixes routed through the ephemeral fast lane (no per-key
        #: history, no event-log records; see the module docstring).  A
        #: tuple because ``str.startswith`` accepts one natively — the
        #: per-put membership test is a single C-level call, and with the
        #: default ``()`` it short-circuits on the falsy tuple.
        self._ephemeral: tuple[str, ...] = tuple(ephemeral_prefixes)
        #: writes that took the ephemeral fast lane (puts + deletes)
        self.ephemeral_writes = 0
        self._revision = 0
        self._compacted = 0
        # live view: key -> KeyValue
        self._live: dict[str, KeyValue] = {}
        # history: key -> ([mod_revisions], [KeyValue-or-tombstone])
        self._history: dict[str, tuple[list[int], list[Any]]] = {}
        # global event log for watch replay, stored as three parallel
        # columns (revision / key / value) rather than one tuple per event:
        # the revision column bisects for events_since/compact, and a long
        # run no longer retains one GC-tracked tuple per historical write —
        # at 100k+ requests the log holds ~500k entries, and full-heap GC
        # passes over that many containers dominated replay wall time
        self._event_revs: list[int] = []
        self._event_keys: list[str] = []
        self._event_vals: list[KeyValue | None] = []
        # bound appends for the per-put event-log writes (compact() trims
        # the lists in place, so the bindings never go stale)
        self._ev_rev_append = self._event_revs.append
        self._ev_key_append = self._event_keys.append
        self._ev_val_append = self._event_vals.append
        # sorted live-key cache for range/keys/items; invalidated whenever
        # the *key set* changes (value-only updates keep it valid)
        self._sorted_keys: list[str] | None = []
        # mutation hooks (used by the watch subsystem); stored as tuples so
        # the per-commit fan-out iterates a stable snapshot without copying
        self._on_mutation: tuple[Callable[[str, KeyValue | None, int], None], ...] = ()
        # batch hooks: fn(revision, [(key, KeyValue|None), ...]) — one call
        # per commit, single puts/deletes included as singleton batches
        self._on_batch: tuple[Callable[[int, list[tuple[str, KeyValue | None]]], None], ...] = ()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def revision(self) -> int:
        """Current store revision (0 before any write)."""
        return self._revision

    @property
    def compacted_revision(self) -> int:
        """Highest revision whose history has been discarded."""
        return self._compacted

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, key: str) -> bool:
        return key in self._live

    @property
    def ephemeral_prefixes(self) -> tuple[str, ...]:
        """The configured ephemeral-tier prefixes (empty = tier off)."""
        return self._ephemeral

    def is_ephemeral(self, key: str) -> bool:
        """Whether ``key`` routes through the ephemeral fast lane."""
        return bool(self._ephemeral) and key.startswith(self._ephemeral)

    def history_entry_count(self) -> int:
        """Total per-key history entries currently retained (bench probe:
        the commit-path residue the ephemeral tier removes)."""
        return sum(len(revs) for revs, _ in self._history.values())

    def check_replayable(self, key: str, *, prefix: bool = False) -> None:
        """Raise :class:`EphemeralKeyError` when a watch-from-revision
        replay of ``key`` (or the prefix under it) could cover ephemeral
        keys: their mutations were never event-logged, so a historical
        replay would silently miss them."""
        for eph in self._ephemeral:
            if key.startswith(eph) or (prefix and eph.startswith(key)):
                raise EphemeralKeyError(
                    f"cannot replay history for {key!r}: it covers the "
                    f"ephemeral tier ({eph!r} keeps no event log; "
                    f"configured ephemeral prefixes: {self._ephemeral!r})"
                )

    def keys(self) -> list[str]:
        """All live keys, sorted (cached until the key set changes)."""
        return list(self._sorted())

    def _sorted(self) -> list[str]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._live)
        return self._sorted_keys

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _apply_put(self, key: str, value: Any, *, fresh: bool = False) -> KeyValue:
        """Write ``key`` at the current (already bumped) revision.

        ``fresh`` recreates the key (version 1, new create_revision) — used
        when a batch deleted the key before re-putting it, so coalescing
        preserves the sequential delete-then-put metadata.
        """
        revision = self._revision
        live = self._live
        if self._ephemeral and key.startswith(self._ephemeral):
            # ephemeral fast lane: live view + watch fan-out only — no
            # history columns, no event-log records, and no lineage (a
            # lineage-free mint: create_revision = mod_revision, version
            # pinned at 1 — without history there is nothing to anchor
            # version counting to, and skipping the prev lookup keeps the
            # lane a mint + dict store).  The len probe replaces the prev
            # lookup for sorted-key invalidation: the cache only cares
            # whether the key *set* grew.
            kv = _tuple_new(KeyValue, (key, value, revision, revision, 1))
            before = len(live)
            live[key] = kv
            if len(live) != before:
                self._sorted_keys = None
            self.ephemeral_writes += 1
            return kv
        prev = None if fresh else live.get(key)
        if prev is None:
            kv = _tuple_new(KeyValue, (key, value, revision, revision, 1))
            self._sorted_keys = None
        else:
            # prev[2]/prev[4] = create_revision/version by index: this runs
            # per committed key and NamedTuple attribute descriptors cost
            kv = _tuple_new(KeyValue, (key, value, prev[2], revision, prev[4] + 1))
        live[key] = kv
        hist = self._history.get(key)
        if hist is None:  # first write: mint the history pre-populated
            self._history[key] = ([revision], [kv])
        else:
            hist[0].append(revision)
            hist[1].append(kv)
        self._ev_rev_append(revision)
        self._ev_key_append(key)
        self._ev_val_append(kv)
        return kv

    def _apply_delete(self, key: str) -> None:
        """Remove live ``key`` at the current (already bumped) revision."""
        del self._live[key]
        self._sorted_keys = None
        if self._ephemeral and key.startswith(self._ephemeral):
            # ephemeral fast lane: no tombstone, no event-log record —
            # the latency-log window's per-completion delete costs only
            # the live-map removal
            self.ephemeral_writes += 1
            return
        self._record(key, _TOMBSTONE)
        self._event_revs.append(self._revision)
        self._event_keys.append(key)
        self._event_vals.append(None)

    def put(self, key: str, value: Any) -> KeyValue:
        """Write ``key`` and return its new :class:`KeyValue`."""
        if not isinstance(key, str) or not key:
            raise ValueError("key must be a non-empty string")
        self._revision += 1
        kv = self._apply_put(key, value)
        self._notify(key, kv, self._revision)
        self._notify_batch(self._revision, [(key, kv)])
        return kv

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        if key not in self._live:
            return False
        self._revision += 1
        self._apply_delete(key)
        self._notify(key, None, self._revision)
        self._notify_batch(self._revision, [(key, None)])
        return True

    def apply_batch(self, ops: Sequence[tuple]) -> BatchCommit:
        """Atomically apply a batch of mutations under **one** revision.

        ``ops`` is a sequence of ``("put", key, value)`` / ``("delete",
        key)`` tuples.  Ops are coalesced last-write-wins per key (etcd
        txn semantics: one transaction → one revision → at most one event
        per key), applied all-or-nothing, and announced to watchers as a
        single coalesced batch.  A put that follows a delete of the same
        key *within the batch* recreates the key (version 1, fresh
        create_revision), matching what the ops would have produced applied
        sequentially.  Deletes of missing keys are no-ops; a batch with no
        effective mutation consumes no revision.
        """
        # key -> ("put", value, fresh) | ("delete",)
        coalesced: dict[str, tuple] = {}
        for op in ops:
            kind, key = op[0], op[1]
            if kind == "put":
                if not isinstance(key, str) or not key:
                    raise ValueError("key must be a non-empty string")
                prior = coalesced.get(key)
                fresh = prior is not None and (prior[0] == "delete" or prior[2])
                coalesced[key] = ("put", op[2], fresh)
            elif kind == "delete":
                coalesced[key] = ("delete",)
            else:
                raise ValueError(f"unknown batch op kind {kind!r}")
        return self._apply_coalesced(coalesced)

    def _apply_coalesced(
        self, coalesced: dict[str, tuple], *, want_existed: bool = True
    ) -> BatchCommit:
        """Commit an already-coalesced batch (``apply_batch``'s inner half).

        ``coalesced`` maps key → ``("put", value, fresh)`` or
        ``("delete",)``; the :class:`~repro.datastore.batch.WriteBatch`
        maintains exactly this shape while accumulating, so its flush calls
        here directly instead of rebuilding an op list for re-coalescing.

        ``want_existed=False`` skips building the pre-commit liveness map:
        the control plane's per-action flushes discard it, and this path
        runs once per scheduling action, so the extra full pass over the
        batch was measurable.  Transactions (which answer per-op responses
        from it) keep the default.
        """
        live = self._live
        existed: dict[str, bool] = {}
        effective = False
        if want_existed:
            for key, entry in coalesced.items():
                ex = key in live
                existed[key] = ex
                if ex or entry[0] == "put":
                    effective = True
        else:
            for key, entry in coalesced.items():
                if entry[0] == "put" or key in live:
                    effective = True
                    break
        if not effective:
            return BatchCommit(revision=None, events=(), existed=existed)
        self._revision += 1
        revision = self._revision
        apply_put = self._apply_put
        # the ephemeral branch is inlined rather than routed through
        # _apply_put: the control plane commits 2-3 ephemeral keys per
        # scheduling action through exactly this loop, and the method
        # call + prev lookup were the last per-key residue left
        eph = self._ephemeral
        if not want_existed and not self._on_mutation and not self._on_batch:
            # hookless flush fast path: no watcher or mutation hook will
            # ever see per-event tuples and the flush caller reads only
            # the committed-key count, so skip building the events list
            count = 0
            for key, entry in coalesced.items():
                if entry[0] == "put":
                    if eph and key.startswith(eph):
                        kv = _tuple_new(
                            KeyValue, (key, entry[1], revision, revision, 1)
                        )
                        before = len(live)
                        live[key] = kv
                        if len(live) != before:
                            self._sorted_keys = None
                        self.ephemeral_writes += 1
                    else:
                        apply_put(key, entry[1], fresh=entry[2])
                    count += 1
                elif key in live:
                    self._apply_delete(key)
                    count += 1
            return BatchCommit(revision, (), existed, count)
        events: list[tuple[str, KeyValue | None]] = []
        events_append = events.append
        for key, entry in coalesced.items():
            if entry[0] == "put":
                if eph and key.startswith(eph):
                    kv = _tuple_new(KeyValue, (key, entry[1], revision, revision, 1))
                    before = len(live)
                    live[key] = kv
                    if len(live) != before:
                        self._sorted_keys = None
                    self.ephemeral_writes += 1
                    events_append((key, kv))
                else:
                    events_append((key, apply_put(key, entry[1], fresh=entry[2])))
            elif existed[key] if want_existed else key in live:
                self._apply_delete(key)
                events_append((key, None))
        if self._on_mutation:
            for key, kv in events:
                self._notify(key, kv, self._revision)
        if self._on_batch:
            self._notify_batch(self._revision, events)
        return BatchCommit(self._revision, tuple(events), existed, len(events))

    def delete_prefix(self, prefix: str) -> int:
        """Delete every key starting with ``prefix``; returns count deleted.

        All victims commit as **one** :meth:`apply_batch` revision — one
        coalesced watch delivery, one event-log group — instead of one
        revision per key, so namespace teardown and drain paths keep the
        batched write path's one-commit-per-action shape.
        """
        victims = [k for k in self._live if k.startswith(prefix)]
        if victims:
            self.apply_batch([("delete", k) for k in victims])
        return len(victims)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str, revision: int | None = None) -> KeyValue | None:
        """Read ``key`` at the latest (or a historical) revision.

        Historical reads of ephemeral-tier keys raise
        :class:`EphemeralKeyError` — those keys keep no history by design.
        """
        if revision is None:
            return self._live.get(key)
        if self._ephemeral and key.startswith(self._ephemeral):
            raise EphemeralKeyError(
                f"{key!r} is in the ephemeral tier: historical reads are "
                "unavailable (no MVCC history is retained; configured "
                f"ephemeral prefixes: {self._ephemeral!r})"
            )
        if revision < self._compacted:
            raise CompactedError(
                f"revision {revision} compacted (compacted at {self._compacted})"
            )
        if revision > self._revision:
            raise ValueError(f"revision {revision} is in the future (now {self._revision})")
        hist = self._history.get(key)
        if hist is None:
            return None
        revs, vals = hist
        idx = bisect.bisect_right(revs, revision) - 1
        if idx < 0:
            return None
        val = vals[idx]
        return None if val is _TOMBSTONE else val

    def get_value(self, key: str, default: Any = None) -> Any:
        """Convenience: latest value of ``key`` or ``default``."""
        kv = self._live.get(key)
        return kv.value if kv is not None else default

    def range(self, prefix: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs whose key starts with ``prefix``, sorted by key.

        ``limit`` bounds the result like etcd's range limit (None = all).
        Served from the sorted-key cache: O(log n + matches) instead of
        re-sorting every live key per call.
        """
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        keys = self._sorted()
        out: list[KeyValue] = []
        for i in range(bisect.bisect_left(keys, prefix), len(keys)):
            if not keys[i].startswith(prefix) or (limit is not None and len(out) >= limit):
                break
            out.append(self._live[keys[i]])
        return out

    def range_interval(self, start: str, end: str, *, limit: int | None = None) -> list[KeyValue]:
        """Live pairs with ``start <= key < end`` (etcd's half-open range)."""
        if end <= start:
            return []
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        keys = self._sorted()
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_left(keys, end, lo)
        if limit is not None:
            hi = min(hi, lo + limit)
        return [self._live[k] for k in keys[lo:hi]]

    def events_since(
        self, revision: int, *, key_prefix: str | None = None
    ) -> list[tuple[int, str, KeyValue | None]]:
        """All mutations with revision strictly greater than ``revision``.

        Powers watch replay ("watch from revision").  A batch commit
        contributes one entry per coalesced key, all sharing the batch's
        revision.  Raises :class:`CompactedError` when the requested start
        has been compacted.

        ``key_prefix`` narrows the replay to keys under that prefix and
        raises :class:`EphemeralKeyError` when the prefix overlaps the
        ephemeral tier: those mutations were never logged, so the filtered
        replay would be silently incomplete.  With ``key_prefix=None`` the
        full durable log is returned — ephemeral keys are absent from it
        by construction (documented tier semantics, not an error).
        """
        if revision < self._compacted:
            # events at or below the compaction point are gone, so a replay
            # starting before it would silently skip mutations
            raise CompactedError(
                f"cannot replay from revision {revision}: compacted at {self._compacted}"
            )
        if key_prefix is not None:
            self.check_replayable(key_prefix, prefix=True)
        idx = bisect.bisect_right(self._event_revs, revision)
        events = zip(
            self._event_revs[idx:], self._event_keys[idx:], self._event_vals[idx:]
        )
        if key_prefix is None:
            return list(events)
        return [ev for ev in events if ev[1].startswith(key_prefix)]

    def items(self) -> Iterator[KeyValue]:
        """Iterate live pairs in key order."""
        for k in self._sorted():
            yield self._live[k]

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, revision: int) -> None:
        """Discard history strictly below ``revision``.

        Live values are never discarded; only the ability to read old
        versions is lost, matching etcd's compaction contract.
        """
        if revision > self._revision:
            raise ValueError("cannot compact beyond current revision")
        if revision <= self._compacted:
            return
        self._compacted = revision
        # drop replayable events at or below the compaction revision
        idx = bisect.bisect_right(self._event_revs, revision)
        del self._event_revs[:idx]
        del self._event_keys[:idx]
        del self._event_vals[:idx]
        empty = []
        for key, (revs, vals) in self._history.items():
            # Keep the newest entry at-or-below `revision` so historical reads
            # at exactly `revision` still work.
            idx = bisect.bisect_right(revs, revision) - 1
            if idx > 0:
                del revs[:idx]
                del vals[:idx]
            if len(revs) == 1 and vals[0] is _TOMBSTONE and key not in self._live:
                empty.append(key)
        for key in empty:
            del self._history[key]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, key: str, entry: Any) -> None:
        revs, vals = self._history.setdefault(key, ([], []))
        revs.append(self._revision)
        vals.append(entry)

    def _notify(self, key: str, kv: KeyValue | None, revision: int) -> None:
        for hook in self._on_mutation:
            hook(key, kv, revision)

    def _notify_batch(self, revision: int, events: list[tuple[str, KeyValue | None]]) -> None:
        for hook in self._on_batch:
            hook(revision, events)

    def subscribe(self, hook: Callable[[str, KeyValue | None, int], None]) -> Callable[[], None]:
        """Register a per-key mutation hook; returns an unsubscribe callable."""
        self._on_mutation = self._on_mutation + (hook,)

        def unsubscribe() -> None:
            self._on_mutation = tuple(h for h in self._on_mutation if h is not hook)

        return unsubscribe

    def subscribe_batch(
        self, hook: Callable[[int, list[tuple[str, KeyValue | None]]], None]
    ) -> Callable[[], None]:
        """Register a commit hook: ``hook(revision, [(key, kv|None), ...])``.

        Fired exactly once per revision — single puts/deletes arrive as
        singleton batches, :meth:`apply_batch` commits as one coalesced
        batch.  This is what the watch subsystem consumes to deliver one
        notification per transaction instead of one per touched key.
        """
        self._on_batch = self._on_batch + (hook,)

        def unsubscribe() -> None:
            self._on_batch = tuple(h for h in self._on_batch if h is not hook)

        return unsubscribe
