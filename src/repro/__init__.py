"""repro — GPU-enabled Function-as-a-Service for ML inference.

A complete, self-contained reproduction of *"GPU-enabled Function-as-a-
Service for Machine Learning Inference"* (Zhao, Jha, Hong — IPDPS 2023,
arXiv:2303.05601): an OpenFaaS-like platform extended with distributed GPU
Managers, a global model-cache manager, and the locality-aware
load-balancing (LALB / LALBO3) schedulers, evaluated on a calibrated
synthetic Azure Functions trace against the 22 CNN models of Table I.

Quick tour
----------
>>> from repro import FaaSCluster, SystemConfig, Gateway, FunctionSpec
>>> system = FaaSCluster(SystemConfig(policy="lalbo3"))
>>> gateway = Gateway(system)
>>> _ = gateway.register(FunctionSpec(name="classify", model_architecture="resnet50"))
>>> inv = gateway.invoke("classify")
>>> system.run()
>>> inv.latency > 0
True

Package map
-----------
====================  =====================================================
``repro.core``        the paper's contribution: Scheduler (LB/LALB/LALBO3),
                      Cache Manager, GPU Managers, finish-time estimation,
                      replacement policies, multi-tenant quotas
``repro.faas``        OpenFaaS-like substrate: Gateway, Watchdog,
                      containers, autoscaler, intercepted ML API
``repro.cluster``     simulated GPU cluster: devices, PCIe, nodes, processes
``repro.datastore``   etcd-like store: MVCC KV, watches, leases, txns
``repro.models``      Table I zoo, profiles, NumPy CNN engine, profiler
``repro.traces``      synthetic Azure trace, workload extraction, datasets
``repro.chaos``       deterministic fault injection: seeded FaultPlans,
                      the chaos injector, the lease-backed health watchdog
``repro.metrics``     per-run collection and §V metric summaries
``repro.experiments`` regenerates every table and figure of §V
====================  =====================================================
"""

from .chaos import FaultPlan, build_fault_plan
from .cluster import PAPER_TESTBED, ClusterSpec, GPUTypeSpec
from .core import (
    InferenceRequest,
    LALBPolicy,
    LoadBalancingPolicy,
    TenancyController,
    TenantQuota,
    make_scheduling_policy,
)
from .faas import Autoscaler, FunctionSpec, Gateway, Invocation, InvocationStatus
from .metrics import RunSummary, summarize
from .models import ModelInstance, ModelProfile, ProfileRegistry, get_profile
from .runtime import FaaSCluster, SystemConfig
from .traces import SyntheticAzureTrace, Workload, WorkloadSpec, build_workload

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "build_fault_plan",
    "PAPER_TESTBED",
    "ClusterSpec",
    "GPUTypeSpec",
    "InferenceRequest",
    "LALBPolicy",
    "LoadBalancingPolicy",
    "TenancyController",
    "TenantQuota",
    "make_scheduling_policy",
    "Autoscaler",
    "FunctionSpec",
    "Gateway",
    "Invocation",
    "InvocationStatus",
    "RunSummary",
    "summarize",
    "ModelInstance",
    "ModelProfile",
    "ProfileRegistry",
    "get_profile",
    "FaaSCluster",
    "SystemConfig",
    "SyntheticAzureTrace",
    "Workload",
    "WorkloadSpec",
    "build_workload",
    "__version__",
]
