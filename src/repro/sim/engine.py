"""Discrete-event simulation kernel.

The whole GPU-enabled FaaS system runs on top of this kernel: the Gateway,
Scheduler, Cache Manager, and GPU Managers are plain Python objects that
schedule callbacks on a shared :class:`Simulator`.  Simulated time is a
float number of seconds.

Design notes
------------
* The heap stores bare ``(time, priority, seq, slot)`` tuples — ``seq`` is
  a monotonically increasing counter, so events scheduled for the same
  instant fire in the order they were scheduled and every run is
  bit-for-bit deterministic.  Tuple keys keep every heap comparison inside
  the C tuple-compare loop instead of a Python ``__lt__``.
* Event payloads (callback, args, bookkeeping flags) live in a parallel
  **slab**: a flat list indexed by ``slot``, with a free-list so slots
  recycle.  Cancellation is O(1) and releases the payload immediately —
  the cancelled entry's heap tuple stays behind (lazy deletion) and is
  recognised as stale when popped because the slot is empty or holds a
  younger ``seq``.
* :meth:`Simulator.schedule_many` injects a whole presorted arrival column
  in one call: when the heap is empty (the replay-start case) an ascending
  tuple list already satisfies the heap invariant, so bulk injection costs
  one list build instead of N ``heappush`` sift-ups.
* There are no coroutines; components communicate through explicit
  callbacks.  This keeps the kernel tiny, easy to reason about, and fast
  (a 6-minute, ~2000-request cluster run executes in milliseconds).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = ["Event", "Simulator", "SimError"]


class SimError(RuntimeError):
    """Raised on kernel misuse (negative delays, running a dead simulator)."""


class Event:
    """A scheduled callback handle.

    Ordering is ``(time, priority, seq)`` — kept on the instance for
    introspection and the back-compat ``__lt__``; the heap itself orders
    bare tuples and never compares :class:`Event` objects.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "_sim", "_slot", "_popped")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        sim: "Simulator | None" = None,
        slot: int = -1,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._slot = slot
        self._popped = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        O(1): the payload slot is released to the free-list right away;
        the heap tuple is dropped lazily when it surfaces.
        """
        if self.cancelled:
            return
        self.cancelled = True
        # keep the simulator's live-event count exact without scanning the
        # heap: an event still pending when cancelled stops counting now
        if self._sim is not None and not self._popped:
            self._sim._release(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} {state}>"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, int]] = []  # (time, priority, seq, slot)
        self._slab: list[Event | None] = []  # slot -> payload (None = vacant)
        self._free: list[int] = []  # recycled slots
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0  # pending non-cancelled events (O(1) __len__)
        self._trace_hook: Callable[[float, str], Any] | None = None
        self._post_event_hooks: tuple[Callable[[], Any], ...] = ()

    def subscribe_post_event(self, hook: Callable[[], Any]) -> Callable[[], None]:
        """Register a hook that runs after every event callback returns.

        The batched Datastore uses this as its flush boundary: all writes a
        single event handler issues (one scheduling action) commit as one
        transaction once the handler finishes.  Returns an unsubscribe
        callable.  Hooks run in registration order and may schedule new
        events, but must not call :meth:`run` (the kernel is not re-entrant).
        """
        self._post_event_hooks = self._post_event_hooks + (hook,)

        def unsubscribe() -> None:
            self._post_event_hooks = tuple(
                h for h in self._post_event_hooks if h is not hook
            )

        return unsubscribe

    def set_trace(self, hook: Callable[[float, str], Any] | None) -> None:
        """Install a debug hook called ``hook(time, callback_name)`` before
        each event fires (None disables).  For tests and debugging only —
        it adds per-event overhead."""
        self._trace_hook = hook

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events.

        O(1): maintained incrementally on schedule/cancel/fire instead of
        scanning the heap (timeline samplers probe this every tick).
        """
        return self._live

    def kernel_stats(self) -> dict[str, float | int]:
        """Snapshot of the kernel's counters (the observability surface:
        :func:`~repro.metrics.exposition.prometheus_exposition` and trace
        tooling read this instead of poking privates)."""
        return {"now": self._now, "processed": self._processed, "pending": self._live}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _new_event(self, time: float, priority: int, fn: Callable[..., Any], args: tuple) -> Event:
        """Allocate a slab slot and its payload (heap insertion is the caller's)."""
        free = self._free
        if free:
            slot = free.pop()
        else:
            slot = len(self._slab)
            self._slab.append(None)
        ev = Event(time, priority, next(self._seq), fn, args, self, slot)
        self._slab[slot] = ev
        self._live += 1
        return ev

    def _release(self, ev: Event) -> None:
        """Vacate a pending event's slot (cancellation path)."""
        self._slab[ev._slot] = None
        self._free.append(ev._slot)
        self._live -= 1

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if math.isnan(time):
            raise SimError("event time is NaN")
        if time < self._now:
            raise SimError(f"cannot schedule in the past: {time} < {self._now}")
        ev = self._new_event(float(time), priority, fn, args)
        heapq.heappush(self._heap, (ev.time, priority, ev.seq, ev._slot))
        return ev

    def schedule_many(
        self,
        times: Sequence[float],
        fn: Callable[..., Any],
        args_seq: Iterable[tuple] | None = None,
        *,
        priority: int = 0,
    ) -> list[Event]:
        """Bulk-schedule ``fn(*args)`` at each absolute time in ``times``.

        Semantically identical to a loop of :meth:`schedule_at` — the same
        ``seq`` numbers are assigned in order, so firing order (including
        same-instant ties) is bit-identical — but the heap is built with at
        most one ``heapify`` over the combined entries instead of N
        sift-ups.  When the simulator's queue is empty and ``times`` is
        ascending (the trace-replay case: a presorted arrival column), the
        tuple list already satisfies the heap invariant and the heapify is
        skipped entirely.

        ``args_seq`` supplies one args tuple per entry (``None`` = no
        arguments for any); it must match ``times`` in length.
        """
        if args_seq is None:
            pairs = [(t, ()) for t in times]
        else:
            pairs = list(zip(times, args_seq, strict=True))
        was_empty = not self._heap
        heap = self._heap
        events: list[Event] = []
        sorted_so_far = True
        prev = -math.inf
        now = self._now
        try:
            for t, args in pairs:
                if math.isnan(t):
                    raise SimError("event time is NaN")
                if t < now:
                    raise SimError(f"cannot schedule in the past: {t} < {now}")
                ev = self._new_event(float(t), priority, fn, tuple(args))
                heap.append((ev.time, priority, ev.seq, ev._slot))
                events.append(ev)
                if ev.time < prev:
                    sorted_so_far = False
                prev = ev.time
        except SimError:
            # roll back the partial batch so a validation error leaves the
            # simulator exactly as it was
            for ev in events:
                ev.cancel()
            del heap[len(heap) - len(events):]
            raise
        if not (was_empty and sorted_so_far):
            heapq.heapify(heap)
        return events

    def call_soon(self, fn: Callable[..., Any], *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, fn, *args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else math.inf

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is executing events.

        Components with explicit flush points (Scheduler, Gateway) consult
        this to tell a user-context call (flush now — nothing else will)
        from one nested inside an event handler (defer to the post-event
        hook so the whole handler commits as one action).
        """
        return self._running

    def _fire(self, ev: Event) -> None:
        """Advance the clock to ``ev``, run its callback, run post hooks.

        ``is_running`` holds for the callback's duration even under
        :meth:`step`, so flush-point deferral behaves identically whether
        events fire via ``run()`` or ``step()``.
        """
        was_running, self._running = self._running, True
        self._now = ev.time
        self._processed += 1
        try:
            if self._trace_hook is not None:
                self._trace_hook(ev.time, getattr(ev.fn, "__qualname__", repr(ev.fn)))
            ev.fn(*ev.args)
            for hook in self._post_event_hooks:
                hook()
        finally:
            self._running = was_running

    def _pop_next(self) -> Event | None:
        """Pop the next live event (dropping stale heap tuples), or None."""
        heap = self._heap
        slab = self._slab
        while heap:
            _, _, seq, slot = heapq.heappop(heap)
            ev = slab[slot]
            if ev is None or ev.seq != seq:
                continue  # cancelled (slot vacated or recycled): stale tuple
            slab[slot] = None
            self._free.append(slot)
            ev._popped = True
            self._live -= 1
            return ev
        return None

    def step(self) -> bool:
        """Fire the next event.  Returns False when no events remain."""
        ev = self._pop_next()
        if ev is None:
            return False
        self._fire(ev)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimError` when exceeded.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        heap = self._heap
        slab = self._slab
        free = self._free
        pop = heapq.heappop
        try:
            while heap:
                head = heap[0]
                ev = slab[head[3]]
                if ev is None or ev.seq != head[2]:
                    pop(heap)  # stale tuple left behind by a cancellation
                    continue
                if until is not None and head[0] > until:
                    break
                pop(heap)
                slab[head[3]] = None
                free.append(head[3])
                ev._popped = True
                self._live -= 1
                # inlined _fire (same semantics, minus a call per event;
                # is_running already holds for the whole loop)
                self._now = ev.time
                self._processed += 1
                if self._trace_hook is not None:
                    self._trace_hook(ev.time, getattr(ev.fn, "__qualname__", repr(ev.fn)))
                ev.fn(*ev.args)
                for hook in self._post_event_hooks:
                    hook()
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = float(until)

    def drain(self) -> Iterator[Event]:
        """Yield and remove all pending events without firing them (for tests)."""
        while True:
            ev = self._pop_next()
            if ev is None:
                return
            yield ev

    def _drop_cancelled(self) -> None:
        # cancelled events already left the live count at cancel() time
        heap = self._heap
        slab = self._slab
        while heap:
            head = heap[0]
            ev = slab[head[3]]
            if ev is not None and ev.seq == head[2]:
                return
            heapq.heappop(heap)
