"""Discrete-event simulation kernel.

The whole GPU-enabled FaaS system runs on top of this kernel: the Gateway,
Scheduler, Cache Manager, and GPU Managers are plain Python objects that
schedule callbacks on a shared :class:`Simulator`.  Simulated time is a
float number of seconds.

Design notes
------------
* Events are ordered by ``(time, priority, seq)``.  ``seq`` is a
  monotonically increasing counter, so events scheduled for the same
  instant fire in the order they were scheduled — this makes every run
  bit-for-bit deterministic.
* Cancellation is O(1): a cancelled event stays in the heap but is skipped
  when popped (lazy deletion).
* There are no coroutines; components communicate through explicit
  callbacks.  This keeps the kernel tiny, easy to reason about, and fast
  (a 6-minute, ~2000-request cluster run executes in milliseconds).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["Event", "Simulator", "SimError"]


class SimError(RuntimeError):
    """Raised on kernel misuse (negative delays, running a dead simulator)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so they can live directly
    in a heap.  The callback and its arguments do not participate in
    ordering.
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    _sim: Any = field(compare=False, default=None, repr=False)
    _popped: bool = field(compare=False, default=False, repr=False)

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # keep the simulator's live-event count exact without scanning the
        # heap: an event still pending when cancelled stops counting now
        if self._sim is not None and not self._popped:
            self._sim._live -= 1


class Simulator:
    """A minimal deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0  # pending non-cancelled events (O(1) __len__)
        self._trace_hook: Callable[[float, str], Any] | None = None
        self._post_event_hooks: list[Callable[[], Any]] = []

    def subscribe_post_event(self, hook: Callable[[], Any]) -> Callable[[], None]:
        """Register a hook that runs after every event callback returns.

        The batched Datastore uses this as its flush boundary: all writes a
        single event handler issues (one scheduling action) commit as one
        transaction once the handler finishes.  Returns an unsubscribe
        callable.  Hooks run in registration order and may schedule new
        events, but must not call :meth:`run` (the kernel is not re-entrant).
        """
        self._post_event_hooks.append(hook)

        def unsubscribe() -> None:
            if hook in self._post_event_hooks:
                self._post_event_hooks.remove(hook)

        return unsubscribe

    def set_trace(self, hook: Callable[[float, str], Any] | None) -> None:
        """Install a debug hook called ``hook(time, callback_name)`` before
        each event fires (None disables).  For tests and debugging only —
        it adds per-event overhead."""
        self._trace_hook = hook

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events.

        O(1): maintained incrementally on schedule/cancel/fire instead of
        scanning the heap (timeline samplers probe this every tick).
        """
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any, priority: int = 0
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if math.isnan(time):
            raise SimError("event time is NaN")
        if time < self._now:
            raise SimError(f"cannot schedule in the past: {time} < {self._now}")
        ev = Event(
            time=float(time), priority=priority, seq=next(self._seq), fn=fn, args=args,
            _sim=self,
        )
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, fn, *args, priority=priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else math.inf

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is executing events.

        Components with explicit flush points (Scheduler, Gateway) consult
        this to tell a user-context call (flush now — nothing else will)
        from one nested inside an event handler (defer to the post-event
        hook so the whole handler commits as one action).
        """
        return self._running

    def _fire(self, ev: Event) -> None:
        """Advance the clock to ``ev``, run its callback, run post hooks.

        ``is_running`` holds for the callback's duration even under
        :meth:`step`, so flush-point deferral behaves identically whether
        events fire via ``run()`` or ``step()``.
        """
        was_running, self._running = self._running, True
        self._now = ev.time
        self._processed += 1
        try:
            if self._trace_hook is not None:
                self._trace_hook(ev.time, getattr(ev.fn, "__qualname__", repr(ev.fn)))
            ev.fn(*ev.args)
            if self._post_event_hooks:
                for hook in list(self._post_event_hooks):
                    hook()
        finally:
            self._running = was_running

    def step(self) -> bool:
        """Fire the next event.  Returns False when no events remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        ev._popped = True
        self._live -= 1
        self._fire(ev)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is advanced to ``until``.
        max_events:
            Safety valve for tests; raises :class:`SimError` when exceeded.
        """
        if self._running:
            raise SimError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while True:
                self._drop_cancelled()
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    break
                ev = heapq.heappop(self._heap)
                ev._popped = True
                self._live -= 1
                self._fire(ev)
                fired += 1
                if max_events is not None and fired > max_events:
                    raise SimError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
        if until is not None and until > self._now:
            self._now = float(until)

    def drain(self) -> Iterator[Event]:
        """Yield and remove all pending events without firing them (for tests)."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                ev._popped = True
                self._live -= 1
                yield ev

    def _drop_cancelled(self) -> None:
        # cancelled events already left the live count at cancel() time
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._popped = True
