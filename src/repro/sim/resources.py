"""Simulation-time primitives shared by the FaaS components.

These are deliberately simple: a periodic timer (used by the autoscaler and
metric samplers) and a busy-interval tracker (used for GPU SM-utilization
accounting, paper §V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .engine import Event, Simulator

__all__ = ["PeriodicTimer", "IntervalAccumulator"]


class PeriodicTimer:
    """Calls ``fn()`` every ``period`` seconds of simulated time."""

    def __init__(self, sim: Simulator, period: float, fn: Callable[[], Any]) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._period = period
        self._fn = fn
        self._event: Event | None = None
        self._stopped = True

    def start(self) -> None:
        if not self._stopped:
            return
        self._stopped = False
        self._event = self._sim.schedule(self._period, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def period(self) -> float:
        return self._period

    def set_period(self, period: float) -> None:
        """Change the tick period; takes effect at the next reschedule.

        Safe to call from inside the timer's own callback — the tick that
        invoked it will reschedule itself ``period`` seconds out.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        self._period = period

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        self._event = self._sim.schedule(self._period, self._tick)


@dataclass(slots=True)
class IntervalAccumulator:
    """Accumulates time spent in named states.

    Used to account for the fraction of wall time a GPU spends in
    inference (SM busy), loading (PCIe busy, SM idle), and idle.  States
    are arbitrary hashable labels; the GPU device passes its state enum's
    interned *value strings* (read via ``_value_`` — both ``Enum.value``
    and ``Enum.__hash__`` are Python-level and showed up on the
    per-transition path).  The current state is open-ended until
    :meth:`switch` or :meth:`close`.
    """

    sim: Simulator
    state: Any = "idle"
    totals: dict[Any, float] = field(default_factory=dict)
    _since: float = 0.0
    _started: bool = False

    def start(self, state: str = "idle") -> None:
        self.state = state
        self._since = self.sim.now
        self._started = True

    def switch(self, state: str) -> None:
        """Close the current state interval and open a new one."""
        if not self._started:
            self.start(state)
            return
        now = self.sim._now  # hot path: one read, no property call
        elapsed = now - self._since
        if elapsed > 0:
            self.totals[self.state] = self.totals.get(self.state, 0.0) + elapsed
        self.state = state
        self._since = now

    def close(self) -> dict[str, float]:
        """Finalize the open interval and return a copy of the totals."""
        if self._started:
            self.switch(self.state)
        return dict(self.totals)

    def total(self, state: str, *, include_open: bool = True) -> float:
        """Total time spent in ``state`` so far."""
        t = self.totals.get(state, 0.0)
        if include_open and self._started and self.state == state:
            t += self.sim.now - self._since
        return t

    def fraction(self, state: str, horizon: float | None = None) -> float:
        """Fraction of elapsed time (or ``horizon``) spent in ``state``."""
        elapsed = horizon if horizon is not None else self.sim.now
        if elapsed <= 0:
            return 0.0
        return self.total(state) / elapsed
