"""Discrete-event simulation kernel (clock, events, timers)."""

from .engine import Event, SimError, Simulator
from .resources import IntervalAccumulator, PeriodicTimer

__all__ = ["Event", "SimError", "Simulator", "IntervalAccumulator", "PeriodicTimer"]
