"""The paper's contribution: GPU Manager, Cache Manager, and the
locality-aware load-balancing Scheduler with its policies."""

from .cache_manager import CacheManager
from .decisions import Decision, DecisionKind, DecisionLog
from .estimator import FinishTimeEstimator
from .gpu_manager import GPUManager
from .policies import (
    DEFAULT_O3_LIMIT,
    LALBPolicy,
    LoadBalancingPolicy,
    LocalityOnlyPolicy,
    SchedulingPolicy,
    make_scheduling_policy,
)
from .queues import GlobalQueue, LocalQueues
from .replacement import (
    POLICY_NAMES,
    BeladyPolicy,
    EvictionPolicy,
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    SizeAwarePolicy,
    make_policy,
)
from .request import InferenceRequest, RequestState
from .scheduler import Scheduler
from .signals import DispatchableWorkGuard, IdleLocalWorkIndex, PassGuard
from .tenancy import TenancyController, TenantQuota

__all__ = [
    "CacheManager",
    "Decision",
    "DecisionKind",
    "DecisionLog",
    "FinishTimeEstimator",
    "GPUManager",
    "DEFAULT_O3_LIMIT",
    "LALBPolicy",
    "LoadBalancingPolicy",
    "LocalityOnlyPolicy",
    "SchedulingPolicy",
    "make_scheduling_policy",
    "GlobalQueue",
    "LocalQueues",
    "POLICY_NAMES",
    "BeladyPolicy",
    "EvictionPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "SizeAwarePolicy",
    "make_policy",
    "InferenceRequest",
    "RequestState",
    "Scheduler",
    "DispatchableWorkGuard",
    "IdleLocalWorkIndex",
    "PassGuard",
    "TenancyController",
    "TenantQuota",
]
