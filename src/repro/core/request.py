"""Inference requests and their lifecycle records.

An :class:`InferenceRequest` is what flows Gateway → Scheduler → GPU
Manager → response.  It carries the registered function's identity, the
model instance it needs, and the input batch; the runtime stamps every
lifecycle timestamp onto it, so the metrics layer can compute each of the
paper's evaluation quantities (latency, miss ratio, false misses) directly
from completed requests.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..models.profiles import PAPER_BATCH_SIZE, ModelInstance

__all__ = ["RequestState", "InferenceRequest"]

_request_ids = itertools.count(1)


class RequestState(enum.Enum):
    QUEUED = "queued"          # waiting in the global queue
    LOCAL_QUEUED = "local"     # moved to a busy GPU's local queue (Alg. 2 line 12)
    DISPATCHED = "dispatched"  # assigned to a GPU; loading or inferring
    COMPLETED = "completed"
    LOST = "lost"              # dropped: deadline timeout or retry budget exhausted


@dataclass(slots=True)
class InferenceRequest:
    """One function invocation that needs GPU inference.

    ``slots=True``: the runtime stamps and re-reads these fields on every
    queue move, dispatch, and completion, so attribute access is hot.
    """

    function_name: str
    model: ModelInstance
    arrival_time: float
    batch_size: int = PAPER_BATCH_SIZE
    payload: Any = None
    tenant: str = "default"
    #: relative SLA: the function should respond within this many seconds
    #: of arrival (None = best effort).  §I: production inference "have
    #: stringent latency requirements".
    sla_s: float | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # -- lifecycle stamps (filled by the runtime) -----------------------
    state: RequestState = RequestState.QUEUED
    gpu_id: str | None = None
    #: (server IP, CUDA device name) shipped with the dispatch (§III-B)
    gpu_address: tuple[str, str] | None = None
    dispatched_at: float | None = None
    exec_start_at: float | None = None
    completed_at: float | None = None

    # -- scheduling outcome ---------------------------------------------
    cache_hit: bool | None = None
    #: miss although the model was resident on *some other* GPU at decision
    #: time (paper §V-D's "false miss")
    false_miss: bool = False
    #: times the request was re-queued after a GPU failure
    retries: int = 0
    result: Any = None

    # -- O3 visit accounting (Alg. 1 line 15) ---------------------------
    #: eager skip count; authoritative whenever the request is not sitting
    #: in a visit-tracking GlobalQueue (see the ``visits`` property)
    _visits: int = field(default=0, init=False, repr=False, compare=False)
    #: live (queue, entry) probe installed while the request is queued
    #: under lazy O3 accounting, so reads see the up-to-date skip count
    _queue_probe: Any = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time cannot be negative")
        if self.sla_s is not None and self.sla_s <= 0:
            raise ValueError("sla_s must be positive when set")

    @property
    def visits(self) -> int:
        """Times this request was skipped by the O3 dispatch (Alg. 1 line 15).

        While the request sits in a visit-tracking :class:`GlobalQueue`
        the count is maintained *lazily* (one O(log n) prefix update per
        scheduling scan instead of touching every queued request); the
        probe resolves the live value on read.
        """
        probe = self._queue_probe
        if probe is not None:
            queue, entry = probe
            return queue._entry_visits(entry)
        return self._visits

    @visits.setter
    def visits(self, value: int) -> None:
        probe = self._queue_probe
        if probe is not None:
            queue, entry = probe
            queue._entry_set_visits(entry, value)
        self._visits = value

    def _attach_queue_entry(self, queue: Any, entry: Any) -> None:
        self._queue_probe = (queue, entry)

    def _detach_queue_entry(self, entry: Any) -> None:
        probe = self._queue_probe
        if probe is not None and probe[1] is entry:
            self._queue_probe = None

    @property
    def met_sla(self) -> bool | None:
        """Whether the completed request met its SLA (None when no SLA)."""
        if self.sla_s is None:
            return None
        return self.latency <= self.sla_s

    def reset_for_retry(self) -> None:
        """Return the request to a clean QUEUED state after a GPU failure.

        Arrival time and O3 ``visits`` are preserved (fairness); everything
        the failed execution stamped is cleared.
        """
        if self.state in (RequestState.COMPLETED, RequestState.LOST):
            raise RuntimeError(
                f"request {self.request_id} already {self.state.value}"
            )
        self.state = RequestState.QUEUED
        self.gpu_id = None
        self.gpu_address = None
        self.dispatched_at = None
        self.exec_start_at = None
        self.cache_hit = None
        self.false_miss = False
        self.retries += 1

    @property
    def model_id(self) -> str:
        """Cache-item identity: the model *instance*, not the architecture."""
        return self.model.instance_id

    @property
    def latency(self) -> float:
        """End-to-end function latency (the paper's primary metric)."""
        if self.completed_at is None:
            raise RuntimeError(f"request {self.request_id} has not completed")
        return self.completed_at - self.arrival_time

    @property
    def queueing_delay(self) -> float:
        if self.dispatched_at is None:
            raise RuntimeError(f"request {self.request_id} was never dispatched")
        return self.dispatched_at - self.arrival_time

    @property
    def service_time(self) -> float:
        """Dispatch-to-completion time (load, if any, plus inference)."""
        if self.completed_at is None or self.dispatched_at is None:
            raise RuntimeError(f"request {self.request_id} has not completed")
        return self.completed_at - self.dispatched_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Req {self.request_id} fn={self.function_name} model={self.model_id} "
            f"{self.state.value}>"
        )
