"""Scheduling decision log.

Records every action the Scheduler takes — dispatches (hit/miss), local-
queue moves, O3 promotions — with the reason, so tests can assert the
Algorithm-1/2 semantics directly and operators can audit why a request
landed where it did.

The log is bounded (ring buffer) so long experiments cannot grow it
without limit.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from typing import Iterator, NamedTuple

__all__ = ["DecisionKind", "Decision", "DecisionLog"]


class DecisionKind(enum.Enum):
    DISPATCH_HIT = "dispatch_hit"          # model cached on the target GPU
    DISPATCH_MISS = "dispatch_miss"        # upload required on the target GPU
    DISPATCH_LOCAL = "dispatch_local"      # served from a GPU's local queue
    MOVE_TO_LOCAL = "move_to_local"        # Alg. 2 line 12: wait beats load
    RESUBMIT = "resubmit"                  # failure handling: back to global queue
    TIMEOUT = "timeout"                    # per-request deadline expired while queued
    LOST = "lost"                          # retry budget exhausted; request dropped


class Decision(NamedTuple):
    """One recorded scheduling action (NamedTuple: minted on every dispatch)."""

    time_s: float
    kind: DecisionKind
    request_id: int
    model_id: str
    gpu_id: str | None
    #: request skipped this many times before the action (O3 accounting)
    visits: int = 0


class DecisionLog:
    """Bounded, queryable record of scheduling actions."""

    def __init__(self, maxlen: int = 100_000) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be positive")
        self._maxlen = maxlen
        self._log: deque[Decision] = deque(maxlen=maxlen)
        self._counts: Counter[DecisionKind] = Counter()

    def record(self, decision: Decision) -> None:
        log = self._log
        if len(log) == self._maxlen:
            self._counts[log[0].kind] -= 1  # about to be evicted
        log.append(decision)
        self._counts[decision.kind] += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._log)

    def count(self, kind: DecisionKind) -> int:
        return self._counts[kind]

    def for_request(self, request_id: int) -> list[Decision]:
        return [d for d in self._log if d.request_id == request_id]

    def for_gpu(self, gpu_id: str) -> list[Decision]:
        return [d for d in self._log if d.gpu_id == gpu_id]

    def last(self, n: int = 10) -> list[Decision]:
        return list(self._log)[-n:]

    def hit_rate(self) -> float:
        """Hit fraction among plain dispatches (local/moves are hits too)."""
        hits = self._counts[DecisionKind.DISPATCH_HIT]
        misses = self._counts[DecisionKind.DISPATCH_MISS]
        total = hits + misses
        return hits / total if total else 0.0
