"""GPU Managers (paper §III-C).

One GPU Manager runs per GPU node and manages the GPU processes on that
node.  For each dispatched request it:

1. asks the Cache Manager whether the model is resident (hit) or not (miss),
2. on a miss, evicts the victim models the Cache Manager selects (killing
   their processes), starts a new GPU process, and uploads the model,
3. runs the inference (one request at a time per GPU),
4. reports the latency to the Datastore, updates the LRU list through the
   Cache Manager, flips the GPU's status busy↔idle in the Datastore, and
   notifies the Scheduler when the GPU becomes idle.

Execution is event-driven: upload and inference durations come from the
profiled model latencies and elapse on the simulated clock.

Datastore writes (status, finish time, latency records) go through the
manager's :class:`~repro.datastore.client.DatastoreClient`; against a
batched Datastore every write a single step issues — e.g. a completion's
LRU touch + status flip + latency record — accumulates and commits as one
transaction at the action boundary (the Scheduler's flush or the
simulator's post-event hook), one revision, one coalesced watch batch.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, NamedTuple

from ..cluster.gpu import GPUDevice, GPUState
from ..cluster.node import GPUNode
from ..cluster.process import GPUProcess
from ..datastore.client import DatastoreClient
from ..models.profiler import ProfileRegistry
from ..sim import Simulator
from .cache_manager import CacheManager
from .estimator import FinishTimeEstimator
from .request import InferenceRequest, RequestState

__all__ = ["GPUManager", "LatencyRecord"]


class LatencyRecord(NamedTuple):
    """Per-invocation record mirrored to ``fn/latency/<request_id>``.

    An immutable NamedTuple rather than a dict: one is retained in the
    store's history per completed request, and tuples of atomic values
    leave the cyclic collector's tracked set — at 100k+ requests the
    difference is a full-heap GC pass over 100k fewer containers.
    """

    function: str
    model: str
    gpu: str | None
    latency_s: float
    queueing_s: float
    cache_hit: bool | None
    false_miss: bool


class GPUManager:
    """Per-node manager of GPU processes and request execution."""

    def __init__(
        self,
        sim: Simulator,
        node: GPUNode,
        cache: CacheManager,
        registry: ProfileRegistry,
        estimator: FinishTimeEstimator,
        *,
        datastore: DatastoreClient | None = None,
        latency_keep: int | None = None,
        on_idle: Callable[[GPUDevice], None] | None = None,
        on_complete: Callable[[InferenceRequest], None] | None = None,
        on_dispatch: Callable[[InferenceRequest], None] | None = None,
        on_drained: Callable[[GPUDevice], None] | None = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.cache = cache
        self.registry = registry
        self.estimator = estimator
        self.datastore = datastore
        self.on_idle = on_idle or (lambda gpu: None)
        self.on_complete = on_complete or (lambda req: None)
        self.on_dispatch = on_dispatch or (lambda req: None)
        self.on_drained = on_drained or (lambda gpu: None)
        # --- array-backed per-GPU lifecycle state -----------------------
        # Each device gets a dense node-local slot at construction; the
        # dispatch/completion chain then indexes preallocated lists instead
        # of hashing gpu_id strings into dicts on every event.  The cold
        # entry points that arrive with a bare gpu_id (set_slowdown,
        # is_draining, in_flight) translate through _slot_of once.
        n = len(node.gpus)
        self._slot_of: dict[str, int] = {}
        for slot, gpu in enumerate(node.gpus):
            gpu._mgr_slot = slot
            self._slot_of[gpu.gpu_id] = slot
        #: slot -> in-flight request (None = nothing executing there)
        self._executing: list[InferenceRequest | None] = [None] * n
        #: slot -> scheduled load/inference completion sim Event
        self._pending_event: list[object | None] = [None] * n
        #: slot -> finishing its in-flight request before going offline
        self._draining: list[bool] = [False] * n
        #: straggler injection: slot -> multiplicative slowdown on the
        #: *actual* load/inference durations (None = healthy)
        self._slowdown: list[float | None] = [None] * n
        # sliding window over this manager's fn/latency/* keys: when
        # latency_keep is set, writing record N deletes record N-keep in
        # the same batched transaction, so the store's live set (and the
        # KeyValue/LatencyRecord objects it pins) stays bounded on
        # million-request replays.  Nothing reads these keys mid-run, so
        # scheduling is untouched either way.
        self._latency_keep = latency_keep
        self._latency_log: deque[str] = deque()
        # per-GPU key strings interned once, slot-indexed: status and
        # finish-time puts happen on every dispatch and completion
        self._status_key = [f"gpu/status/{g.gpu_id}" for g in node.gpus]
        self._finish_key = [f"gpu/finish_time/{g.gpu_id}" for g in node.gpus]
        for gpu in node.gpus:
            self._set_status(gpu, "idle")

    # ------------------------------------------------------------------
    # Dispatch entry point (called by the Scheduler)
    # ------------------------------------------------------------------
    def execute(self, request: InferenceRequest, gpu: GPUDevice) -> None:
        """Run ``request`` on ``gpu`` (which must be idle and local)."""
        if gpu.node_id != self.node.node_id:
            raise ValueError(f"{gpu.gpu_id} is not managed by node {self.node.node_id}")
        if not gpu.is_idle:
            raise RuntimeError(f"{gpu.gpu_id} is busy; the Scheduler must dispatch to idle GPUs")
        slot = gpu._mgr_slot
        if self._executing[slot] is not None:
            raise RuntimeError(f"{gpu.gpu_id} already has an in-flight request")

        request.state = RequestState.DISPATCHED
        request.gpu_id = gpu.gpu_id
        request.dispatched_at = self.sim._now  # hot path: skip the property
        self._executing[slot] = request
        self._set_status(gpu, "busy")

        if self.cache.is_cached_on(request.model_id, gpu.gpu_id):
            request.cache_hit = True
            self.on_dispatch(request)
            proc = gpu.process_for(request.model_id)
            self._start_inference(gpu, proc, request)
        else:
            request.cache_hit = False
            # §V-D "false miss": the model was resident on another GPU at
            # decision time, yet this dispatch re-uploads it here.
            request.false_miss = self.cache.cached_anywhere(request.model_id)
            self.on_dispatch(request)
            self._start_miss(gpu, request)

    # ------------------------------------------------------------------
    # Miss path: evict victims, start a process, upload the model
    # ------------------------------------------------------------------
    def _start_miss(self, gpu: GPUDevice, request: InferenceRequest) -> None:
        victims = self.cache.choose_victims(gpu.gpu_id, request.model)
        for victim in victims:
            gpu.evict(victim)
            self.cache.on_evicted(gpu.gpu_id, victim)
        proc = gpu.admit(request.model_id, request.model.occupied_mb)
        gpu.begin_loading()
        load_t = self.estimator.load_time(request, gpu)
        infer_t = self.estimator.infer_time(request, gpu)
        slow = self._slowdown[gpu._mgr_slot]
        if slow is not None:
            load_t *= slow
            infer_t *= slow
        self._publish_busy_until(gpu, self.sim._now + load_t + infer_t)
        self._pending_event[gpu._mgr_slot] = self.sim.schedule(
            load_t, self._loaded, gpu, proc, request
        )

    def _loaded(self, gpu: GPUDevice, proc: GPUProcess, request: InferenceRequest) -> None:
        proc.mark_ready(self.sim.now)
        self.cache.on_loaded(gpu.gpu_id, request.model)
        self._start_inference(gpu, proc, request)

    # ------------------------------------------------------------------
    # Hit path / common inference execution
    # ------------------------------------------------------------------
    def _start_inference(self, gpu: GPUDevice, proc: GPUProcess, request: InferenceRequest) -> None:
        proc.mark_running()
        gpu.begin_inference()
        request.exec_start_at = self.sim._now
        infer_t = self.estimator.infer_time(request, gpu)
        slow = self._slowdown[gpu._mgr_slot]
        if slow is not None:
            infer_t *= slow
        self._publish_busy_until(gpu, self.sim._now + infer_t)
        self._pending_event[gpu._mgr_slot] = self.sim.schedule(
            infer_t, self._finished, gpu, proc, request
        )

    def _finished(self, gpu: GPUDevice, proc: GPUProcess, request: InferenceRequest) -> None:
        slot = gpu._mgr_slot
        draining = self._draining[slot]
        proc.mark_done()
        # bump the use-frequency *before* the idle flip: the cluster's
        # incremental frequency-ordered idle view then files the GPU once,
        # at its final rank, instead of filing and re-filing
        gpu.completed_requests += 1
        if not draining:
            gpu.become_idle()
        request.state = RequestState.COMPLETED
        request.completed_at = self.sim._now
        # If the model instance carries a real NumPy network (examples do),
        # actually run the forward pass so the response is genuine.
        network = request.model.metadata.get("network")
        if request.payload is not None and network is not None:
            request.result = network(request.payload)
        self._executing[slot] = None
        self._pending_event[slot] = None
        self.estimator.clear_busy(gpu.gpu_id)
        if draining:
            # graceful drain completion: the request finished normally;
            # now retire the GPU.  The LRU touch is skipped — every cache
            # location is withdrawn in the same write batch as the status
            # flip, so watchers see one atomic invalidation.
            self._take_offline(gpu)
            self._record_latency(request)
            self.on_complete(request)
            self.on_drained(gpu)
            return
        self.cache.on_used(gpu.gpu_id, request.model_id)
        self._set_status(gpu, "idle")
        self._record_latency(request)
        self.on_complete(request)
        self.on_idle(gpu)

    # ------------------------------------------------------------------
    # Failure handling (not in the paper's evaluation, but required of a
    # production runtime: a GPU can die mid-load or mid-inference)
    # ------------------------------------------------------------------
    def abort(self, gpu: GPUDevice) -> InferenceRequest | None:
        """Take ``gpu`` offline, discarding its state.

        Cancels the pending load/inference completion, kills every resident
        process (the models in its memory are lost), withdraws them from
        the Cache Manager, and returns the in-flight request (if any) so
        the caller can re-queue it.  Marks the GPU OFFLINE and its
        Datastore status ``"offline"``.
        """
        if gpu.node_id != self.node.node_id:
            raise ValueError(f"{gpu.gpu_id} is not managed by node {self.node.node_id}")
        slot = gpu._mgr_slot
        event = self._pending_event[slot]
        if event is not None:
            self._pending_event[slot] = None
            event.cancel()  # O(1): frees the event's slab slot immediately
        inflight = self._executing[slot]
        self._executing[slot] = None
        self._take_offline(gpu)
        return inflight

    def drain(self, gpu: GPUDevice) -> bool:
        """Begin a graceful drain of ``gpu``.

        Unlike :meth:`abort`, running work is allowed to finish: if a
        request is in flight the GPU is marked draining (Datastore status
        ``"draining"``) and retires itself on completion; otherwise it goes
        offline immediately.  Either way its cached models are withdrawn
        atomically with the status flip (one write batch).  Returns True
        when retirement was deferred to the in-flight completion.

        The caller owns the queues: drain the GPU's local queue and
        re-queue the work (``FaaSCluster.drain_gpu`` does both, and again
        via ``on_drained`` for anything bound during the drain window).
        """
        if gpu.node_id != self.node.node_id:
            raise ValueError(f"{gpu.gpu_id} is not managed by node {self.node.node_id}")
        if not gpu.is_online:
            return False
        slot = gpu._mgr_slot
        if self._executing[slot] is not None:
            self._draining[slot] = True
            self._set_status(gpu, "draining")
            return True
        self._take_offline(gpu)
        return False

    def _take_offline(self, gpu: GPUDevice) -> None:
        """Shared retirement path (crash abort / drain completion): kill
        resident processes, withdraw cache locations, mark OFFLINE."""
        for model_id in gpu.resident_models():
            gpu.evict(model_id, force=True)
            # a model that was still uploading when the GPU died was never
            # registered as a cache item — only withdraw known ones
            if self.cache.is_cached_on(model_id, gpu.gpu_id):
                self.cache.on_evicted(gpu.gpu_id, model_id)
        gpu.go_offline()
        self.estimator.clear_busy(gpu.gpu_id)
        self._set_status(gpu, "offline")
        self._draining[gpu._mgr_slot] = False

    def recover(self, gpu: GPUDevice) -> None:
        """Bring a failed GPU back, empty, and report it idle."""
        gpu.come_online()
        self._set_status(gpu, "idle")
        self.on_idle(gpu)

    def is_draining(self, gpu_id: str) -> bool:
        return self._draining[self._slot_of[gpu_id]]

    def set_slowdown(self, gpu_id: str, factor: float) -> None:
        """Multiply this GPU's *actual* load/inference durations by
        ``factor`` (straggler injection; 1.0 restores full speed).

        The estimator's profiled expectations are untouched — the policies
        keep planning with healthy numbers while the device underdelivers,
        exactly the blind spot a real straggler creates — but the
        busy-until estimates *published at dispatch time* reflect the
        slowdown (the manager knows how long its own work will take).
        Work already in flight keeps its original completion event.
        """
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")
        slot = self._slot_of[gpu_id]
        self._slowdown[slot] = None if factor == 1.0 else factor

    # ------------------------------------------------------------------
    # Datastore reporting (§III-C, §III-E)
    # ------------------------------------------------------------------
    def in_flight(self, gpu_id: str) -> InferenceRequest | None:
        return self._executing[self._slot_of[gpu_id]]

    def _publish_busy_until(self, gpu: GPUDevice, t: float) -> None:
        self.estimator.set_busy_until(gpu.gpu_id, t)
        if self.datastore is not None:
            self.datastore.put(self._finish_key[gpu._mgr_slot], t)

    def _set_status(self, gpu: GPUDevice, status: str) -> None:
        if self.datastore is not None:
            self.datastore.put(self._status_key[gpu._mgr_slot], status)

    def _record_latency(self, request: InferenceRequest) -> None:
        if self.datastore is None:
            return
        arrival = request.arrival_time
        # positional LatencyRecord + inlined latency/queueing properties:
        # _finished just stamped both timestamps, so the validation is dead
        key = f"fn/latency/{request.request_id}"
        self.datastore.put(
            key,
            LatencyRecord(
                request.function_name,
                request.model_id,
                request.gpu_id,
                request.completed_at - arrival,
                request.dispatched_at - arrival,
                request.cache_hit,
                request.false_miss,
            ),
        )
        if self._latency_keep is not None:
            log = self._latency_log
            log.append(key)
            if len(log) > self._latency_keep:
                self.datastore.delete(log.popleft())
