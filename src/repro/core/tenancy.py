"""Multi-tenant isolation on GPU resources (paper §VI).

The paper sketches three isolation levers against bad actors:

* "limiting the number of GPU processes that each tenant can use",
* "limiting the GPU time share ... that a tenant can use",
* "limiting the ... memory space share that a tenant can use".

:class:`TenancyController` implements all three as admission checks the
Scheduler consults before dispatching a request.  A request whose tenant is
over quota simply stays in the global queue until the tenant's usage drops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.profiles import ModelInstance
from ..sim import Simulator
from .request import InferenceRequest

__all__ = ["TenantQuota", "TenancyController"]


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` disables a dimension."""

    max_processes: int | None = None       # concurrent GPU processes
    max_memory_fraction: float | None = None  # share of total GPU memory
    max_time_fraction: float | None = None    # share of total GPU time

    def __post_init__(self) -> None:
        if self.max_processes is not None and self.max_processes < 0:
            raise ValueError("max_processes cannot be negative")
        for frac in (self.max_memory_fraction, self.max_time_fraction):
            if frac is not None and not 0.0 <= frac <= 1.0:
                raise ValueError("fractions must be within [0, 1]")


class TenancyController:
    """Tracks per-tenant usage and answers admission checks."""

    def __init__(
        self,
        sim: Simulator,
        *,
        quotas: dict[str, TenantQuota] | None = None,
        total_memory_mb: float,
        num_gpus: int,
        cache=None,
    ) -> None:
        """``cache`` (optional) is a CacheManager-like object exposing
        ``cached_anywhere(model_id)``; with it, requests whose model is
        already resident somewhere are admitted even at the process limit
        (they will be served as cache hits and start no new process).
        Without it the controller is conservative and blocks them too."""
        if total_memory_mb <= 0 or num_gpus <= 0:
            raise ValueError("cluster capacity must be positive")
        self.sim = sim
        self.quotas = dict(quotas or {})
        self.total_memory_mb = total_memory_mb
        self.num_gpus = num_gpus
        self._cache = cache
        self._tenant_of_model: dict[str, str] = {}
        self._model_size: dict[str, float] = {}
        self._processes: dict[str, int] = {}      # tenant -> resident process count
        self._memory_mb: dict[str, float] = {}    # tenant -> resident MB
        self._gpu_time_s: dict[str, float] = {}   # tenant -> cumulative busy seconds
        #: models reserved at dispatch time but not yet reported loaded —
        #: closes the window where concurrent dispatches could overshoot a
        #: quota before their "load" cache events arrive
        self._pending_loads: set[str] = set()

    # ------------------------------------------------------------------
    # Registration and accounting hooks
    # ------------------------------------------------------------------
    def register_instance(self, instance: ModelInstance) -> None:
        """Teach the controller which tenant owns a model instance."""
        self._tenant_of_model[instance.instance_id] = instance.tenant
        self._model_size[instance.instance_id] = instance.occupied_mb

    def on_dispatch(self, request: InferenceRequest) -> None:
        """GPU Manager hook: a dispatch that will load a model reserves the
        tenant's process/memory budget immediately."""
        if request.cache_hit is not False:
            return
        model_id = request.model_id
        tenant = self._tenant_of_model.get(model_id)
        if tenant is None or model_id in self._pending_loads:
            return
        self._pending_loads.add(model_id)
        self._processes[tenant] = self._processes.get(tenant, 0) + 1
        self._memory_mb[tenant] = (
            self._memory_mb.get(tenant, 0.0) + self._model_size[model_id]
        )

    def on_load_aborted(self, model_id: str) -> None:
        """Release a dispatch-time reservation whose load never completed
        (the target GPU failed mid-upload)."""
        if model_id not in self._pending_loads:
            return
        self._pending_loads.discard(model_id)
        tenant = self._tenant_of_model.get(model_id)
        if tenant is None:
            return
        self._processes[tenant] = max(0, self._processes.get(tenant, 0) - 1)
        self._memory_mb[tenant] = max(
            0.0, self._memory_mb.get(tenant, 0.0) - self._model_size[model_id]
        )

    def on_cache_event(self, kind: str, gpu_id: str, model_id: str, now: float) -> None:
        """CacheManager observer: track per-tenant processes and memory."""
        tenant = self._tenant_of_model.get(model_id)
        if tenant is None:
            return
        size = self._model_size[model_id]
        if kind == "load":
            if model_id in self._pending_loads:
                self._pending_loads.discard(model_id)  # reserved at dispatch
                return
            self._processes[tenant] = self._processes.get(tenant, 0) + 1
            self._memory_mb[tenant] = self._memory_mb.get(tenant, 0.0) + size
        elif kind == "evict":
            self._processes[tenant] = max(0, self._processes.get(tenant, 0) - 1)
            self._memory_mb[tenant] = max(0.0, self._memory_mb.get(tenant, 0.0) - size)

    def on_request_complete(self, request: InferenceRequest) -> None:
        """Charge the request's service time against its tenant."""
        self._gpu_time_s[request.tenant] = (
            self._gpu_time_s.get(request.tenant, 0.0) + request.service_time
        )

    # ------------------------------------------------------------------
    # Per-pass fast-path probe (§VI scalability with isolation installed)
    # ------------------------------------------------------------------
    def pass_admission_trivial(self, queue, max_new_loads: int) -> bool:
        """True when no admission check can refuse a queued request for the
        remainder of the current scheduling pass.

        The index-driven scheduling fast paths skip the per-request
        ``may_dispatch`` probes, so they are only sound while every probe
        would answer yes.  This method certifies that *for one pass* from
        the queue's tenant index, conservatively:

        * ``max_new_loads`` bounds how many model loads the pass can still
          start (at most one per idle GPU — GPUs never become idle
          mid-pass, completions arrive as separate simulator events);
        * each load charges at most the tenant's largest queued model;
        * GPU-time usage is constant within a pass (it only advances on
          completion events) so the time-share check is evaluated once.

        Quota'd tenants whose headroom cannot absorb that worst case — and
        queues without a tenant index (``queued_tenants() is None``) — make
        the probe fail, sending the policy to the reference scans whose
        per-request checks handle refusals exactly.
        """
        if not self.quotas:
            return True
        tenants = queue.queued_tenants()
        if tenants is None:
            return False  # untracked queue: cannot certify, fail safe
        now = self.sim.now
        for tenant in self.quotas.keys() & tenants:
            quota = self.quotas[tenant]
            if quota.max_processes is not None:
                if self._processes.get(tenant, 0) + max_new_loads > quota.max_processes:
                    return False
            if quota.max_memory_fraction is not None:
                projected = (
                    self._memory_mb.get(tenant, 0.0)
                    + max_new_loads * queue.max_queued_model_mb(tenant)
                )
                if projected / self.total_memory_mb > quota.max_memory_fraction:
                    return False
            if quota.max_time_fraction is not None and now > 0:
                capacity = self.num_gpus * now
                if self._gpu_time_s.get(tenant, 0.0) / capacity > quota.max_time_fraction:
                    return False
        return True

    # ------------------------------------------------------------------
    # Admission check (consulted by the Scheduler)
    # ------------------------------------------------------------------
    def allows(self, request: InferenceRequest, *, will_load: bool | None = None) -> bool:
        """Admission check.

        ``will_load`` tells the controller whether the candidate dispatch
        would start a new GPU process (the Scheduler knows: the target GPU
        either caches the model or not).  ``None`` falls back to a
        conservative heuristic: a new process is assumed unless the model
        is known to be resident somewhere.
        """
        quota = self.quotas.get(request.tenant)
        if quota is None:
            return True
        tenant = request.tenant
        if will_load is not None:
            may_start_process = will_load
        else:
            may_start_process = not (
                self._cache is not None and self._cache.cached_anywhere(request.model_id)
            )
        if quota.max_processes is not None and may_start_process:
            if self._processes.get(tenant, 0) >= quota.max_processes:
                return False
        if quota.max_memory_fraction is not None and may_start_process:
            projected = self._memory_mb.get(tenant, 0.0) + request.model.occupied_mb
            if projected / self.total_memory_mb > quota.max_memory_fraction:
                return False
        if quota.max_time_fraction is not None and self.sim.now > 0:
            capacity = self.num_gpus * self.sim.now
            if self._gpu_time_s.get(tenant, 0.0) / capacity > quota.max_time_fraction:
                return False
        return True

    # ------------------------------------------------------------------
    # Introspection (used by tests and reports)
    # ------------------------------------------------------------------
    def usage(self, tenant: str) -> dict[str, float]:
        return {
            "processes": self._processes.get(tenant, 0),
            "memory_mb": self._memory_mb.get(tenant, 0.0),
            "gpu_time_s": self._gpu_time_s.get(tenant, 0.0),
        }
