"""The global Cache Manager (paper §III-D).

Treats the models uploaded to each GPU's memory as cache items:

* keeps one replacement-policy list per GPU (LRU by default) — the per-GPU
  separation is what keeps the global manager scalable (§VI),
* answers hit/miss lookups for the GPU Managers,
* chooses eviction victims on a miss, given the GPU's free space and the
  missing model's occupation size,
* maintains the model → [GPUs caching it] index the Scheduler uses
  (§VI: "the Cache Manager maintains the lists of GPUs where each model is
  cached, and shares this information with the Scheduler through the
  Datastore"),
* mirrors each GPU's LRU list and every model's locations into the
  Datastore — as *dirty keys*: each cache event marks the touched GPU's
  LRU key and the model's location key via ``put_lazy``, and the eviction
  order is serialized once per write-batch flush rather than once per
  touch (against a batched Datastore, ten LRU touches within one
  scheduling action commit as one transaction carrying one list).
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..cluster.gpu import GPUDevice
from ..datastore.batch import DELETE
from ..datastore.client import DatastoreClient
from ..models.profiles import ModelInstance
from ..sim import Simulator
from .replacement import EvictionPolicy, LRUPolicy

__all__ = ["CacheManager", "CacheEvent"]


class CacheEvent(Protocol):  # pragma: no cover - typing helper
    """Observer signature: ``fn(kind, gpu_id, model_id, now)``.

    ``kind`` is one of ``"load"``, ``"evict"``, ``"use"``.
    """

    def __call__(self, kind: str, gpu_id: str, model_id: str, now: float) -> None: ...


class CacheManager:
    """Global manager of the models cached across all GPU memories."""

    def __init__(
        self,
        sim: Simulator,
        gpus: list[GPUDevice],
        *,
        datastore: DatastoreClient | None = None,
        policy_factory: Callable[[], EvictionPolicy] = LRUPolicy,
    ) -> None:
        self.sim = sim
        self._gpus = {g.gpu_id: g for g in gpus}
        self._policies: dict[str, EvictionPolicy] = {
            g.gpu_id: policy_factory() for g in gpus
        }
        self._locations: dict[str, set[str]] = {}  # model_id -> gpu_ids
        self._locations_sorted: dict[str, list[str]] = {}  # invalidated on load/evict
        self._datastore = datastore
        self._observers: list[CacheEvent] = []
        #: optional flight recorder (installed by the runtime when tracing
        #: is on); load/evict only — ``on_used`` runs on every dispatch and
        #: stays uninstrumented
        self.tracer = None
        # dirty-key names and thunks, built once per GPU / lazily per model:
        # _publish runs on every cache touch, so no f-strings or closures
        # are allocated on that path.  Published values are tuples — an
        # immutable snapshot per commit; the store's history retains one
        # per flush, and immutable tuples drop out of cyclic-GC tracking,
        # which matters over 100k+-request replays.
        self._lru_marks = {
            g.gpu_id: (
                f"gpu/lru/{g.gpu_id}",
                # late-bound through _policies: ablations swap the policy
                # objects after construction (Belady oracle)
                lambda gid=g.gpu_id: self._policies[gid].eviction_order_tuple(),
            )
            for g in gpus
        }
        self._location_marks: dict[str, tuple[str, Callable[[], object]]] = {}

    # ------------------------------------------------------------------
    # Lookups (used by GPU Managers and the Scheduler)
    # ------------------------------------------------------------------
    def is_cached_on(self, model_id: str, gpu_id: str) -> bool:
        return gpu_id in self._locations.get(model_id, ())

    def locations(self, model_id: str) -> list[str]:
        """GPUs where ``model_id`` is resident, sorted for determinism.

        Cached between residency changes (Alg. 2 asks on every scan);
        callers must not mutate the returned list.
        """
        cached = self._locations_sorted.get(model_id)
        if cached is None:
            cached = self._locations_sorted[model_id] = sorted(
                self._locations.get(model_id, ())
            )
        return cached

    def duplicates(self, model_id: str) -> int:
        """Number of GPUs simultaneously caching ``model_id`` (Fig. 6 metric)."""
        return len(self._locations.get(model_id, ()))

    def cached_anywhere(self, model_id: str) -> bool:
        return bool(self._locations.get(model_id))

    def models_on(self, gpu_id: str) -> frozenset[str]:
        """Model instances resident on ``gpu_id`` (cached view, O(1)).

        This is the §VI bound the scheduling fast path leans on: LALB's
        first scan asks for *this* set and does one queue-index lookup per
        member, so its cost is "bounded by the number of models cached on
        the GPU" rather than the queue length.
        """
        return self._policies[gpu_id].resident

    def lru_list(self, gpu_id: str) -> list[str]:
        """Eviction order of ``gpu_id`` (coldest first)."""
        return self._policies[gpu_id].eviction_order()

    # ------------------------------------------------------------------
    # Victim selection (§III-D)
    # ------------------------------------------------------------------
    def choose_victims(
        self, gpu_id: str, instance: ModelInstance, pinned: list[str] | None = None
    ) -> list[str]:
        """Victims that must be evicted from ``gpu_id`` to fit ``instance``.

        Mirrors the paper's protocol: the GPU Manager sends the GPU's
        available memory and the missing model's ID; the Cache Manager
        answers with victims chosen from that GPU's LRU list.
        """
        gpu = self._gpus[gpu_id]
        return self._policies[gpu_id].choose_victims(
            instance.occupied_mb, gpu.free_mb, pinned or []
        )

    # ------------------------------------------------------------------
    # State transitions (driven by GPU Managers)
    # ------------------------------------------------------------------
    def on_loaded(self, gpu_id: str, instance: ModelInstance) -> None:
        """A model finished uploading to ``gpu_id``."""
        self._policies[gpu_id].on_insert(instance.instance_id, instance.occupied_mb, self.sim.now)
        self._locations.setdefault(instance.instance_id, set()).add(gpu_id)
        self._locations_sorted.pop(instance.instance_id, None)
        self._publish(gpu_id, instance.instance_id)
        self._emit("load", gpu_id, instance.instance_id)
        if self.tracer is not None:
            self.tracer.cache_event("load", gpu_id, instance.instance_id)

    def on_evicted(self, gpu_id: str, model_id: str) -> None:
        """A model's process was killed and its memory released."""
        self._policies[gpu_id].on_evict(model_id)
        locs = self._locations.get(model_id)
        if locs:
            locs.discard(gpu_id)
            if not locs:
                del self._locations[model_id]
        self._locations_sorted.pop(model_id, None)
        self._publish(gpu_id, model_id)
        self._emit("evict", gpu_id, model_id)
        if self.tracer is not None:
            self.tracer.cache_event("evict", gpu_id, model_id)

    def on_used(self, gpu_id: str, model_id: str) -> None:
        """An inference on ``gpu_id`` reused the cached model (LRU touch).

        A use cannot change where the model is resident, and often (hot
        model re-used on its home GPU) does not even reorder the LRU
        list, so the no-op halves of the mirror write are elided: the
        locations key is never re-put on a use, and the LRU key only when
        the replacement policy reports the order actually changed.  Each
        skipped mark was one committed key, one ``KeyValue``, and one
        history entry per completion that said nothing — etcd clients do
        not re-put values they know are unchanged either.
        """
        changed = self._policies[gpu_id].on_access(model_id, self.sim._now)
        if changed:
            self._publish(gpu_id, model_id, locations_changed=False)
        self._emit("use", gpu_id, model_id)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def subscribe(self, fn: CacheEvent) -> None:
        """Register a cache-event observer (the metrics collector)."""
        self._observers.append(fn)

    def _emit(self, kind: str, gpu_id: str, model_id: str) -> None:
        now = self.sim._now  # hot path: one read, no property call
        for fn in self._observers:
            fn(kind, gpu_id, model_id, now)

    def _publish(
        self, gpu_id: str, model_id: str, *, locations_changed: bool = True
    ) -> None:
        """Mark the GPU's LRU list and the model's locations dirty (§III-E).

        The values are supplied lazily: a batched Datastore evaluates the
        thunks once at flush time (dirty-key semantics — repeated touches
        between flushes serialize the eviction order once), an unbatched
        one immediately, preserving the literal per-put path.  An empty
        location list deletes the key, exactly like the eager path did.
        ``locations_changed=False`` (cache *uses*) skips the locations
        mark: residency did not move, so the write would commit an
        unchanged value.
        """
        if self._datastore is None:
            return
        lru_key, lru_thunk = self._lru_marks[gpu_id]
        self._datastore.put_lazy(lru_key, lru_thunk)
        if not locations_changed:
            return
        mark = self._location_marks.get(model_id)
        if mark is None:
            mark = (
                f"cache/locations/{model_id}",
                lambda model_id=model_id: tuple(self.locations(model_id)) or DELETE,
            )
            self._location_marks[model_id] = mark
        self._datastore.put_lazy(mark[0], mark[1])
