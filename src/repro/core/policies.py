"""Scheduling policies (paper §IV).

* :class:`LoadBalancingPolicy` (**LB**) — the baseline: "simply dispatches
  the request at the head of the global queue whenever a GPU becomes idle"
  (§V-A).
* :class:`LALBPolicy` — locality-aware load-balancing, Algorithms 1 and 2,
  parameterized by the out-of-order (O3) skip limit.  ``limit=0`` is the
  paper's **LALB**; ``limit=25`` (the default) is **LALBO3**.

Policies act through the :class:`SchedulerOps` interface exposed by the
Scheduler, so they are pure decision logic and unit-testable against fakes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

from ..cluster.gpu import GPUDevice
from .cache_manager import CacheManager
from .estimator import FinishTimeEstimator
from .queues import GlobalQueue, LocalQueues
from .request import InferenceRequest

__all__ = [
    "SchedulerOps",
    "SchedulingPolicy",
    "LoadBalancingPolicy",
    "LocalityOnlyPolicy",
    "LALBPolicy",
    "make_scheduling_policy",
    "DEFAULT_O3_LIMIT",
]

#: Paper §IV-B: "it sets a specified limit (by default 25)".
DEFAULT_O3_LIMIT = 25


class SchedulerOps(Protocol):  # pragma: no cover - typing interface
    """What a policy may observe and do; implemented by the Scheduler."""

    global_queue: GlobalQueue
    local_queues: LocalQueues
    cache: CacheManager
    estimator: FinishTimeEstimator

    def idle_gpus(self) -> list[GPUDevice]: ...
    def idle_gpus_by_frequency(self) -> list[GPUDevice]: ...
    def busy_gpus(self) -> list[GPUDevice]: ...
    def gpu(self, gpu_id: str) -> GPUDevice: ...
    def dispatch(self, request: InferenceRequest, gpu: GPUDevice) -> None: ...
    def dispatch_local_head(self, gpu: GPUDevice) -> None: ...
    def move_to_local(self, request: InferenceRequest, gpu: GPUDevice) -> None: ...
    def may_dispatch(
        self, request: InferenceRequest, gpu: GPUDevice | None = None
    ) -> bool: ...


class SchedulingPolicy(ABC):
    """One pass of scheduling decisions over the current system state."""

    name: str = "abstract"

    @abstractmethod
    def schedule_pass(self, s: SchedulerOps) -> bool:
        """Make dispatch decisions; return True if anything changed.

        The Scheduler re-invokes the pass until it reports no progress, so a
        policy need not drain every opportunity in a single pass.
        """


class LoadBalancingPolicy(SchedulingPolicy):
    """Default load-balancing baseline (no locality awareness)."""

    name = "lb"

    def schedule_pass(self, s: SchedulerOps) -> bool:
        progress = False
        for gpu in s.idle_gpus():
            if not gpu.is_idle:  # may have changed earlier in this pass
                continue
            # LB never populates local queues, but drain defensively so a
            # policy switch mid-experiment cannot strand requests.
            if s.local_queues.peek(gpu.gpu_id) is not None:
                s.dispatch_local_head(gpu)
                progress = True
                continue
            request = self._head(s, gpu)
            if request is None:
                continue
            s.dispatch(request, gpu)
            progress = True
        return progress

    @staticmethod
    def _head(s: SchedulerOps, gpu: GPUDevice) -> InferenceRequest | None:
        for request in s.global_queue:
            if s.may_dispatch(request, gpu):
                return request
        return None


class LocalityOnlyPolicy(SchedulingPolicy):
    """Pure locality: always wait for the GPU that caches the model.

    The strawman §I warns about: "favoring locality may increase the
    average latency of requests because all the requests are forwarded to
    the GPU that has the model cached while the others are left idle."

    A request whose model is cached *anywhere* is bound to a caching GPU
    (idle → dispatch, busy → local queue, however long the wait); only
    requests whose model is cached nowhere may use an idle GPU.  Exists to
    quantify why LALB balances locality against load (see
    ``benchmarks/test_ablation_locality_only.py``).
    """

    name = "locality"

    def schedule_pass(self, s: SchedulerOps) -> bool:
        progress = False
        # serve local queues first, like LALB
        for gpu in s.idle_gpus_by_frequency():
            if not gpu.is_idle:
                continue
            if s.local_queues.peek(gpu.gpu_id) is not None:
                s.dispatch_local_head(gpu)
                progress = True
        for request in s.global_queue:
            if not s.may_dispatch(request):
                continue
            locations = s.cache.locations(request.model_id)
            if locations:
                handled = self._bind_to_cached_gpu(s, request, locations)
                progress = progress or handled
            else:
                idle = [
                    g
                    for g in s.idle_gpus_by_frequency()
                    if s.local_queues.peek(g.gpu_id) is None and s.may_dispatch(request, g)
                ]
                if idle:
                    s.dispatch(request, idle[0])
                    progress = True
        return progress

    @staticmethod
    def _bind_to_cached_gpu(s: SchedulerOps, request, locations) -> bool:
        for gpu_id in locations:
            gpu = s.gpu(gpu_id)
            if gpu.is_idle and s.local_queues.peek(gpu_id) is None:
                s.dispatch(request, gpu)
                return True
        # every caching GPU is busy → wait behind the least-loaded copy,
        # no matter how long (that is the point of the strawman)
        busy = [s.gpu(g) for g in locations if not s.gpu(g).is_idle and s.gpu(g).is_online]
        if not busy:
            return False  # caching GPUs exist but are unusable right now
        target = min(busy, key=lambda g: (s.estimator.estimated_finish_time(g), g.gpu_id))
        s.move_to_local(request, target)
        return True


class LALBPolicy(SchedulingPolicy):
    """Locality-Aware Load-Balancing with optional out-of-order dispatch.

    Implements Algorithm 1 (per idle GPU, sorted by use frequency):

    1. serve the GPU's local queue first;
    2. scan the global queue in arrival order for a request whose model is
       cached on this GPU and dispatch it (the O3 promotion), force-routing
       any request that has been skipped more than ``limit`` times through
       :meth:`_locality_load_balance` (Algorithm 2) to prevent starvation;
    3. if no queued request is cached here, run Algorithm 2 over the queue
       in arrival order until some request lands on this GPU.
    """

    def __init__(self, limit: int = DEFAULT_O3_LIMIT) -> None:
        if limit < 0:
            raise ValueError("O3 limit cannot be negative")
        self.limit = limit
        self.name = "lalbo3" if limit > 0 else "lalb"

    def schedule_pass(self, s: SchedulerOps) -> bool:
        progress = False
        for gpu in s.idle_gpus_by_frequency():
            if not gpu.is_idle:  # became busy earlier in this pass
                continue
            # Alg. 1 lines 2–5: local queue has absolute priority.
            if s.local_queues.peek(gpu.gpu_id) is not None:
                s.dispatch_local_head(gpu)
                progress = True
                continue
            if len(s.global_queue) == 0:
                continue
            if self._schedule_gpu(s, gpu):
                progress = True
        return progress

    # ------------------------------------------------------------------
    def _schedule_gpu(self, s: SchedulerOps, gpu: GPUDevice) -> bool:
        """Algorithm 1 lines 6–22 for one idle GPU; True if anything changed."""
        acted = False
        # -- first scan (lines 6–16): look for a cache hit on this GPU ----
        for request in s.global_queue:
            if not s.may_dispatch(request):
                continue
            if s.cache.is_cached_on(request.model_id, gpu.gpu_id):
                s.dispatch(request, gpu)  # line 8
                return True
            if request.visits > self.limit:  # line 11: starvation guard
                outcome = self._locality_load_balance(s, gpu, request)
                if outcome == "to_this_gpu":
                    return True  # line 13: GPUi consumed → next GPU
                if outcome == "handled":
                    acted = True
                continue  # blocked or handled elsewhere; keep scanning
            request.visits += 1  # line 15: skipped once more
        # -- second scan (lines 17–21): no cached request for this GPU ----
        for request in s.global_queue:
            if not s.may_dispatch(request):
                continue
            outcome = self._locality_load_balance(s, gpu, request)
            if outcome == "to_this_gpu":
                return True
            if outcome == "handled":
                acted = True
        return acted

    def _locality_load_balance(
        self, s: SchedulerOps, gpu_i: GPUDevice, request: InferenceRequest
    ) -> str:
        """Algorithm 2.  Outcomes:

        * ``"to_this_gpu"`` — dispatched to ``gpu_i`` as a cache miss
          (Alg. 2 returns True);
        * ``"handled"`` — dispatched to another idle GPU with the model
          cached, or moved into a busy GPU's local queue (returns False);
        * ``"blocked"`` — left in the global queue because the tenant's
          quota forbids starting a new GPU process (§VI extension).
        """
        locations = s.cache.locations(request.model_id)
        # Lines 1–3: not cached anywhere → allow the miss on GPUi
        # (subject to the tenant's quota on new GPU processes, §VI).
        if not locations:
            if not s.may_dispatch(request, gpu_i):
                return "blocked"  # stays queued until the tenant's usage drops
            s.dispatch(request, gpu_i)
            return "to_this_gpu"
        # Lines 4–6: cached on another idle GPU → dispatch there instead.
        # (Skip idle GPUs whose local queue is pending — Alg. 1 gives local
        # queues absolute priority, so those GPUs are already spoken for.)
        for gpu_id in locations:
            other = s.gpu(gpu_id)
            if (
                other.is_idle
                and other.gpu_id != gpu_i.gpu_id
                and s.local_queues.peek(other.gpu_id) is None
            ):
                s.dispatch(request, other)
                return "handled"
        # Lines 8–15: cached on busy GPUs → queue behind the cached copy
        # when the wait beats the model-loading time on the idle GPU.
        for gpu_id in locations:
            busy = s.gpu(gpu_id)
            if busy.is_idle:
                continue
            if s.estimator.hit_on_busy_beats_miss_on_idle(request, busy, gpu_i):
                s.move_to_local(request, busy)
                return "handled"
        # Lines 16–18: no busy GPU wins → allow the cache miss on GPUi
        # (again subject to the tenant's new-process quota).
        if not s.may_dispatch(request, gpu_i):
            return "blocked"
        s.dispatch(request, gpu_i)
        return "to_this_gpu"


def make_scheduling_policy(name: str, *, o3_limit: int = DEFAULT_O3_LIMIT) -> SchedulingPolicy:
    """Factory: the paper's three schedulers (``"lb"``, ``"lalb"``,
    ``"lalbo3"``) plus the ``"locality"`` strawman of §I."""
    key = name.lower()
    if key == "lb":
        return LoadBalancingPolicy()
    if key == "locality":
        return LocalityOnlyPolicy()
    if key == "lalb":
        return LALBPolicy(limit=0)
    if key == "lalbo3":
        return LALBPolicy(limit=o3_limit)
    raise KeyError(f"unknown policy {name!r}; known: lb, locality, lalb, lalbo3")
