"""Scheduling policies (paper §IV).

* :class:`LoadBalancingPolicy` (**LB**) — the baseline: "simply dispatches
  the request at the head of the global queue whenever a GPU becomes idle"
  (§V-A).
* :class:`LALBPolicy` — locality-aware load-balancing, Algorithms 1 and 2,
  parameterized by the out-of-order (O3) skip limit.  ``limit=0`` is the
  paper's **LALB**; ``limit=25`` (the default) is **LALBO3**.

Policies act through the :class:`SchedulerOps` interface exposed by the
Scheduler, so they are pure decision logic and unit-testable against fakes.

Fast path (§VI scalability)
---------------------------
Every policy carries two interchangeable implementations of its queue
scan:

* the **index-driven fast path** (default) — Alg. 1's first scan asks the
  Cache Manager for the GPU's resident models and the GlobalQueue's
  model index for each model's oldest request, so its cost is bounded by
  the number of models cached on the GPU, exactly as §VI argues; the O3
  ``visits`` bookkeeping collapses into one O(log n) prefix update; the
  starvation guard walks the queue's ordered starved set instead of
  rediscovering starved requests by rescanning; the second scan walks
  queue heads (every Algorithm-2 outcome removes the head, so the cost is
  proportional to decisions made, not queue length);
* the **reference scan** (``use_fast_path = False``) — the literal
  O(GPUs × queue) loop transcribed from Algorithms 1/2.  It is kept both
  as executable documentation and so the decision-parity tests can assert
  the fast path produces byte-identical ``DecisionLog`` sequences.

Pass elision (dirty signals)
----------------------------
Every policy also declares a :class:`~repro.core.signals.PassGuard` — the
preconditions under which one pass can produce any decision.  The
Scheduler's elision engine consults it before every would-be pass and
skips passes the guard proves are no-ops; inside a pass, policies that
support it consult the same predicate (``SchedulerOps.
pass_work_remaining``, bound only when elision is on) to stop walking
idle GPUs once no remaining GPU can act.  Elision changes *which
provably-empty scans run*, never a decision: the parity suites replay
identical workloads with elision on and off and require byte-identical
``DecisionLog``s.  (The ``fast_scans``/``reference_scans`` counters may
legitimately differ across elision modes — an elided pass performs no
scans at all.)

The fast path assumes the admission check is trivially true.  With a
:class:`~repro.core.tenancy.TenancyController` installed the policies no
longer fall back to the reference scans wholesale: before each per-GPU
scan they ask the controller to *certify the pass* from the GlobalQueue's
tenant index (``pass_admission_trivial`` — every queued tenant has enough
quota headroom to absorb the pass's worst case, so no ``may_dispatch``
probe can refuse).  Only when a quota is actually binding does the scan
drop to the literal reference loops, whose per-request probes handle
refusals exactly.  ``fast_scans`` / ``reference_scans`` count which route
each per-GPU scan took.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Protocol

from ..cluster.gpu import GPUDevice
from .cache_manager import CacheManager
from .estimator import FinishTimeEstimator
from .queues import GlobalQueue, LocalQueues
from .request import InferenceRequest
from .signals import DispatchableWorkGuard, PassGuard

__all__ = [
    "SchedulerOps",
    "SchedulingPolicy",
    "LoadBalancingPolicy",
    "LocalityOnlyPolicy",
    "LALBPolicy",
    "make_scheduling_policy",
    "DEFAULT_O3_LIMIT",
]

#: Paper §IV-B: "it sets a specified limit (by default 25)".
DEFAULT_O3_LIMIT = 25


class SchedulerOps(Protocol):  # pragma: no cover - typing interface
    """What a policy may observe and do; implemented by the Scheduler.

    ``pass_work_remaining`` is the optional mid-pass narrowing probe: the
    elision engine binds it to the policy's :class:`PassGuard` so a pass
    can stop walking idle GPUs the moment no remaining GPU can possibly
    act (the same provable-no-op predicate that elides whole passes).
    Implementations without it (unit-test fakes, the literal engine with
    elision off) simply run the full historical walk — policies look it
    up with ``getattr(..., None)`` and never require it.
    """

    global_queue: GlobalQueue
    local_queues: LocalQueues
    cache: CacheManager
    estimator: FinishTimeEstimator
    #: admission controller, or None when may_dispatch is trivially true.
    #: Implementations whose may_dispatch can refuse requests MUST expose a
    #: non-None value here, or the fast paths will skip the admission probes.
    tenancy: object | None

    def idle_gpus(self) -> list[GPUDevice]: ...
    def idle_gpus_by_frequency(self) -> list[GPUDevice]: ...
    def busy_gpus(self) -> list[GPUDevice]: ...
    def gpu(self, gpu_id: str) -> GPUDevice: ...
    def dispatch(self, request: InferenceRequest, gpu: GPUDevice) -> None: ...
    def dispatch_local_head(self, gpu: GPUDevice) -> None: ...
    def move_to_local(self, request: InferenceRequest, gpu: GPUDevice) -> None: ...
    def may_dispatch(
        self, request: InferenceRequest, gpu: GPUDevice | None = None
    ) -> bool: ...


_MISSING = object()


def _admission_is_trivial(s: SchedulerOps) -> bool:
    """True when no ``may_dispatch`` probe can refuse for the rest of this
    scheduling pass, so an index-driven scan that skips the probes is
    decision-identical to the reference loop.

    Three cases:

    * no tenancy controller — trivially true (the PR-1 fast-path gate);
    * a controller exposing ``pass_admission_trivial`` — certified from
      the GlobalQueue's tenant index against the pass's worst case (at
      most one new model load per currently idle GPU), O(quota'd tenants)
      instead of a queue scan;
    * anything else (a ``tenancy`` object without the probe, or an ops
      implementation omitting the attribute) — fail safe: the reference
      scans run and probe ``may_dispatch`` per request.
    """
    tenancy = getattr(s, "tenancy", _MISSING)
    if tenancy is None:
        return True
    if tenancy is _MISSING:
        return False
    probe = getattr(tenancy, "pass_admission_trivial", None)
    if probe is None:
        return False
    return probe(s.global_queue, len(s.idle_gpus()))


class SchedulingPolicy(ABC):
    """One pass of scheduling decisions over the current system state."""

    name: str = "abstract"
    #: flip to False to run the literal Algorithm-1/2 scans (parity tests)
    use_fast_path: bool = True
    #: preconditions for a pass to act; the elision engine consults this
    #: before every would-be pass.  The base guard is the conservative
    #: fail-safe (exactly the historical run conditions), so subclasses
    #: that declare nothing are never over-elided.
    guard: PassGuard = PassGuard()

    def __init__(self) -> None:
        #: per-GPU scans served by the index-driven fast path
        self.fast_scans = 0
        #: per-GPU scans that dropped to the literal reference loops
        self.reference_scans = 0

    @abstractmethod
    def schedule_pass(self, s: SchedulerOps) -> bool:
        """Make dispatch decisions; return True if anything changed.

        The Scheduler re-invokes the pass until it reports no progress, so a
        policy need not drain every opportunity in a single pass.
        """


class LoadBalancingPolicy(SchedulingPolicy):
    """Default load-balancing baseline (no locality awareness)."""

    name = "lb"
    guard = DispatchableWorkGuard()

    def schedule_pass(self, s: SchedulerOps) -> bool:
        work = getattr(s, "pass_work_remaining", None)
        progress = False
        for gpu in s.idle_gpus():
            if not gpu.is_idle:  # may have changed earlier in this pass
                continue
            # LB never populates local queues, but drain defensively so a
            # policy switch mid-experiment cannot strand requests.
            if s.local_queues.peek(gpu.gpu_id) is not None:
                s.dispatch_local_head(gpu)
                progress = True
            else:
                request = self._head(s, gpu)
                if request is None:
                    continue
                s.dispatch(request, gpu)
                progress = True
            # narrowing: state changed; if no remaining idle GPU can act,
            # the rest of the walk is provably a no-op
            if work is not None and not work():
                return True
        return progress

    def _head(self, s: SchedulerOps, gpu: GPUDevice) -> InferenceRequest | None:
        if self.use_fast_path and _admission_is_trivial(s):
            self.fast_scans += 1
            return s.global_queue.head()  # O(1): admission cannot refuse it
        self.reference_scans += 1
        return self._head_reference(s, gpu)

    @staticmethod
    def _head_reference(s: SchedulerOps, gpu: GPUDevice) -> InferenceRequest | None:
        for request in s.global_queue:
            if s.may_dispatch(request, gpu):
                return request
        return None


class LocalityOnlyPolicy(SchedulingPolicy):
    """Pure locality: always wait for the GPU that caches the model.

    The strawman §I warns about: "favoring locality may increase the
    average latency of requests because all the requests are forwarded to
    the GPU that has the model cached while the others are left idle."

    A request whose model is cached *anywhere* is bound to a caching GPU
    (idle → dispatch, busy → local queue, however long the wait); only
    requests whose model is cached nowhere may use an idle GPU.  Exists to
    quantify why LALB balances locality against load (see
    ``benchmarks/test_ablation_locality_only.py``).
    """

    name = "locality"
    #: the guard gates pass *entry* only: once running, the global-queue
    #: walk below may still bind requests to busy GPUs after the last
    #: idle GPU is consumed, so this pass never narrows mid-walk
    guard = DispatchableWorkGuard()

    def schedule_pass(self, s: SchedulerOps) -> bool:
        progress = False
        # serve local queues first, like LALB
        for gpu in s.idle_gpus_by_frequency():
            if not gpu.is_idle:
                continue
            if s.local_queues.peek(gpu.gpu_id) is not None:
                s.dispatch_local_head(gpu)
                progress = True
        # One pass-local idle view instead of re-probing per queue entry:
        # within a pass GPUs only *leave* the idle set (completions arrive
        # as separate simulator events) and completion counts are frozen,
        # so filtering the snapshot on ``is_idle`` yields exactly the
        # membership and frequency order a fresh probe would.
        idle_view = s.idle_gpus_by_frequency()
        # the fast iteration allocates no snapshot; each visited request is
        # either left in place or removed, so the live walk sees the same
        # sequence as the reference snapshot
        requests = (
            s.global_queue.iter_requests() if self.use_fast_path else iter(s.global_queue)
        )
        for request in requests:
            if not s.may_dispatch(request):
                continue
            locations = s.cache.locations(request.model_id)
            if locations:
                handled = self._bind_to_cached_gpu(s, request, locations)
                progress = progress or handled
            else:
                idle = [
                    g
                    for g in idle_view
                    if g.is_idle
                    and s.local_queues.peek(g.gpu_id) is None
                    and s.may_dispatch(request, g)
                ]
                if idle:
                    s.dispatch(request, idle[0])
                    progress = True
        return progress

    @staticmethod
    def _bind_to_cached_gpu(s: SchedulerOps, request, locations) -> bool:
        for gpu_id in locations:
            gpu = s.gpu(gpu_id)
            if gpu.is_idle and s.local_queues.peek(gpu_id) is None:
                s.dispatch(request, gpu)
                return True
        # every caching GPU is busy → wait behind the least-loaded copy,
        # no matter how long (that is the point of the strawman)
        busy = [s.gpu(g) for g in locations if not s.gpu(g).is_idle and s.gpu(g).is_online]
        if not busy:
            return False  # caching GPUs exist but are unusable right now
        target = min(busy, key=lambda g: (s.estimator.estimated_finish_time(g), g.gpu_id))
        s.move_to_local(request, target)
        return True


class LALBPolicy(SchedulingPolicy):
    """Locality-Aware Load-Balancing with optional out-of-order dispatch.

    Implements Algorithm 1 (per idle GPU, sorted by use frequency):

    1. serve the GPU's local queue first;
    2. scan the global queue in arrival order for a request whose model is
       cached on this GPU and dispatch it (the O3 promotion), force-routing
       any request that has been skipped more than ``limit`` times through
       :meth:`_locality_load_balance` (Algorithm 2) to prevent starvation;
    3. if no queued request is cached here, run Algorithm 2 over the queue
       in arrival order until some request lands on this GPU.

    The default implementation is the §VI index-driven fast path (see the
    module docstring); ``use_fast_path = False`` selects the literal scan.
    """

    guard = DispatchableWorkGuard()

    def __init__(self, limit: int = DEFAULT_O3_LIMIT) -> None:
        super().__init__()
        if limit < 0:
            raise ValueError("O3 limit cannot be negative")
        self.limit = limit
        self.name = "lalbo3" if limit > 0 else "lalb"

    def schedule_pass(self, s: SchedulerOps) -> bool:
        work = getattr(s, "pass_work_remaining", None)
        # explain mode: the Scheduler always defines the attribute (None
        # when off), so this getattr stays on the found-attribute path
        exp = getattr(s, "explain", None)
        peek = s.local_queues.peek
        queue = s.global_queue
        progress = False
        for gpu in s.idle_gpus_by_frequency():
            if not gpu.is_idle:  # became busy earlier in this pass
                continue
            # Alg. 1 lines 2–5: local queue has absolute priority.
            if peek(gpu.gpu_id) is not None:
                if exp is not None:
                    exp.note("alg1:local_queue_priority", gpu.gpu_id)
                s.dispatch_local_head(gpu)
                progress = True
            elif queue._live == 0 or not self._schedule_gpu(s, gpu):
                continue
            else:
                progress = True
            # narrowing: a dispatch just changed cluster/queue state; when
            # no remaining idle GPU can possibly act (queue drained, no
            # idle local work), the rest of the walk is provably a no-op
            if work is not None and not work():
                return True
        return progress

    # ------------------------------------------------------------------
    def _schedule_gpu(self, s: SchedulerOps, gpu: GPUDevice) -> bool:
        if (
            self.use_fast_path
            # the queue's lazy starvation tracking must assume *this*
            # policy's limit (guards against policy swaps mid-experiment);
            # read the private field — this check runs per idle-GPU scan
            and s.global_queue._o3_limit == self.limit
            and _admission_is_trivial(s)
        ):
            self.fast_scans += 1
            return self._schedule_gpu_fast(s, gpu)
        self.reference_scans += 1
        return self._schedule_gpu_reference(s, gpu)

    def _schedule_gpu_fast(self, s: SchedulerOps, gpu: GPUDevice) -> bool:
        """Index-driven Algorithm 1 for one idle GPU.

        Produces exactly the decision sequence of
        :meth:`_schedule_gpu_reference` (asserted by the parity tests)
        while never iterating the queue:

        * the first scan's cache hit is the oldest queued request of any
          model resident on ``gpu`` — an index lookup per resident model;
        * starved requests positioned before that hit are exactly the
          queue's starved-set entries with smaller slots;
        * every request the reference scan would have skipped (those before
          the stop position) receives its Alg. 1 line-15 visit via one
          lazy prefix update.
        """
        queue = s.global_queue
        exp = getattr(s, "explain", None)
        acted = False
        # -- first scan (lines 6–16) --------------------------------------
        # strategy pick off two O(1) signals: when the queue (including
        # holes past the head cursor) is no longer than the GPU's
        # resident-model list, walking it in arrival order costs less than
        # one index probe per resident model; both routes compute the same
        # oldest-hit entry.
        hit = None  # oldest queued entry whose model is cached on `gpu`
        resident = s.cache.models_on(gpu.gpu_id)
        if queue.scan_span() <= len(resident):
            hit = queue.first_entry_matching(resident)
        else:
            for model_id in resident:
                entry = queue.first_entry_for_model(model_id)
                if entry is not None and (hit is None or entry.slot < hit.slot):
                    hit = entry
        stop_slot = hit.slot if hit is not None else None
        # line 11: requests already skipped past the limit, in queue order,
        # that the reference scan would reach before the hit.  The O(1)
        # starved counter elides the sweep outright in the common
        # nothing-starved state.
        if queue.starved_count:
            for entry in queue.starved_entries_before(stop_slot):
                if exp is not None:
                    exp.note(
                        "alg1:starved_promotion",
                        f"request={entry.request.request_id}",
                        f"visits={entry.request.visits}>limit={self.limit}",
                    )
                outcome = self._locality_load_balance(
                    s, gpu, entry.request, admission_trivial=True
                )
                if outcome == "to_this_gpu":
                    # line 13: GPUi consumed; everything scanned before this
                    # request was skipped once more (line 15)
                    queue.bump_visits_before(entry.slot)
                    return True
                acted = True  # "handled" (admission is trivial, never "blocked")
        if hit is not None:
            queue.bump_visits_before(stop_slot)  # skips strictly before the hit
            if exp is not None:
                exp.note("alg1:cached_here", hit.request.model_id, gpu.gpu_id)
            s.dispatch(hit.request, gpu)  # line 8
            return True
        queue.bump_visits_before(None)  # no hit: the whole queue was skipped
        # -- second scan (lines 17–21) ------------------------------------
        # Algorithm 2 either dispatches the head here, dispatches it to
        # another idle GPU, or binds it to a busy GPU's local queue — the
        # head always leaves the queue, so walking heads costs O(decisions).
        while (head := queue.head()) is not None:
            outcome = self._locality_load_balance(s, gpu, head, admission_trivial=True)
            if outcome == "to_this_gpu":
                return True
            if outcome == "blocked":  # pragma: no cover - impossible w/o tenancy
                break
            acted = True
        return acted

    def _schedule_gpu_reference(self, s: SchedulerOps, gpu: GPUDevice) -> bool:
        """Algorithm 1 lines 6–22 for one idle GPU; True if anything changed.

        The literal O(queue) transcription of the paper's pseudocode; the
        fast path above must match it decision for decision.
        """
        exp = getattr(s, "explain", None)
        acted = False
        # -- first scan (lines 6–16): look for a cache hit on this GPU ----
        for request in s.global_queue:
            if not s.may_dispatch(request):
                continue
            if s.cache.is_cached_on(request.model_id, gpu.gpu_id):
                if exp is not None:
                    exp.note("alg1:cached_here", request.model_id, gpu.gpu_id)
                s.dispatch(request, gpu)  # line 8
                return True
            if request.visits > self.limit:  # line 11: starvation guard
                if exp is not None:
                    exp.note(
                        "alg1:starved_promotion",
                        f"request={request.request_id}",
                        f"visits={request.visits}>limit={self.limit}",
                    )
                outcome = self._locality_load_balance(s, gpu, request)
                if outcome == "to_this_gpu":
                    return True  # line 13: GPUi consumed → next GPU
                if outcome == "handled":
                    acted = True
                continue  # blocked or handled elsewhere; keep scanning
            request.visits += 1  # line 15: skipped once more
        # -- second scan (lines 17–21): no cached request for this GPU ----
        for request in s.global_queue:
            if not s.may_dispatch(request):
                continue
            outcome = self._locality_load_balance(s, gpu, request)
            if outcome == "to_this_gpu":
                return True
            if outcome == "handled":
                acted = True
        return acted

    def _locality_load_balance(
        self,
        s: SchedulerOps,
        gpu_i: GPUDevice,
        request: InferenceRequest,
        *,
        admission_trivial: bool = False,
    ) -> str:
        """Algorithm 2.  Outcomes:

        * ``"to_this_gpu"`` — dispatched to ``gpu_i`` as a cache miss
          (Alg. 2 returns True);
        * ``"handled"`` — dispatched to another idle GPU with the model
          cached, or moved into a busy GPU's local queue (returns False);
        * ``"blocked"`` — left in the global queue because the tenant's
          quota forbids starting a new GPU process (§VI extension).
        """
        exp = getattr(s, "explain", None)
        locations = s.cache.locations(request.model_id)
        # Lines 1–3: not cached anywhere → allow the miss on GPUi
        # (subject to the tenant's quota on new GPU processes, §VI).
        # ``admission_trivial`` is the fast path's per-pass certificate
        # that no probe can refuse, so the probes themselves are elided.
        if not locations:
            if not admission_trivial and not s.may_dispatch(request, gpu_i):
                if exp is not None:
                    exp.note("alg2:blocked_by_quota", request.tenant, gpu_i.gpu_id)
                return "blocked"  # stays queued until the tenant's usage drops
            if exp is not None:
                exp.note("alg2:not_cached_anywhere", "miss on", gpu_i.gpu_id)
            s.dispatch(request, gpu_i)
            return "to_this_gpu"
        if exp is not None:
            exp.note("alg2:candidates", *locations)
        # Lines 4–6: cached on another idle GPU → dispatch there instead.
        # (Skip idle GPUs whose local queue is pending — Alg. 1 gives local
        # queues absolute priority, so those GPUs are already spoken for.)
        for gpu_id in locations:
            other = s.gpu(gpu_id)
            if (
                other.is_idle
                and other.gpu_id != gpu_i.gpu_id
                and s.local_queues.peek(other.gpu_id) is None
            ):
                if exp is not None:
                    exp.note("alg2:cached_on_idle_gpu", other.gpu_id)
                s.dispatch(request, other)
                return "handled"
            elif exp is not None:
                why = (
                    "is_scanning_gpu" if other.gpu_id == gpu_i.gpu_id
                    else ("busy" if not other.is_idle else "local_queue_pending")
                )
                exp.note("alg2:rejected", other.gpu_id, why)
        # Lines 8–15: cached on busy GPUs → queue behind the cached copy
        # when the wait beats the model-loading time on the idle GPU.
        for gpu_id in locations:
            busy = s.gpu(gpu_id)
            if busy.is_idle:
                continue
            if s.estimator.hit_on_busy_beats_miss_on_idle(request, busy, gpu_i):
                if exp is not None:
                    exp.note("alg2:wait_beats_load", busy.gpu_id)
                s.move_to_local(request, busy)
                return "handled"
            elif exp is not None:
                exp.note("alg2:load_beats_wait", busy.gpu_id)
        # Lines 16–18: no busy GPU wins → allow the cache miss on GPUi
        # (again subject to the tenant's new-process quota).
        if not admission_trivial and not s.may_dispatch(request, gpu_i):
            if exp is not None:
                exp.note("alg2:blocked_by_quota", request.tenant, gpu_i.gpu_id)
            return "blocked"
        if exp is not None:
            exp.note("alg2:miss_on_idle_wins", gpu_i.gpu_id)
        s.dispatch(request, gpu_i)
        return "to_this_gpu"


def make_scheduling_policy(name: str, *, o3_limit: int = DEFAULT_O3_LIMIT) -> SchedulingPolicy:
    """Factory: the paper's three schedulers (``"lb"``, ``"lalb"``,
    ``"lalbo3"``) plus the ``"locality"`` strawman of §I."""
    key = name.lower()
    if key == "lb":
        return LoadBalancingPolicy()
    if key == "locality":
        return LocalityOnlyPolicy()
    if key == "lalb":
        return LALBPolicy(limit=0)
    if key == "lalbo3":
        return LALBPolicy(limit=o3_limit)
    raise KeyError(f"unknown policy {name!r}; known: lb, locality, lalb, lalbo3")
