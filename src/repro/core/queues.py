"""Scheduler queues: the system-wide global queue and per-GPU local queues.

§III-B: the global queue holds all requests forwarded by the Gateway,
sorted by arrival; each GPU's local queue holds requests the Scheduler has
bound to that (busy) GPU, to be served before anything from the global
queue.

§VI scalability: the global queue keeps an auxiliary index from model
instance to its queued requests (in arrival order), so "the complexity of
this search is bounded by the number of models cached on the GPU" rather
than the queue length.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterator

from .request import InferenceRequest, RequestState

__all__ = ["GlobalQueue", "LocalQueues"]


class GlobalQueue:
    """Arrival-ordered queue with a model-instance index."""

    def __init__(self) -> None:
        # OrderedDict gives O(1) removal while preserving arrival order.
        self._queue: OrderedDict[int, InferenceRequest] = OrderedDict()
        self._by_model: dict[str, OrderedDict[int, InferenceRequest]] = {}

    def push(self, request: InferenceRequest) -> None:
        if request.request_id in self._queue:
            raise ValueError(f"request {request.request_id} already queued")
        self._queue[request.request_id] = request
        self._by_model.setdefault(request.model_id, OrderedDict())[request.request_id] = request

    def push_sorted(self, request: InferenceRequest) -> None:
        """Insert by arrival time (for re-queued requests after a failure).

        Normal submissions arrive in time order so plain ``push`` keeps the
        queue sorted; a request returned to the queue (GPU failure, §VI
        fault handling) is older than the tail, so it is re-inserted at its
        arrival-time position to preserve the paper's "sorted by arrival
        times" invariant.  O(n), acceptable for rare failures.
        """
        if request.request_id in self._queue:
            raise ValueError(f"request {request.request_id} already queued")
        items = list(self._queue.values())
        self._queue.clear()
        self._by_model.clear()
        inserted = False
        for existing in items:
            if not inserted and request.arrival_time < existing.arrival_time:
                self.push(request)
                inserted = True
            self.push(existing)
        if not inserted:
            self.push(request)

    def remove(self, request: InferenceRequest) -> None:
        if request.request_id not in self._queue:
            raise KeyError(f"request {request.request_id} is not in the global queue")
        del self._queue[request.request_id]
        bucket = self._by_model[request.model_id]
        del bucket[request.request_id]
        if not bucket:
            del self._by_model[request.model_id]

    def head(self) -> InferenceRequest | None:
        return next(iter(self._queue.values()), None)

    def first_for_model(self, model_id: str) -> InferenceRequest | None:
        """Oldest queued request needing ``model_id`` (O(1) via the index)."""
        bucket = self._by_model.get(model_id)
        if not bucket:
            return None
        return next(iter(bucket.values()))

    def queued_models(self) -> set[str]:
        return set(self._by_model)

    def __contains__(self, request: InferenceRequest) -> bool:
        return request.request_id in self._queue

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[InferenceRequest]:
        """Iterate in arrival order over a snapshot (safe to mutate while iterating)."""
        return iter(list(self._queue.values()))


class LocalQueues:
    """Per-GPU FIFO queues of requests bound to busy GPUs (Alg. 2 line 12)."""

    def __init__(self) -> None:
        self._queues: dict[str, deque[InferenceRequest]] = {}

    def push(self, gpu_id: str, request: InferenceRequest) -> None:
        request.state = RequestState.LOCAL_QUEUED
        self._queues.setdefault(gpu_id, deque()).append(request)

    def pop(self, gpu_id: str) -> InferenceRequest:
        q = self._queues.get(gpu_id)
        if not q:
            raise IndexError(f"local queue of {gpu_id} is empty")
        return q.popleft()

    def peek(self, gpu_id: str) -> InferenceRequest | None:
        q = self._queues.get(gpu_id)
        return q[0] if q else None

    def length(self, gpu_id: str) -> int:
        return len(self._queues.get(gpu_id, ()))

    def requests(self, gpu_id: str) -> list[InferenceRequest]:
        return list(self._queues.get(gpu_id, ()))

    def total(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def non_empty_gpus(self) -> list[str]:
        return [g for g, q in self._queues.items() if q]
