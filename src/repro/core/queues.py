"""Scheduler queues: the system-wide global queue and per-GPU local queues.

§III-B: the global queue holds all requests forwarded by the Gateway,
sorted by arrival; each GPU's local queue holds requests the Scheduler has
bound to that (busy) GPU, to be served before anything from the global
queue.

§VI scalability: the global queue keeps an auxiliary index from model
instance to its queued requests (in arrival order), so "the complexity of
this search is bounded by the number of models cached on the GPU" rather
than the queue length.  This module supplies everything the index-driven
scheduling fast path needs to honour that bound:

* ``first_entry_for_model`` — O(1) oldest queued request per model;
* lazy O3 ``visits`` accounting — one scan's "every skipped request is
  visited once more" (Alg. 1 line 15) becomes a single O(log n) prefix
  update on a segment tree instead of an O(queue) walk, with per-request
  values materialized on demand;
* an ordered *starved* set — requests whose visits exceeded the O3 limit
  surface by index (Alg. 1 line 11) instead of being rediscovered by
  rescanning the queue;
* ``push_sorted`` — positional re-insertion (O(log n) search, one array
  splice) that updates the model index incrementally instead of the old
  clear-and-rebuild.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, bisect_right, insort
from collections import deque
from typing import Callable, Iterator

from .request import InferenceRequest, RequestState

__all__ = ["GlobalQueue", "LocalQueues"]

#: Sentinel "remaining skips before starvation" for slots that must never
#: surface from the starvation search (empty, removed, or already-starved).
_INF = 1 << 60

#: deferred-leaf backlog cap: pushes beyond this settle their own tree
#: leaf immediately, bounding the settling any single scan can inherit
_MAX_PENDING_LEAVES = 32


class _VisitTree:
    """Min segment tree with lazy prefix-add over queue slots.

    Each leaf holds a queued request's *remaining skip budget*: how many
    more times the O3 scan may pass it over before the starvation guard
    (Alg. 1 line 11) must route it through Algorithm 2.  One scheduling
    scan decrements a whole queue prefix in O(log n); leaves that reach
    zero are popped into the queue's ordered starved set.
    """

    __slots__ = ("size", "_mn", "_lz")

    def __init__(self, size: int, leaves: list[int] | None = None) -> None:
        self.size = size
        self._mn = [_INF] * (2 * size)
        self._lz = [0] * (2 * size)
        if leaves:
            mn = self._mn
            mn[size : size + len(leaves)] = leaves
            for i in range(size - 1, 0, -1):
                left, right = mn[2 * i], mn[2 * i + 1]
                mn[i] = left if left <= right else right

    # -- point access ----------------------------------------------------
    def point_get(self, i: int) -> int:
        node = i + self.size
        lz = self._lz
        total = self._mn[node]
        node >>= 1
        while node:
            total += lz[node]
            node >>= 1
        return total

    def point_set(self, i: int, value: int) -> None:
        mn, lz, size = self._mn, self._lz, self.size
        node = i + size
        # push pending adds down the root→leaf path so the leaf write and
        # the pull-up below see settled values
        for shift in range(node.bit_length() - 1, 0, -1):
            anc = node >> shift
            add = lz[anc]
            if add:
                lz[anc] = 0
                for child in (2 * anc, 2 * anc + 1):
                    mn[child] += add
                    if child < size:
                        lz[child] += add
        mn[node] = value
        node >>= 1
        while node:
            left, right = mn[2 * node], mn[2 * node + 1]
            m = (left if left <= right else right) + lz[node]
            if mn[node] == m:
                break  # ancestors derive from this value: nothing changes
            mn[node] = m
            node >>= 1

    # -- prefix update / starvation search -------------------------------
    def prefix_add(self, r: int, delta: int) -> None:
        """Add ``delta`` to every leaf in ``[0, r)``.

        Iterative: a prefix decomposes into full-cover nodes along the
        single root→``r`` boundary path, so the update is a loop of at
        most ``log₂(size)`` steps with no recursion — this runs once per
        scheduling scan (Alg. 1 line 15 for the whole scan), so the call
        overhead of the recursive form was measurable.
        """
        size = self.size
        if r <= 0:
            return
        mn, lz = self._mn, self._lz
        if r >= size:
            mn[1] += delta
            lz[1] += delta
            return
        node, lo, hi = 1, 0, size
        path = []
        while True:
            if r >= hi:
                mn[node] += delta
                if node < size:
                    lz[node] += delta
                break
            path.append(node)
            mid = (lo + hi) >> 1
            if r <= mid:
                node, hi = 2 * node, mid
            else:
                left = 2 * node
                mn[left] += delta
                if left < size:
                    lz[left] += delta
                node, lo = left + 1, mid
        for n in reversed(path):
            left, right = mn[2 * n], mn[2 * n + 1]
            mn[n] = (left if left <= right else right) + lz[n]

    def first_depleted(self, r: int) -> int | None:
        """Leftmost leaf in ``[0, r)`` whose value is ≤ 0, or None."""
        return self._find(1, 0, self.size, r, 0)

    def _find(self, node: int, lo: int, hi: int, r: int, acc: int) -> int | None:
        if lo >= r or self._mn[node] + acc > 0:
            return None
        if node >= self.size:
            return node - self.size
        acc += self._lz[node]
        mid = (lo + hi) // 2
        found = self._find(2 * node, lo, mid, r, acc)
        if found is not None:
            return found
        return self._find(2 * node + 1, mid, hi, r, acc)

    def values(self, n: int) -> list[int]:
        """True values of the first ``n`` leaves (for rebuilds)."""
        out: list[int] = []
        self._collect(1, 0, self.size, n, 0, out)
        return out

    def _collect(self, node: int, lo: int, hi: int, n: int, acc: int, out: list[int]) -> None:
        if lo >= n:
            return
        if node >= self.size:
            out.append(self._mn[node] + acc)
            return
        acc += self._lz[node]
        mid = (lo + hi) // 2
        self._collect(2 * node, lo, mid, n, acc, out)
        self._collect(2 * node + 1, mid, hi, n, acc, out)


class _Entry:
    """One queued request plus its position and lazy O3-visit state."""

    __slots__ = (
        "request", "key", "slot", "alive", "starved",
        "visits_at_entry", "rem0", "leaf_applied",
    )

    def __init__(self, request: InferenceRequest, key: tuple[float, int], slot: int) -> None:
        self.request = request
        self.key = key  # (arrival_time, push sequence): total queue order
        self.slot = slot  # index into the queue's entry array
        self.alive = True
        self.starved = False
        #: eager visit count at (re)indexing time; live value adds the
        #: number of lazy prefix bumps that covered this slot since
        self.visits_at_entry = 0
        #: remaining skip budget at (re)indexing time (tree leaf baseline)
        self.rem0 = 0
        #: whether the visit tree's leaf actually holds rem0 yet.  Leaf
        #: attachment is deferred until the first scan whose prefix covers
        #: this slot: a request that is pushed and dispatched before any
        #: such scan (the hot submit→dispatch shape) never touches the
        #: tree at all.  While unapplied, the live visit count is exactly
        #: ``visits_at_entry`` — no bump can have covered the slot.
        self.leaf_applied = False


class GlobalQueue:
    """Arrival-ordered queue with a model-instance index.

    ``o3_limit`` enables lazy O3-visit tracking for the LALB/LALBO3 fast
    path; the Scheduler wires it from the policy.  Queues built without a
    limit (LB, locality, bare unit-test queues) skip that machinery
    entirely and behave like a plain indexed FIFO.
    """

    def __init__(self, o3_limit: int | None = None, *, track_tenants: bool = False) -> None:
        self._o3_limit = o3_limit
        self._entries: list[_Entry | None] = []  # slot-ordered; None = removed
        self._keys: list[tuple[float, int]] = []  # parallel keys (kept for holes)
        self._by_id: dict[int, _Entry] = {}
        self._buckets: dict[str, deque[_Entry]] = {}  # model -> entries, oldest first
        self._model_live: dict[str, int] = {}  # model -> live entry count
        self._live = 0
        self._head = 0  # first possibly-alive slot
        self._seq = itertools.count()
        self._tree: _VisitTree | None = None
        #: entries whose tree leaf has not been written yet (deferred
        #: attachment; applied by the first bump whose prefix covers them)
        self._pending_leaves: list[_Entry] = []
        self._starved: list[_Entry] = []  # slot-ordered; may hold dead entries
        self._starved_dead = 0
        self._version = 0  # bumped whenever slots are renumbered
        # tenant-admissibility index (§VI isolation fast path): live entry
        # count and queued model-size histogram per tenant, so a
        # TenancyController can answer "can any admission check refuse a
        # queued request this pass?" without scanning the queue.  Off by
        # default — the Scheduler enables it when a controller is installed.
        self._track_tenants = track_tenants
        self._tenant_live: dict[str, int] = {}
        self._tenant_sizes: dict[str, dict[float, int]] = {}  # tenant -> {mb: count}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def o3_limit(self) -> int | None:
        """The starvation limit this queue's lazy visit tracking assumes."""
        return self._o3_limit

    @property
    def tracks_visits(self) -> bool:
        """Whether lazy O3-visit accounting is active (LALB fast path)."""
        return self._o3_limit is not None

    @property
    def starved_count(self) -> int:
        """Live requests past the O3 limit (the starvation/O3 signal).

        O(1): the starved list and its dead count are both maintained
        incrementally.  The LALB fast scan consults this before walking
        the starved set at all — zero (the overwhelmingly common state)
        elides the whole Alg. 1 line-11 sweep.
        """
        return len(self._starved) - self._starved_dead

    def scan_span(self) -> int:
        """Upper bound on the slots a live in-order walk must visit.

        This is the queue-length signal the first-scan strategy pick
        consults: when the span undercuts the number of models resident
        on the GPU, walking the queue beats one index probe per resident
        model.  Counts holes after the head cursor, so it bounds the true
        cost of :meth:`first_entry_matching`, not just the live count.
        """
        return len(self._entries) - self._head

    def __contains__(self, request: InferenceRequest) -> bool:
        return request.request_id in self._by_id

    def __len__(self) -> int:
        return self._live

    def __iter__(self) -> Iterator[InferenceRequest]:
        """Iterate in arrival order over a snapshot (safe to mutate while iterating)."""
        return iter([e.request for e in self._entries if e is not None])

    def iter_requests(self) -> Iterator[InferenceRequest]:
        """Allocation-free walk in arrival order.

        Unlike ``__iter__`` this takes no snapshot: requests removed ahead
        of the cursor are skipped and requests appended behind the tail are
        visited.  Safe against concurrent removals (the scheduling passes
        remove the request they just visited); survives a re-index by
        re-finding its position from the last yielded key.
        """
        i = self._head
        version = self._version
        last_key: tuple[float, int] | None = None
        while True:
            if version != self._version:  # slots were renumbered underneath us
                version = self._version
                i = 0 if last_key is None else bisect_right(self._keys, last_key)
                continue
            if i >= len(self._entries):
                return
            entry = self._entries[i]
            i += 1
            if entry is None:
                continue
            last_key = entry.key
            yield entry.request

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, request: InferenceRequest) -> None:
        if request.request_id in self._by_id:
            raise ValueError(f"request {request.request_id} already queued")
        if len(self._entries) > 64 and self._live * 2 < len(self._entries):
            self._reindex()  # too many holes: compact before appending
        slot = len(self._entries)
        if self._o3_limit is not None:
            if self._tree is None:
                self._tree = _VisitTree(64)
            if slot >= self._tree.size:
                self._reindex()
                slot = len(self._entries)
        entry = _Entry(request, (request.arrival_time, next(self._seq)), slot)
        self._entries.append(entry)
        self._keys.append(entry.key)
        self._by_id[request.request_id] = entry
        model_id = request.model_id
        bucket = self._buckets.get(model_id)
        if bucket is None:  # avoid minting a throwaway deque per push
            bucket = self._buckets[model_id] = deque()
        bucket.append(entry)
        self._model_live[model_id] = self._model_live.get(model_id, 0) + 1
        self._live += 1
        if self._track_tenants:
            self._tenant_add(request)
        if self._o3_limit is not None:
            self._attach_visits(entry)

    def push_sorted(self, request: InferenceRequest) -> None:
        """Insert by arrival time (for re-queued requests after a failure).

        Normal submissions arrive in time order so plain ``push`` keeps the
        queue sorted; a request returned to the queue (GPU failure, §VI
        fault handling) is older than the tail, so it is re-inserted at its
        arrival-time position to preserve the paper's "sorted by arrival
        times" invariant.  The position is found by O(log n) bisection and
        the model index is updated with a single positional insert rather
        than the old clear-and-rebuild of every index.  The entry array is
        still compacted and the visit tree re-based on this path — an O(n)
        splice with small constants, acceptable because failures are rare.
        """
        if request.request_id in self._by_id:
            raise ValueError(f"request {request.request_id} already queued")
        self._reindex()  # settle slots so position == insertion index
        key = (request.arrival_time, next(self._seq))
        pos = bisect_left(self._keys, key)
        if pos == len(self._entries):
            self.push(request)  # newest arrival after all queued ones
            return
        entry = _Entry(request, key, pos)
        self._entries.insert(pos, entry)
        self._keys.insert(pos, key)
        for i in range(pos + 1, len(self._entries)):
            self._entries[i].slot = i  # type: ignore[union-attr]  # all alive post-reindex
        self._version += 1
        self._by_id[request.request_id] = entry
        self._bucket_insert(entry)
        model_id = request.model_id
        self._model_live[model_id] = self._model_live.get(model_id, 0) + 1
        self._live += 1
        if self._track_tenants:
            self._tenant_add(request)
        self._head = min(self._head, pos)
        if self._o3_limit is not None:
            # set the entry's skip budget first: the tree rebuild below
            # reads every entry's rem0, including the new one
            self._attach_visits(entry, tree_leaf_pending=False)
            self._rebuild_tree()

    def _bucket_insert(self, entry: _Entry) -> None:
        bucket = self._buckets.setdefault(entry.request.model_id, deque())
        # walk from the tail: the re-queued request is usually younger than
        # most of its model's backlog, and failure re-insertions are rare
        i = len(bucket)
        while i > 0 and bucket[i - 1].key > entry.key:
            i -= 1
        bucket.insert(i, entry)

    def remove(self, request: InferenceRequest) -> None:
        entry = self._by_id.pop(request.request_id, None)
        if entry is None:
            raise KeyError(f"request {request.request_id} is not in the global queue")
        self._materialize(entry)
        entry.alive = False
        self._entries[entry.slot] = None
        self._live -= 1
        if self._tree is not None and not entry.starved and entry.leaf_applied:
            # starved and never-attached leaves already sit at infinity;
            # only live countdowns need parking so the starvation search
            # never surfaces the slot
            self._tree.point_set(entry.slot, _INF)
        if entry.starved:
            self._starved_dead += 1
        model_id = request.model_id
        remaining = self._model_live[model_id] - 1
        if remaining:
            self._model_live[model_id] = remaining
            bucket = self._buckets[model_id]
            while bucket and not bucket[0].alive:
                bucket.popleft()
        else:
            del self._model_live[model_id]
            del self._buckets[model_id]
        if self._track_tenants:
            self._tenant_remove(request)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def head(self) -> InferenceRequest | None:
        entries = self._entries
        i, n = self._head, len(entries)
        while i < n and entries[i] is None:
            i += 1
        self._head = i
        return entries[i].request if i < n else None

    def first_entry_for_model(self, model_id: str) -> _Entry | None:
        """Oldest queued entry needing ``model_id`` (amortized O(1))."""
        bucket = self._buckets.get(model_id)
        if not bucket:
            return None
        while not bucket[0].alive:
            bucket.popleft()
        return bucket[0]

    def first_entry_matching(self, model_ids) -> _Entry | None:
        """Oldest live entry whose model is in ``model_ids`` (a set).

        The queue-walk half of the first-scan strategy pick: cost is
        bounded by :meth:`scan_span`, so callers choose it exactly when
        the queue is shorter than the GPU's resident-model list and the
        per-model index probes would cost more.  Equivalent to taking the
        minimum slot over ``first_entry_for_model`` of every member.
        """
        entries = self._entries
        for i in range(self._head, len(entries)):
            entry = entries[i]
            if entry is not None and entry.request.model_id in model_ids:
                return entry
        return None

    def first_for_model(self, model_id: str) -> InferenceRequest | None:
        """Oldest queued request needing ``model_id`` (O(1) via the index)."""
        entry = self.first_entry_for_model(model_id)
        return entry.request if entry is not None else None

    def queued_models(self) -> set[str]:
        return set(self._model_live)

    # ------------------------------------------------------------------
    # Tenant-admissibility index (§VI isolation fast path)
    # ------------------------------------------------------------------
    def _tenant_add(self, request: InferenceRequest) -> None:
        tenant = request.tenant
        self._tenant_live[tenant] = self._tenant_live.get(tenant, 0) + 1
        sizes = self._tenant_sizes.setdefault(tenant, {})
        mb = request.model.occupied_mb
        sizes[mb] = sizes.get(mb, 0) + 1

    def _tenant_remove(self, request: InferenceRequest) -> None:
        tenant = request.tenant
        remaining = self._tenant_live[tenant] - 1
        if remaining:
            self._tenant_live[tenant] = remaining
        else:
            del self._tenant_live[tenant]
        sizes = self._tenant_sizes[tenant]
        mb = request.model.occupied_mb
        count = sizes[mb] - 1
        if count:
            sizes[mb] = count
        else:
            del sizes[mb]
            if not sizes:
                del self._tenant_sizes[tenant]

    def queued_tenants(self):
        """Tenants with live queued requests, or None when untracked.

        ``None`` (tracking disabled) makes admission probes fail safe: a
        policy that cannot see the tenant mix must use the reference scans.
        """
        if not self._track_tenants:
            return None
        return self._tenant_live.keys()

    def max_queued_model_mb(self, tenant: str) -> float:
        """Largest model size any of ``tenant``'s queued requests needs.

        The conservative per-pass admission probe multiplies this by the
        number of possible dispatches to bound the tenant's worst-case
        memory growth within one scheduling pass.
        """
        sizes = self._tenant_sizes.get(tenant)
        return max(sizes) if sizes else 0.0

    # ------------------------------------------------------------------
    # O3 visit accounting (Alg. 1 lines 11/15, done lazily)
    # ------------------------------------------------------------------
    def starved_entries_before(self, stop_slot: int | None) -> list[_Entry]:
        """Live starved entries with slot < ``stop_slot``, oldest first.

        These are the requests Alg. 1 line 11 must force through Algorithm
        2 before the scan may dispatch its cache hit at ``stop_slot``.
        """
        starved = self._starved
        if self._starved_dead * 2 > len(starved):
            self._starved = starved = [e for e in starved if e.alive]
            self._starved_dead = 0
        out = []
        for entry in starved:
            if stop_slot is not None and entry.slot >= stop_slot:
                break
            if entry.alive:
                out.append(entry)
        return out

    def bump_visits_before(self, stop_slot: int | None) -> None:
        """Count one more skip for every live request before ``stop_slot``.

        This is Alg. 1 line 15 for a whole first scan: O(log n) instead of
        touching every queued request.  Requests whose skip budget reaches
        zero move to the starved set (their ``visits`` freeze at limit+1,
        exactly the eager value, since starved requests are never skipped
        again — Alg. 1 line 11 routes them instead).
        """
        if self._o3_limit is None:
            raise RuntimeError("queue does not track O3 visits (no o3_limit)")
        r = len(self._entries) if stop_slot is None else stop_slot
        if r <= 0 or self._tree is None:
            return
        tree = self._tree
        if self._pending_leaves:
            # deferred leaf attachment: settle the entries this prefix is
            # about to decrement; slots at or past the stop keep deferring
            self._flush_pending_leaves(r)
        tree.prefix_add(r, -1)
        while (slot := tree.first_depleted(r)) is not None:
            entry = self._entries[slot]
            assert entry is not None and not entry.starved
            entry.visits_at_entry += entry.rem0  # freeze at limit + 1
            entry.starved = True
            tree.point_set(slot, _INF)
            insort(self._starved, entry, key=lambda e: e.slot)

    def _attach_visits(self, entry: _Entry, *, tree_leaf_pending: bool = True) -> None:
        request = entry.request
        entry.visits_at_entry = request._visits
        need = self._o3_limit + 1 - entry.visits_at_entry  # type: ignore[operator]
        if need <= 0:
            # re-queued with its starvation already earned (fairness:
            # resubmit preserves visits) — surface it immediately
            entry.starved = True
            insort(self._starved, entry, key=lambda e: e.slot)
        else:
            entry.rem0 = need
            if tree_leaf_pending:
                # deferred: the leaf is written only if a scan's prefix
                # ever covers this slot (see bump_visits_before).  The
                # backlog is capped so one scan never settles more than a
                # constant number of leaves — §VI's per-pass bound must
                # not degrade to O(pushes since the last scan).
                self._pending_leaves.append(entry)
                if len(self._pending_leaves) >= _MAX_PENDING_LEAVES:
                    self._flush_pending_leaves(None)
        # inlined request._attach_queue_entry (one call per push saved)
        request._queue_probe = (self, entry)

    def _flush_pending_leaves(self, r: int | None) -> None:
        """Write the deferred tree leaves for slots below ``r`` (None =
        all); dead and already-starved entries are dropped unwritten."""
        tree = self._tree
        keep = []
        for e in self._pending_leaves:
            if not e.alive or e.starved or e.leaf_applied:
                continue
            if r is None or e.slot < r:
                tree.point_set(e.slot, e.rem0)  # type: ignore[union-attr]
                e.leaf_applied = True
            else:
                keep.append(e)
        self._pending_leaves = keep

    def _materialize(self, entry: _Entry) -> None:
        """Fold the lazy skip count into the request's eager ``visits``."""
        request = entry.request
        if self._o3_limit is not None:
            request._visits = self._entry_visits(entry)
        # inlined request._detach_queue_entry (one call per removal saved)
        probe = request._queue_probe
        if probe is not None and probe[1] is entry:
            request._queue_probe = None

    def _entry_visits(self, entry: _Entry) -> int:
        if entry.starved or self._tree is None or not entry.leaf_applied:
            return entry.visits_at_entry
        return entry.visits_at_entry + (entry.rem0 - self._tree.point_get(entry.slot))

    def _entry_set_visits(self, entry: _Entry, value: int) -> None:
        # Direct writes (the reference scan's `request.visits += 1`) re-base
        # the lazy accounting: the eager baseline takes the new value and
        # the tree leaf is reset to the matching remaining skip budget, so
        # a later fast scan sees exactly the state an all-lazy history
        # would have produced (including crossing into the starved set).
        entry.visits_at_entry = value
        if entry.starved or self._tree is None:
            return
        remaining = self._o3_limit + 1 - value  # type: ignore[operator]
        if remaining <= 0:
            entry.starved = True
            if entry.leaf_applied:
                self._tree.point_set(entry.slot, _INF)
            insort(self._starved, entry, key=lambda e: e.slot)
        else:
            entry.rem0 = remaining
            if entry.leaf_applied:
                self._tree.point_set(entry.slot, remaining)
            # deferred entries keep deferring: rem0 is what the eventual
            # attachment will write

    # ------------------------------------------------------------------
    # Re-indexing (hole compaction / tree growth / positional insert)
    # ------------------------------------------------------------------
    def _reindex(self) -> None:
        """Drop holes, renumber slots 0..live-1, rebuild keys and tree."""
        if self._tree is not None:
            values = self._tree.values(len(self._entries))
            for entry in self._entries:
                if entry is not None and not entry.starved and entry.leaf_applied:
                    rem = values[entry.slot]
                    entry.visits_at_entry += entry.rem0 - rem
                    entry.rem0 = rem
        alive = [e for e in self._entries if e is not None]
        for i, entry in enumerate(alive):
            entry.slot = i
        self._entries = alive  # type: ignore[assignment]
        self._keys = [e.key for e in alive]
        self._head = 0
        self._version += 1
        if self._starved_dead:
            self._starved = [e for e in self._starved if e.alive]
            self._starved_dead = 0
        if self._tree is not None:
            self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        need = max(64, 2 * (self._live + 1))
        cap = 1 << (need - 1).bit_length()
        leaves = []
        for e in self._entries:
            if e is None or e.starved:
                leaves.append(_INF)
            else:
                leaves.append(e.rem0)
                e.leaf_applied = True  # the rebuild just wrote its leaf
        self._pending_leaves = []
        self._tree = _VisitTree(cap, leaves)


class LocalQueues:
    """Per-GPU FIFO queues of requests bound to busy GPUs (Alg. 2 line 12).

    Observers (the finish-time estimator) subscribe to push/pop so they can
    maintain running per-GPU cost sums instead of re-walking a queue per
    estimate; hooks fire *after* the queue mutates, so an observer reading
    :meth:`length` sees the post-mutation state.
    """

    def __init__(self) -> None:
        self._queues: dict[str, deque[InferenceRequest]] = {}
        self._total = 0
        #: gpu_ids whose queue is non-empty (the local-work dirty signal:
        #: maintained on the 0↔1 length transitions, read by the pass
        #: guards without walking any queue)
        self._nonempty: set[str] = set()
        # fn(gpu_id, request, added): added=True on push, False on pop
        self._observers: list[Callable[[str, InferenceRequest, bool], None]] = []

    def subscribe(self, fn: Callable[[str, InferenceRequest, bool], None]) -> None:
        """Register a push/pop observer: ``fn(gpu_id, request, added)``."""
        self._observers.append(fn)

    def push(self, gpu_id: str, request: InferenceRequest) -> None:
        request.state = RequestState.LOCAL_QUEUED
        q = self._queues.get(gpu_id)
        if q is None:  # avoid minting a throwaway deque per push
            q = self._queues[gpu_id] = deque()
        if not q:
            self._nonempty.add(gpu_id)
        q.append(request)
        self._total += 1
        for fn in self._observers:
            fn(gpu_id, request, True)

    def pop(self, gpu_id: str) -> InferenceRequest:
        q = self._queues.get(gpu_id)
        if not q:
            raise IndexError(f"local queue of {gpu_id} is empty")
        self._total -= 1
        request = q.popleft()
        if not q:
            self._nonempty.discard(gpu_id)
        for fn in self._observers:
            fn(gpu_id, request, False)
        return request

    def peek(self, gpu_id: str) -> InferenceRequest | None:
        q = self._queues.get(gpu_id)
        return q[0] if q else None

    def length(self, gpu_id: str) -> int:
        return len(self._queues.get(gpu_id, ()))

    def requests(self, gpu_id: str) -> list[InferenceRequest]:
        return list(self._queues.get(gpu_id, ()))

    def total(self) -> int:
        return self._total

    def nonempty_gpu_ids(self) -> set[str]:
        """GPUs with queued local work (live set — do not mutate).

        O(1): maintained on the 0↔1 length transitions.  This is the
        local-queue dirty signal the pass guards join with the cluster's
        idle flags.
        """
        return self._nonempty

    def non_empty_gpus(self) -> list[str]:
        return [g for g, q in self._queues.items() if q]
