"""Dirty signals and pass guards: the event-driven elision layer.

The classic event-driven-simulation move is to react to state *deltas*
instead of re-deriving decisions from full state on every action.  This
module supplies the two halves the scheduling engine needs:

* **Dirty signals** — compact, O(1)-to-read digests of the mutable state
  a scheduling pass depends on, maintained incrementally by the
  components that own the state:

  ====================  ==============================================
  signal                published by
  ====================  ==============================================
  idle-set delta        :class:`~repro.cluster.topology.Cluster`
                        (``idle_count`` and the incrementally
                        maintained frequency-ordered idle view)
  queue length / heads  :class:`~repro.core.queues.GlobalQueue`
                        (O(1) ``len``, per-model head index,
                        ``scan_span``)
  starved/O3 counter    :class:`~repro.core.queues.GlobalQueue`
                        (``starved_count``)
  cache residency       :class:`~repro.core.cache_manager.CacheManager`
                        (``models_on`` — an O(1) cached frozenset, so
                        both membership and cardinality are signals)
  local-queue delta     :class:`~repro.core.queues.LocalQueues`
                        (``nonempty_gpu_ids``), joined with the idle
                        flags by :class:`IdleLocalWorkIndex`
  ====================  ==============================================

* **Pass guards** — per-policy predicates stating the preconditions
  under which one scheduling pass can possibly produce a decision.  The
  Scheduler consults the guard before every would-be pass (the initial
  pass of an action and every re-invocation after a productive pass) and
  *elides* the pass when the guard proves it a no-op.

Correctness contract
--------------------
A guard may return False **only** when the pass it would have admitted
provably makes no decision, records nothing, and mutates nothing
observable (including the lazy O3 ``visits`` accounting — a pass that
never reaches a per-GPU scan never bumps visits).  Under that contract,
eliding the pass is byte-identical to running it, which is what the
decision-parity suites assert for every policy, with and without
elision.

For the paper's four policies one shared proof covers the guard
(:class:`DispatchableWorkGuard`): every decision either serves an *idle*
GPU's local queue or consumes a *global-queue* entry during a per-idle-GPU
scan, so a pass can act only when at least one GPU is idle AND (the
global queue is non-empty OR some idle GPU has local-queue work).  The
base :class:`PassGuard` is the fail-safe for policies that declare
nothing: it reproduces the engine's historical run conditions exactly
(any idle GPU, any queued work anywhere), so custom policies are never
elided more aggressively than the pre-elision engine would have run them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.gpu import GPUDevice
    from ..cluster.topology import Cluster
    from .queues import LocalQueues
    from .request import InferenceRequest

__all__ = ["IdleLocalWorkIndex", "PassGuard", "DispatchableWorkGuard"]


class IdleLocalWorkIndex:
    """Answers "does any *idle* GPU have pending local-queue work?".

    A lazy join of two dirty signals: the local queues' O(1)-maintained
    non-empty set and each GPU's ``is_idle`` flag.  The join is evaluated
    at query time rather than maintained eagerly because its inputs
    change on the hottest paths (every GPU state flip, every local
    push/pop) while the question is only asked when a guard has already
    found the global queue empty — and the non-empty set is almost always
    empty then (Algorithm 2 binds requests to *busy* GPUs, and the engine
    drains an idle GPU's local queue before going back to sleep).
    """

    __slots__ = ("_gpu_by_id", "_nonempty")

    def __init__(self, cluster: "Cluster", local_queues: "LocalQueues") -> None:
        self._gpu_by_id = {g.gpu_id: g for g in cluster.gpus}
        self._nonempty = local_queues.nonempty_gpu_ids()

    def __bool__(self) -> bool:
        nonempty = self._nonempty
        if not nonempty:
            return False
        by_id = self._gpu_by_id
        for gpu_id in nonempty:
            gpu = by_id.get(gpu_id)
            if gpu is not None and gpu.is_idle:
                return True
        return False


class PassGuard:
    """Preconditions under which a policy's pass can produce a decision.

    The base guard is the conservative fail-safe: it admits a pass
    whenever the pre-elision engine would have run one (some GPU idle and
    any request waiting in the global queue or *any* local queue).  It
    never consults policy-specific structure, so it is sound for any
    :class:`~repro.core.policies.SchedulingPolicy` subclass.
    """

    def may_act(self, engine) -> bool:
        """True when a pass might act; ``engine`` is the Scheduler."""
        if not engine.cluster.idle_count:
            return False
        return len(engine.global_queue) != 0 or engine.local_queues.total() != 0


class DispatchableWorkGuard(PassGuard):
    """Shared guard for LB / LALB / LALBO3 / locality.

    Every decision these policies can make either serves an idle GPU's
    local queue or consumes a global-queue entry inside a per-idle-GPU
    scan, so a pass is provably a no-op unless at least one GPU is idle
    AND (the global queue is non-empty OR some *idle* GPU has local
    work).  Compared to the fail-safe base guard this replaces "any local
    queue anywhere has work" (which busy GPUs satisfy for hours at a
    time) with the exact :class:`IdleLocalWorkIndex` membership test.
    """

    def may_act(self, engine) -> bool:
        if not engine.cluster.idle_count:
            return False
        # the queue's live count and the local-work set, read directly:
        # this predicate runs per would-be pass *and* per mid-pass
        # narrowing probe, so even the len()/bool() method calls showed up
        if engine.global_queue._live:
            return True
        idle_local = engine.idle_local_work
        return bool(idle_local._nonempty) and bool(idle_local)
