"""Cache-replacement policies for models resident in GPU memory.

The paper's Cache Manager "largely follows the LRU replacement policy"
(§III-D) and notes that "our system's design can easily support other cache
replacement policies (by replacing the LRU lists with other types of sorted
lists)" (§VI).  This module provides that pluggable sorted list: LRU plus
FIFO, LFU, size-aware, and an offline Belady oracle used by the ablation
benchmarks.

A policy instance manages *one* GPU's residency order; the Cache Manager
holds one per GPU (that per-GPU separation is what makes the global Cache
Manager scalable, §VI).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Iterable

__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "SizeAwarePolicy",
    "BeladyPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class EvictionPolicy(ABC):
    """Ordering of one GPU's resident models, best eviction victim first.

    The ``resident`` and ``eviction_order()`` views are cached between
    residency changes: victim queries and the scheduler's per-pass
    resident-model lookups no longer rebuild a fresh set/sorted list each
    time.  Returned views are shared snapshots — callers must not mutate
    them (every invalidation builds a new object, so snapshots previously
    handed out stay intact).
    """

    def __init__(self) -> None:
        self._resident: dict[str, float] = {}  # model_id -> occupied_mb
        self._resident_view: frozenset[str] | None = None
        self._order_view: list[str] | None = None
        # published-tuple cache, keyed by the list view's identity
        self._order_tuple: tuple[str, ...] = ()
        self._order_tuple_src: list[str] | None = None

    # -- residency bookkeeping ------------------------------------------
    def on_insert(self, model_id: str, size_mb: float, now: float) -> None:
        if model_id in self._resident:
            raise ValueError(f"{model_id} already tracked")
        self._resident[model_id] = size_mb
        self._resident_view = None
        self._order_view = None
        self._insert(model_id, now)

    def on_access(self, model_id: str, now: float) -> bool:
        """Record a cache hit; returns whether the eviction order changed.

        The return value is a dirty signal: the Cache Manager skips
        re-publishing a GPU's LRU list when a touch provably left it
        unchanged (e.g. re-using the most-recently-used model — the
        common case under locality scheduling).  Policies that cannot
        decide cheaply report True (conservative).
        """
        if model_id not in self._resident:
            raise KeyError(f"{model_id} is not resident")
        if self._access_changes_order(model_id):
            self._order_view = None  # access can reorder victims (LRU/LFU/...)
            self._access(model_id, now)
            return True
        self._access(model_id, now)  # stat-keeping policies still observe it
        return False

    def _access_changes_order(self, model_id: str) -> bool:
        """Whether an access to ``model_id`` can reorder the victims.
        Conservative default; exact overrides in LRU (already-MRU) and
        FIFO (never reorders)."""
        return True

    def on_evict(self, model_id: str) -> None:
        if model_id not in self._resident:
            raise KeyError(f"{model_id} is not resident")
        del self._resident[model_id]
        self._resident_view = None
        self._order_view = None
        self._forget(model_id)

    @property
    def resident(self) -> frozenset[str]:
        view = self._resident_view
        if view is None:
            view = self._resident_view = frozenset(self._resident)
        return view

    def size_of(self, model_id: str) -> float:
        return self._resident[model_id]

    # -- policy-specific hooks -------------------------------------------
    @abstractmethod
    def _insert(self, model_id: str, now: float) -> None: ...

    @abstractmethod
    def _access(self, model_id: str, now: float) -> None: ...

    @abstractmethod
    def _forget(self, model_id: str) -> None: ...

    @abstractmethod
    def _compute_eviction_order(self) -> list[str]:
        """Resident models, best victim first (e.g. coldest first for LRU)."""

    def eviction_order(self) -> list[str]:
        """Resident models, best victim first (cached between changes)."""
        order = self._order_view
        if order is None:
            order = self._order_view = self._compute_eviction_order()
        return order

    def eviction_order_tuple(self) -> tuple[str, ...]:
        """The eviction order as an immutable tuple (what the Cache
        Manager publishes to the Datastore), cached alongside the list
        view so repeated flushes between changes serialize it once."""
        order = self.eviction_order()
        if self._order_tuple_src is not order:
            self._order_tuple = tuple(order)
            self._order_tuple_src = order
        return self._order_tuple

    # -- victim selection (§III-D) ----------------------------------------
    def choose_victims(
        self, needed_mb: float, free_mb: float, pinned: Iterable[str] = ()
    ) -> list[str]:
        """Victims to evict so ``needed_mb`` fits given current ``free_mb``.

        Walks the eviction order, skipping pinned models, until enough
        memory is freed.  Raises :class:`MemoryError` when even evicting
        every non-pinned model would not make room.
        """
        if needed_mb <= free_mb:
            return []
        pinned = set(pinned)
        victims: list[str] = []
        reclaimable = free_mb
        for model_id in self.eviction_order():
            if model_id in pinned:
                continue
            victims.append(model_id)
            reclaimable += self._resident[model_id]
            if needed_mb <= reclaimable:
                return victims
        raise MemoryError(
            f"cannot make {needed_mb:.0f} MB: only {reclaimable:.0f} MB reclaimable"
        )


class LRUPolicy(EvictionPolicy):
    """Least-recently-used — the paper's default (§III-D)."""

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[str, None] = OrderedDict()  # coldest first

    def _insert(self, model_id: str, now: float) -> None:
        self._order[model_id] = None  # newly loaded = most recently used

    def _access(self, model_id: str, now: float) -> None:
        self._order.move_to_end(model_id)

    def _forget(self, model_id: str) -> None:
        del self._order[model_id]

    def _access_changes_order(self, model_id: str) -> bool:
        # re-using the most-recently-used model leaves the order intact
        return next(reversed(self._order)) != model_id

    def _compute_eviction_order(self) -> list[str]:
        return list(self._order)

    def lru_list(self) -> list[str]:
        """The LRU list as published to the Datastore (coldest → hottest)."""
        return self.eviction_order()


class FIFOPolicy(EvictionPolicy):
    """Evict in load order, ignoring reuse."""

    def __init__(self) -> None:
        super().__init__()
        self._order: OrderedDict[str, None] = OrderedDict()

    def _insert(self, model_id: str, now: float) -> None:
        self._order[model_id] = None

    def _access(self, model_id: str, now: float) -> None:
        pass  # reuse does not matter to FIFO

    def _access_changes_order(self, model_id: str) -> bool:
        return False  # load order is fixed at insertion

    def _forget(self, model_id: str) -> None:
        del self._order[model_id]

    def _compute_eviction_order(self) -> list[str]:
        return list(self._order)


class LFUPolicy(EvictionPolicy):
    """Least-frequently-used, ties broken by least recent use."""

    def __init__(self) -> None:
        super().__init__()
        self._counts: dict[str, int] = {}
        self._last_use: dict[str, float] = {}

    def _insert(self, model_id: str, now: float) -> None:
        self._counts[model_id] = 0
        self._last_use[model_id] = now

    def _access(self, model_id: str, now: float) -> None:
        self._counts[model_id] += 1
        self._last_use[model_id] = now

    def _forget(self, model_id: str) -> None:
        del self._counts[model_id]
        del self._last_use[model_id]

    def _compute_eviction_order(self) -> list[str]:
        return sorted(self._counts, key=lambda m: (self._counts[m], self._last_use[m]))


class SizeAwarePolicy(EvictionPolicy):
    """Evict the largest models first (frees space with fewest kills)."""

    def __init__(self) -> None:
        super().__init__()
        self._last_use: dict[str, float] = {}

    def _insert(self, model_id: str, now: float) -> None:
        self._last_use[model_id] = now

    def _access(self, model_id: str, now: float) -> None:
        self._last_use[model_id] = now

    def _forget(self, model_id: str) -> None:
        del self._last_use[model_id]

    def _compute_eviction_order(self) -> list[str]:
        # largest first; ties broken LRU so hot small models survive
        return sorted(self._resident, key=lambda m: (-self._resident[m], self._last_use[m]))


class BeladyPolicy(EvictionPolicy):
    """Offline optimal (evict the model reused farthest in the future).

    Requires a ``next_use`` oracle: ``next_use(model_id, now) -> float``
    returning the next simulated time the model will be requested (``inf``
    if never).  Only meaningful in benchmarks where the whole workload is
    known up front; it bounds how much any online policy could gain.
    """

    def __init__(self, next_use: Callable[[str, float], float]) -> None:
        super().__init__()
        self._next_use = next_use
        self._now = 0.0

    def _insert(self, model_id: str, now: float) -> None:
        self._now = now

    def _access(self, model_id: str, now: float) -> None:
        self._now = now

    def _forget(self, model_id: str) -> None:
        pass

    def _compute_eviction_order(self) -> list[str]:
        return sorted(self._resident, key=lambda m: -self._next_use(m, self._now))

    def eviction_order(self) -> list[str]:
        # the oracle is time-dependent: never serve a stale cached ordering
        return self._compute_eviction_order()


POLICY_NAMES = ("lru", "fifo", "lfu", "size")


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a replacement policy by name (Belady needs its oracle)."""
    table: dict[str, type[EvictionPolicy]] = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
        "lfu": LFUPolicy,
        "size": SizeAwarePolicy,
    }
    if name not in table:
        raise KeyError(f"unknown replacement policy {name!r}; known: {sorted(table)}")
    return table[name]()
