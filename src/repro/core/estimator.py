"""Finish-time estimation (paper §III-C, §IV-A).

Each GPU Manager "estimates the GPU's finish time of its queued requests".
The LALB scheduler compares, for a request whose model is cached on a busy
GPU, the time it would *wait* there (current request plus local queue)
against the model *loading* time on an idle GPU (Alg. 2 lines 10–11).

Estimates come from the profiled per-model load/inference latencies
(Table I or the profiler) — the estimator never peeks at simulator
internals beyond what a real deployment would know.

The per-GPU queued-work term is maintained **incrementally**: the
estimator subscribes to local-queue push/pop and keeps a running
inference-time sum per GPU, so :meth:`estimated_finish_time` is O(1)
instead of re-walking the GPU's local queue on every Alg. 2 comparison.
The sum resets to exactly 0.0 whenever a queue empties (bounding
floating-point drift) and falls back to a lazy reference walk for GPUs the
estimator has not yet seen a device object for.
"""

from __future__ import annotations

from ..cluster.gpu import GPUDevice
from ..models.profiler import ProfileRegistry
from ..sim import Simulator
from .queues import LocalQueues
from .request import InferenceRequest

__all__ = ["FinishTimeEstimator"]


class FinishTimeEstimator:
    """Estimates GPU finish times from profiles and queue state."""

    def __init__(
        self,
        sim: Simulator,
        registry: ProfileRegistry,
        local_queues: LocalQueues,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.local_queues = local_queues
        #: absolute time at which each GPU finishes its in-flight request;
        #: maintained by the GPU Managers on every dispatch/completion.
        self._busy_until: dict[str, float] = {}
        #: gpu_id -> device, for costing queue mutations as they happen
        self._devices: dict[str, GPUDevice] = {}
        #: gpu_id -> running sum of queued inference times; None marks a
        #: sum that must be lazily recomputed (mutation seen before the
        #: device was known)
        self._queued_cost: dict[str, float | None] = {}
        #: (architecture, gpu_type, batch) -> profiled latency.  Profiles
        #: are immutable once registered, so the memo never invalidates;
        #: Alg. 2 evaluates these on every wait-vs-load comparison.
        self._infer_memo: dict[tuple[str, str, int], float] = {}
        self._load_memo: dict[tuple[str, str], float] = {}
        local_queues.subscribe(self._on_queue_change)

    # ------------------------------------------------------------------
    # Maintained by GPU Managers
    # ------------------------------------------------------------------
    def register_gpus(self, gpus: list[GPUDevice]) -> None:
        """Make devices known up front so queue mutations can be costed
        incrementally from the first push; empty queues start at an exact
        0.0 sum."""
        for gpu in gpus:
            self._devices[gpu.gpu_id] = gpu
            if self.local_queues.length(gpu.gpu_id) == 0:
                self._queued_cost[gpu.gpu_id] = 0.0

    def _on_queue_change(self, gpu_id: str, request: InferenceRequest, added: bool) -> None:
        if self.local_queues.length(gpu_id) == 0:
            # exact resync at every empty point: incremental float error
            # cannot accumulate across queue generations
            self._queued_cost[gpu_id] = 0.0
            return
        device = self._devices.get(gpu_id)
        current = self._queued_cost.get(gpu_id)
        if device is None:
            self._queued_cost[gpu_id] = None  # recompute on next estimate
            return
        if current is None:
            return  # sum unknown (mutation preceded the device): stays lazy
        cost = self.infer_time(request, device)
        self._queued_cost[gpu_id] = current + cost if added else current - cost
    def set_busy_until(self, gpu_id: str, t: float) -> None:
        self._busy_until[gpu_id] = t

    def clear_busy(self, gpu_id: str) -> None:
        self._busy_until.pop(gpu_id, None)

    def busy_until(self, gpu_id: str) -> float:
        return self._busy_until.get(gpu_id, self.sim.now)

    # ------------------------------------------------------------------
    # Queries (used by the LALB policy)
    # ------------------------------------------------------------------
    def infer_time(self, request: InferenceRequest, gpu: GPUDevice) -> float:
        """Profiled inference latency of ``request`` on ``gpu``'s type."""
        key = (request.model.architecture, gpu.gpu_type, request.batch_size)
        t = self._infer_memo.get(key)
        if t is None:
            profile = self.registry.get(key[0], key[1])
            t = self._infer_memo[key] = profile.infer_time(request.batch_size)
        return t

    def load_time(self, request: InferenceRequest, gpu: GPUDevice) -> float:
        """Profiled model-upload latency of ``request`` on ``gpu``'s type."""
        key = (request.model.architecture, gpu.gpu_type)
        t = self._load_memo.get(key)
        if t is None:
            t = self._load_memo[key] = self.registry.get(key[0], key[1]).load_time_s
        return t

    def queued_cost(self, gpu: GPUDevice) -> float:
        """Total inference time queued on ``gpu``'s local queue (O(1)).

        Served from the running sum the local-queue observer maintains;
        recomputed by reference walk only when a mutation arrived before
        the device was known (stand-alone estimator uses).
        """
        cost = self._queued_cost.get(gpu.gpu_id)
        if cost is None:
            cost = self.reference_queued_cost(gpu)
            self._queued_cost[gpu.gpu_id] = cost
            self._devices.setdefault(gpu.gpu_id, gpu)
        return cost

    def reference_queued_cost(self, gpu: GPUDevice) -> float:
        """The literal queue walk the running sum replaces (kept for lazy
        recomputes and the incremental-vs-reference test assertions)."""
        cost = 0.0
        for req in self.local_queues.requests(gpu.gpu_id):
            cost += self.infer_time(req, gpu)
        return cost

    def estimated_finish_time(self, gpu: GPUDevice) -> float:
        """Absolute time when ``gpu`` would finish everything already bound
        to it: the in-flight request plus its local queue.

        Local-queue requests were bound there *because* their model is
        cached (Alg. 2), so they are costed as cache hits.
        """
        return max(self.busy_until(gpu.gpu_id), self.sim.now) + self.queued_cost(gpu)

    def wait_time(self, gpu: GPUDevice) -> float:
        """Seconds until ``gpu`` could start a newly bound request."""
        return self.estimated_finish_time(gpu) - self.sim.now

    def hit_on_busy_beats_miss_on_idle(
        self, request: InferenceRequest, busy_gpu: GPUDevice, idle_gpu: GPUDevice
    ) -> bool:
        """Alg. 2 line 11: does waiting for the cached copy cost less than
        uploading the model to the idle GPU?

        Inference time is paid either way, so the comparison reduces to
        wait-time on the busy GPU vs. load-time on the idle one.  The
        wait-time expansion is inlined — Algorithm 2 evaluates this on
        every queue-behind-cached-copy decision, and the four-deep call
        chain (wait_time → estimated_finish_time → busy_until /
        queued_cost) was measurable.
        """
        gpu_id = busy_gpu.gpu_id
        now = self.sim._now
        busy = self._busy_until.get(gpu_id, now)
        if busy < now:
            busy = now
        cost = self._queued_cost.get(gpu_id)
        if cost is None:
            cost = self.queued_cost(busy_gpu)  # lazy recompute path
        return busy - now + cost < self.load_time(request, idle_gpu)
