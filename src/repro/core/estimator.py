"""Finish-time estimation (paper §III-C, §IV-A).

Each GPU Manager "estimates the GPU's finish time of its queued requests".
The LALB scheduler compares, for a request whose model is cached on a busy
GPU, the time it would *wait* there (current request plus local queue)
against the model *loading* time on an idle GPU (Alg. 2 lines 10–11).

Estimates come from the profiled per-model load/inference latencies
(Table I or the profiler) — the estimator never peeks at simulator
internals beyond what a real deployment would know.
"""

from __future__ import annotations

from ..cluster.gpu import GPUDevice
from ..models.profiler import ProfileRegistry
from ..sim import Simulator
from .queues import LocalQueues
from .request import InferenceRequest

__all__ = ["FinishTimeEstimator"]


class FinishTimeEstimator:
    """Estimates GPU finish times from profiles and queue state."""

    def __init__(
        self,
        sim: Simulator,
        registry: ProfileRegistry,
        local_queues: LocalQueues,
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.local_queues = local_queues
        #: absolute time at which each GPU finishes its in-flight request;
        #: maintained by the GPU Managers on every dispatch/completion.
        self._busy_until: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Maintained by GPU Managers
    # ------------------------------------------------------------------
    def set_busy_until(self, gpu_id: str, t: float) -> None:
        self._busy_until[gpu_id] = t

    def clear_busy(self, gpu_id: str) -> None:
        self._busy_until.pop(gpu_id, None)

    def busy_until(self, gpu_id: str) -> float:
        return self._busy_until.get(gpu_id, self.sim.now)

    # ------------------------------------------------------------------
    # Queries (used by the LALB policy)
    # ------------------------------------------------------------------
    def infer_time(self, request: InferenceRequest, gpu: GPUDevice) -> float:
        """Profiled inference latency of ``request`` on ``gpu``'s type."""
        profile = self.registry.get(request.model.architecture, gpu.gpu_type)
        return profile.infer_time(request.batch_size)

    def load_time(self, request: InferenceRequest, gpu: GPUDevice) -> float:
        """Profiled model-upload latency of ``request`` on ``gpu``'s type."""
        return self.registry.get(request.model.architecture, gpu.gpu_type).load_time_s

    def estimated_finish_time(self, gpu: GPUDevice) -> float:
        """Absolute time when ``gpu`` would finish everything already bound
        to it: the in-flight request plus its local queue.

        Local-queue requests were bound there *because* their model is
        cached (Alg. 2), so they are costed as cache hits.
        """
        t = max(self.busy_until(gpu.gpu_id), self.sim.now)
        for req in self.local_queues.requests(gpu.gpu_id):
            t += self.infer_time(req, gpu)
        return t

    def wait_time(self, gpu: GPUDevice) -> float:
        """Seconds until ``gpu`` could start a newly bound request."""
        return self.estimated_finish_time(gpu) - self.sim.now

    def hit_on_busy_beats_miss_on_idle(
        self, request: InferenceRequest, busy_gpu: GPUDevice, idle_gpu: GPUDevice
    ) -> bool:
        """Alg. 2 line 11: does waiting for the cached copy cost less than
        uploading the model to the idle GPU?

        Inference time is paid either way, so the comparison reduces to
        wait-time on the busy GPU vs. load-time on the idle one.
        """
        return self.wait_time(busy_gpu) < self.load_time(request, idle_gpu)
